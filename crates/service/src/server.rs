//! The analysis daemon: TCP accept loop, worker pool, HTTP routing.
//!
//! Every endpoint lives under the versioned prefix and is described by
//! [`scalana_api`] — paths, request/response DTOs, and structured
//! errors all come from that crate, so the server, the client, and the
//! CLI agree by construction:
//!
//! ```text
//! POST /v1/jobs                      submit a job (object) or a batch (array)
//! GET  /v1/jobs?state=&limit=&after= paginated job listing
//! GET  /v1/jobs/<id>                 job status
//! GET  /v1/jobs/<id>/wait?timeout_ms= long-poll until terminal (or budget)
//! GET  /v1/jobs/<id>/result          cached analysis result (JSON)
//! GET  /v1/jobs/<id>/profile/<p>     persisted profile image at scale <p>
//! POST /v1/diff                      run/reuse two analyses and compare them
//! GET  /v1/stats                     counters: job + per-scale cache hits/misses, ...
//! GET  /v1/metrics                   Prometheus-style exposition (text)
//! GET  /v1/jobs/<id>/trace           per-job span timeline (terminal jobs)
//! GET  /v1/healthz                   liveness probe
//! POST /v1/shutdown                  graceful stop
//! GET  /v1/store?after=&limit=       durable store view (paginated listing)
//! POST /v1/store/gc                  run one LRU quota sweep
//! GET  /v1/peer/ring                 federation ring (identity + members)
//! POST /v1/peer/announce             a peer introduces itself
//! GET/POST /v1/peer/profile/<key>    fetch / write-through one profile image
//! GET/POST /v1/peer/psg/<key>        fetch / write-through one PSG trace
//! ```
//!
//! Endpoints that predate versioning are still served at their
//! unversioned paths as deprecated aliases (byte-identical bodies plus
//! a `Deprecation:` header); endpoints born under `/v1` (the listing,
//! `wait`, `diff`) answer their unversioned spelling with a
//! `308 Permanent Redirect`. Errors are structured
//! [`ApiError`] bodies whose code pins the HTTP status.
//!
//! Connections speak HTTP/1.1 keep-alive: one socket carries any number
//! of sequential requests (a poll loop costs one TCP handshake total).
//! Submissions land in the bounded [`JobQueue`]; a pool of worker
//! threads executes them *per scale* ([`crate::exec`]): each requested
//! scale resolves against the content-addressed per-scale
//! [`ProfileCache`] first, only the misses are simulated — fanned out
//! across the pool, not one worker per job — and whole-job results live
//! in the sharded [`Registry`], so identical re-submissions are answered
//! without touching the queue and overlapping ones re-simulate only
//! their genuinely new scales.
//!
//! On Linux all connections are served by a single epoll readiness loop
//! (`crate::reactor`): reads, routing, and batched writes happen on
//! one thread, and long-polls park as registry *subscriptions*
//! (`Registry::subscribe`) instead of blocked threads — which is what
//! lets one daemon hold tens of thousands of concurrent waiters. Other
//! platforms fall back to the historical thread-per-connection loop in
//! this module; both paths share `route` and the response renderers,
//! so the wire behavior is identical.

use crate::cache::{JobStatus, Registry, RegistryObs, StatusView, SubmitOutcome, WaitOutcome};
use crate::exec::{ExecCtx, Task};
use crate::federation::{Federation, PeerMetrics};
use crate::http::Request;
#[cfg(not(target_os = "linux"))]
use crate::http::{write_response_headers, MessageReader};
use crate::job::{JobProgram, JobSpec};
use crate::json::{parse, Json};
use crate::metrics::ServiceMetrics;
use crate::profile_cache::{ProfileCache, ProgramIndex, PsgCache};
use crate::queue::JobQueue;
use crate::store::{DiskStore, RealIo, StoreIo};
use scalana_api::diff::DiffSide;
use scalana_api::{
    dto, paths, ApiError, DiffRequest, ErrorCode, JobPage, JobState, JobView, ListQuery,
    PeerAnnounce, PeerBlob, ProgramRef, StatsResponse, StoreQuery, SubmitAck, SubmitRequest,
    WaitQuery,
};
use scalana_core::ScalAnaConfig;
use scalana_obs::{self as obs, Family};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Re-export of the wire contract's scale bound (it predates the
/// `scalana-api` crate and callers import it from here).
pub use scalana_api::MAX_SCALE;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads executing analyses.
    pub workers: usize,
    /// Bounded queue capacity (submissions beyond it get `503`).
    pub queue_capacity: usize,
    /// Completed results retained in the cache (oldest evicted first;
    /// 0 = unbounded). Results hold profile images, so a long-lived
    /// daemon must bound them.
    pub max_cached_results: usize,
    /// Per-scale profile images retained (oldest evicted first;
    /// 0 = unbounded). The unit of cross-job reuse: one entry per
    /// (program, profile config, discovery scale, scale).
    pub max_cached_profiles: usize,
    /// Refined PSGs retained (0 = unbounded). Small and extremely
    /// reusable — one per (program, PSG options, discovery scale).
    pub max_cached_psgs: usize,
    /// Programs indexed by content hash for `--program-hash` reuse
    /// (0 = unbounded).
    pub max_indexed_programs: usize,
    /// Connections served concurrently before new ones are shed with a
    /// `503` + `Retry-After`. A connection costs the event loop one fd
    /// and a small state machine (not a thread), so the default is
    /// sized for thousands of parked long-pollers; the real ceiling is
    /// the process fd limit.
    pub max_connections: usize,
    /// Base analysis configuration; per-request knobs override it.
    pub default_config: ScalAnaConfig,
    /// Durable store directory (`--store-dir`). When set, profile
    /// images and PSG discovery traces are written through to disk and
    /// the caches warm from it at startup; `None` keeps the daemon
    /// memory-only.
    pub store_dir: Option<String>,
    /// Store size quota in bytes (`--store-quota`; 0 = unlimited).
    /// When exceeded after a write, an LRU sweep evicts oldest entries.
    pub store_quota: u64,
    /// Filesystem access for the store. `None` uses the real
    /// filesystem; tests inject a [`crate::store::FaultIo`] here.
    pub store_io: Option<Arc<dyn StoreIo>>,
    /// Federation seeds (`--peer`, repeatable): addresses of other
    /// daemons to place on the rendezvous ring. Empty keeps the daemon
    /// standalone (a single-member ring of itself).
    pub peers: Vec<String>,
    /// The address this daemon advertises to its peers (`--self-addr`).
    /// `None` advertises the bound address — correct unless the daemon
    /// binds a wildcard or sits behind a proxy.
    pub self_addr: Option<String>,
    /// Idle keep-alive connections are closed after this long without a
    /// request (`--idle-timeout`). Peer pools hold longer-lived idle
    /// connections than interactive clients, so federated fleets often
    /// raise it.
    pub idle_timeout: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().min(4))
            .unwrap_or(2);
        ServiceConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers,
            queue_capacity: 64,
            max_cached_results: 256,
            max_cached_profiles: 1024,
            max_cached_psgs: 64,
            max_indexed_programs: 512,
            max_connections: 16_384,
            default_config: ScalAnaConfig::default(),
            store_dir: None,
            store_quota: 0,
            store_io: None,
            peers: Vec::new(),
            self_addr: None,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// How long `POST /v1/diff` waits for each side to finish before
/// answering `504` (the jobs keep running; retrying the identical diff
/// resumes the wait against the same records).
pub(crate) const DIFF_WAIT: Duration = Duration::from_secs(60);

/// `Retry-After:` value (seconds) sent with every retryable error —
/// backpressure answers (`503` shed, queue full) and transient job
/// states. Clients honor it in their polling fallback.
const RETRY_AFTER_SECS: u64 = 1;

pub(crate) struct State {
    pub(crate) registry: Registry,
    pub(crate) queue: JobQueue<Task>,
    pub(crate) profiles: ProfileCache,
    pub(crate) psgs: PsgCache,
    pub(crate) programs: ProgramIndex,
    /// The durable tier under the caches (`--store-dir`), or `None`
    /// for a memory-only daemon.
    pub(crate) store: Option<Arc<DiskStore>>,
    /// The fleet tier: ring membership, peer clients, and the
    /// write-behind offer queue. Always present — a standalone daemon
    /// holds a single-member ring and every federation call is a no-op.
    pub(crate) federation: Arc<Federation>,
    /// Idle keep-alive connections are swept after this long.
    pub(crate) idle_timeout: Duration,
    pub(crate) workers: usize,
    pub(crate) shutdown: AtomicBool,
    pub(crate) addr: SocketAddr,
    /// Connections currently served (mirrored into `scalana_connections`
    /// at exposition time). The event loop stores its live count here;
    /// the fallback path counts handler threads.
    pub(crate) connections: AtomicUsize,
    pub(crate) max_connections: usize,
    pub(crate) default_config: ScalAnaConfig,
    /// Per-server observability: stage histograms, simulator counters,
    /// and the `/v1/metrics` exposition registry. Owned here (not
    /// global) so in-process daemons never share counters.
    pub(crate) metrics: ServiceMetrics,
    /// Bind time — the zero point of `uptime_ms`.
    pub(crate) started: Instant,
    /// Event-loop wake handle, installed by the reactor before it
    /// starts serving. `trigger_shutdown` signals it so an *idle*
    /// daemon leaves its `epoll_wait` immediately instead of on the
    /// next accepted connection.
    #[cfg(target_os = "linux")]
    pub(crate) wake: std::sync::OnceLock<Arc<crate::net::WakeFd>>,
}

impl State {
    pub(crate) fn exec_ctx(&self) -> ExecCtx<'_> {
        ExecCtx {
            registry: &self.registry,
            queue: &self.queue,
            profiles: &self.profiles,
            psgs: &self.psgs,
            store: self.store.as_deref(),
            federation: Some(&self.federation),
            metrics: &self.metrics,
        }
    }

    fn uptime_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    pub(crate) fn trigger_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            self.queue.shutdown();
            #[cfg(target_os = "linux")]
            if let Some(wake) = self.wake.get() {
                wake.wake();
                return;
            }
            // No event loop to signal (fallback path, or shutdown raced
            // the reactor's startup): wake the blocked accept call with
            // a throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// Decrements the live-connection count when a handler exits, however
/// it exits.
#[cfg(not(target_os = "linux"))]
struct ConnGuard<'a>(&'a AtomicUsize);

#[cfg(not(target_os = "linux"))]
impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A bound (not yet running) daemon.
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.state.addr)
            .finish()
    }
}

impl Server {
    /// Bind the listener (the returned server is not serving yet).
    pub fn bind(config: &ServiceConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        // The registry records into the same handles `/v1/metrics`
        // renders — long-poll park/wake counters, queue-wait and
        // whole-job histograms, the eviction ring label.
        let metrics = ServiceMetrics::new();
        let registry =
            Registry::with_result_capacity(config.max_cached_results).with_obs(RegistryObs {
                parks: metrics.longpoll_parks.clone(),
                wakes: metrics.longpoll_wakes.clone(),
                parked: metrics.longpoll_parked.clone(),
                queue_wait_ns: metrics.queue_wait_ns.clone(),
                job_ns: metrics.job_ns.clone(),
                evict_label: metrics.lbl_evict,
            });
        // Durable tier: open (never fails hard — a broken directory
        // degrades to memory-only) and warm the per-scale cache with
        // every valid profile image found on disk. PSG traces stay in
        // the store and are replayed lazily by the executor.
        let profiles = ProfileCache::new(config.max_cached_profiles);
        let store = config.store_dir.as_ref().map(|dir| {
            let io = config
                .store_io
                .clone()
                .unwrap_or_else(|| Arc::new(RealIo) as Arc<dyn StoreIo>);
            let (store, warm) = DiskStore::open(io, std::path::Path::new(dir), config.store_quota);
            for (key, image) in warm {
                profiles.store(key, image);
            }
            Arc::new(store)
        });
        // Fleet tier: ring identity defaults to the bound address (with
        // an ephemeral port that *is* the only address peers can dial).
        let self_addr = config.self_addr.clone().unwrap_or_else(|| addr.to_string());
        let federation = Arc::new(Federation::new(
            self_addr,
            &config.peers,
            PeerMetrics {
                requests: metrics.peer_requests.clone(),
                hits: metrics.peer_hits.clone(),
                fetch_ns: metrics.peer_fetch_ns.clone(),
            },
        ));
        Ok(Server {
            listener,
            state: Arc::new(State {
                registry,
                queue: JobQueue::new(config.queue_capacity),
                profiles,
                psgs: PsgCache::new(config.max_cached_psgs),
                programs: ProgramIndex::new(config.max_indexed_programs),
                store,
                federation,
                idle_timeout: config.idle_timeout.max(Duration::from_secs(1)),
                workers: config.workers.max(1),
                shutdown: AtomicBool::new(false),
                addr,
                connections: AtomicUsize::new(0),
                max_connections: config.max_connections.max(1),
                default_config: config.default_config.clone(),
                metrics,
                started: Instant::now(),
                #[cfg(target_os = "linux")]
                wake: std::sync::OnceLock::new(),
            }),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Serve until `POST /v1/shutdown`. Blocks; spawns the worker pool,
    /// then serves every connection from one epoll readiness loop
    /// (Linux) or one handler thread per connection (elsewhere).
    pub fn run(self) -> io::Result<()> {
        // The store's write-behind thread starts before the workers so
        // their saves enqueue instead of blocking on fsync in the job
        // path.
        let store_writer = self.state.store.as_ref().map(DiskStore::start_writer);
        // The federation's writer settles peer offers off the job path
        // the same way; the startup announcements ride it too, so a
        // seed that is still booting delays nothing here.
        let peer_writer = self.state.federation.start_writer();
        self.state.federation.announce_peers();
        let workers: Vec<_> = (0..self.state.workers)
            .map(|i| {
                let state = Arc::clone(&self.state);
                std::thread::Builder::new()
                    .name(format!("scalana-worker-{i}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawn worker")
            })
            .collect();

        #[cfg(target_os = "linux")]
        let served = crate::reactor::serve(self.listener, &self.state);
        #[cfg(not(target_os = "linux"))]
        let served = serve_threaded(self.listener, &self.state);

        self.state.queue.shutdown();
        for worker in workers {
            let _ = worker.join();
        }
        // Workers are gone, so no more saves can be enqueued: dropping
        // the sender lets the writer drain its backlog and exit, making
        // graceful shutdown flush every pending store write.
        if let Some(store) = &self.state.store {
            store.stop_writer();
        }
        if let Some(writer) = store_writer {
            let _ = writer.join();
        }
        self.state.federation.stop_writer();
        let _ = peer_writer.join();
        served
    }
}

/// The portable accept loop: one detached handler thread per
/// connection. Kept only for non-Linux builds — Linux serves everything
/// from [`crate::reactor`].
#[cfg(not(target_os = "linux"))]
fn serve_threaded(listener: TcpListener, state: &Arc<State>) -> io::Result<()> {
    // Transient accept failures (EMFILE under fd pressure is the
    // classic) must not busy-loop the accept thread at 100% CPU;
    // back off, bounded, and reset on the next success.
    let mut backoff = Duration::from_millis(10);
    const MAX_BACKOFF: Duration = Duration::from_millis(1280);

    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::ConnectionAborted | io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => {
                state.metrics.accept_errors.inc();
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(MAX_BACKOFF);
                continue;
            }
        };
        backoff = Duration::from_millis(10);
        // Overload shedding: answer 503 from the accept thread rather
        // than spawn an unbounded number of handlers. The pending
        // request is drained (bounded) first so the response is not
        // lost to a kernel RST over unread bytes.
        if state.connections.fetch_add(1, Ordering::SeqCst) >= state.max_connections {
            state.connections.fetch_sub(1, Ordering::SeqCst);
            let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
            let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
            let mut reader = MessageReader::new(match stream.try_clone() {
                Ok(s) => s,
                Err(_) => continue,
            });
            let _ = reader.next_request();
            let response = shed_response();
            let _ = write_response_headers(
                &stream,
                response.code,
                &response.content_type,
                &response.headers,
                &response.body,
                false,
            );
            continue;
        }
        let handler_state = Arc::clone(state);
        // Detached: handlers are time-limited (the read timeout
        // bounds idle keep-alive connections) and counted (the
        // guard in handle_connection releases the slot).
        if std::thread::Builder::new()
            .name("scalana-conn".to_string())
            .spawn(move || handle_connection(stream, &handler_state))
            .is_err()
        {
            state.connections.fetch_sub(1, Ordering::SeqCst);
        }
    }
    Ok(())
}

fn worker_loop(state: &State) {
    // Runs until `pop` returns `None`: after shutdown the queue stops
    // accepting job pushes but still hands out already-accepted tasks —
    // both whole jobs and the per-scale work they fan out — so every
    // submission the daemon acknowledged gets executed (its record
    // would otherwise sit `queued` forever) — graceful, not abrupt.
    let ctx = state.exec_ctx();
    while let Some(task) = state.queue.pop() {
        // Panic isolation lives inside run_task: pipeline stages over
        // client-supplied programs run under catch_unwind and fail the
        // job instead of killing this worker.
        crate::exec::run_task(&ctx, task);
    }
}

#[cfg(not(target_os = "linux"))]
fn handle_connection(stream: TcpStream, state: &State) {
    let _guard = ConnGuard(&state.connections);
    let _ = stream.set_read_timeout(Some(state.idle_timeout));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    // Keep-alive exchanges are small request/response pairs; Nagle
    // batching would add delayed-ACK latency to every one of them.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = MessageReader::new(read_half);
    // Keep-alive loop: one request per iteration, strictly in order
    // (pipelined requests are answered in sequence).
    loop {
        let read_started = obs::now_ns();
        let request = match reader.next_request() {
            Ok(Some(request)) => {
                state
                    .metrics
                    .http_read_ns
                    .record(obs::now_ns().saturating_sub(read_started));
                state.metrics.http_requests.inc();
                request
            }
            // Peer closed between requests — a clean end.
            Ok(None) => return,
            Err(e) => {
                // An idle keep-alive connection hitting the read
                // timeout is normal; only protocol garbage earns a 400.
                if e.kind() != io::ErrorKind::WouldBlock && e.kind() != io::ErrorKind::TimedOut {
                    let response = malformed_response(&e);
                    let _ = write_response_headers(
                        &stream,
                        response.code,
                        &response.content_type,
                        &response.headers,
                        &response.body,
                        false,
                    );
                }
                return;
            }
        };
        let route_guard = obs::span_timed(state.metrics.lbl_render, &state.metrics.render_ns);
        let (routed, action) = route(&request, state);
        let response = resolve_routed(routed, state);
        drop(route_guard);
        // Shutting down (this request or a concurrent one): announce
        // close so well-behaved clients stop reusing the socket.
        let keep_alive = request.keep_alive
            && action != Action::Shutdown
            && !state.shutdown.load(Ordering::SeqCst);
        let write_guard = obs::span_timed(state.metrics.lbl_write, &state.metrics.write_ns);
        let written = write_response_headers(
            &stream,
            response.code,
            &response.content_type,
            &response.headers,
            &response.body,
            keep_alive,
        )
        .is_ok();
        drop(write_guard);
        // The routing decision (not a re-match on the raw path, which
        // would miss normalized forms like `//shutdown`) drives
        // post-response actions, after the acknowledgment is on the
        // wire. Shutdown happens even when the write failed — a client
        // that disconnects right after sending `POST /shutdown` must
        // not leave a zombie daemon behind.
        if action == Action::Shutdown {
            state.trigger_shutdown();
        }
        if !written || !keep_alive {
            return;
        }
    }
}

/// What to do after the response is written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Action {
    None,
    Shutdown,
}

/// One routed response. Bodies are `Bytes` so a cached profile image is
/// served by refcount bump, not a per-request deep copy; `headers`
/// carries endpoint metadata (`Allow:`, `Location:`, `Deprecation:`).
pub(crate) struct Response {
    pub(crate) code: u16,
    pub(crate) content_type: String,
    pub(crate) body: bytes::Bytes,
    pub(crate) headers: Vec<(&'static str, String)>,
}

/// Outcome of [`route`]: either a finished response, or a long-poll the
/// caller must park. The blocking fallback resolves parked variants
/// with [`Registry::wait_terminal`] on the handler thread
/// ([`resolve_routed`]); the event loop parks them as registry
/// subscriptions instead.
pub(crate) enum Routed {
    /// Fully handled; write it.
    Done(Response),
    /// `GET /v1/jobs/<id>/wait`: answer when `key` turns terminal or
    /// after `timeout`, whichever first (the job may not exist — the
    /// waiter resolves that to `unknown_job`).
    Wait { key: String, timeout: Duration },
    /// `POST /v1/diff`: both sides submitted; answer when both are
    /// terminal or after [`DIFF_WAIT`].
    Diff { a: String, b: String },
}

/// Resolve a [`Routed`] by blocking this thread — the historical
/// semantics, used by the non-Linux fallback path.
#[cfg(not(target_os = "linux"))]
fn resolve_routed(routed: Routed, state: &State) -> Response {
    match routed {
        Routed::Done(response) => response,
        Routed::Wait { key, timeout } => {
            wait_outcome_response(state.registry.wait_terminal(&key, timeout))
        }
        Routed::Diff { a, b } => {
            let side_a = diff_side("a", &a, state.registry.wait_terminal(&a, DIFF_WAIT));
            let side_b = diff_side("b", &b, state.registry.wait_terminal(&b, DIFF_WAIT));
            render_diff(side_a, side_b)
        }
    }
}

/// The `400` for protocol garbage. The exact-string match
/// (`http::read_headers` emits it verbatim) matters: only a declared
/// body over budget is `body_too_large` — an oversized *head* must not
/// tell the client to shrink its body.
pub(crate) fn malformed_response(e: &io::Error) -> Response {
    let message = e.to_string();
    let code = if message == crate::http::ERR_BODY_TOO_LARGE {
        ErrorCode::BodyTooLarge
    } else {
        ErrorCode::MalformedRequest
    };
    error_response(&ApiError::new(code, message))
}

/// The `503` shed answer for connections over the admission cap.
pub(crate) fn shed_response() -> Response {
    error_response(&ApiError::new(
        ErrorCode::TooManyConnections,
        "too many connections",
    ))
}

/// The status document a resolved `wait` long-poll answers with.
pub(crate) fn wait_outcome_response(outcome: WaitOutcome) -> Response {
    match outcome {
        WaitOutcome::Unknown => {
            error_response(&ApiError::new(ErrorCode::UnknownJob, "unknown job"))
        }
        WaitOutcome::Terminal(view) | WaitOutcome::Pending(view) => {
            json_response(200, job_view(&view).to_json())
        }
    }
}

fn json_response(code: u16, body: Json) -> Response {
    Response {
        code,
        content_type: "application/json".to_string(),
        body: bytes::Bytes::from(body.render().into_bytes()),
        headers: Vec::new(),
    }
}

fn error_response(error: &ApiError) -> Response {
    let mut response = json_response(error.http_status(), error.to_json());
    if error.retryable {
        // The structured body already says `retryable: true`; the
        // header says *when* — plain HTTP clients get backoff advice
        // without parsing the body.
        response
            .headers
            .push(("Retry-After", RETRY_AFTER_SECS.to_string()));
    }
    response
}

/// The wire view of a registry record.
fn job_view(view: &StatusView) -> JobView {
    JobView {
        job: view.key.clone(),
        program: view.label.clone(),
        scales: view.scales.clone(),
        status: job_state(view.status),
        error: view.error.clone(),
    }
}

fn job_state(status: JobStatus) -> JobState {
    match status {
        JobStatus::Queued => JobState::Queued,
        JobStatus::Running => JobState::Running,
        JobStatus::Done => JobState::Done,
        JobStatus::Failed => JobState::Failed,
    }
}

fn job_status(state: JobState) -> JobStatus {
    match state {
        JobState::Queued => JobStatus::Queued,
        JobState::Running => JobStatus::Running,
        JobState::Done => JobStatus::Done,
        JobState::Failed => JobStatus::Failed,
    }
}

/// Allowed methods per known path shape — the source of `405` +
/// `Allow:` answers (an unknown shape is a `404` instead).
fn allowed_methods(segments: &[&str]) -> Option<&'static str> {
    Some(match segments {
        ["healthz"] => "GET",
        ["stats"] => "GET",
        ["metrics"] => "GET",
        ["shutdown"] => "POST",
        ["jobs"] => "GET, POST",
        ["jobs", _] => "GET",
        ["jobs", _, "result"] => "GET",
        ["jobs", _, "wait"] => "GET",
        ["jobs", _, "trace"] => "GET",
        ["jobs", _, "profile", _] => "GET",
        ["diff"] => "POST",
        ["store"] => "GET",
        ["store", "gc"] => "POST",
        ["peer", "ring"] => "GET",
        ["peer", "announce"] => "POST",
        ["peer", "profile", _] => "GET, POST",
        ["peer", "psg", _] => "GET, POST",
        _ => return None,
    })
}

/// Whether this endpoint was born under `/v1` (no pre-versioning
/// clients exist for it): its unversioned spelling answers `308`.
fn born_in_v1(method: &str, segments: &[&str]) -> bool {
    matches!(
        (method, segments),
        ("GET", ["jobs"])
            | ("GET", ["jobs", _, "wait"])
            | ("GET", ["jobs", _, "trace"])
            | ("GET", ["metrics"])
            | ("POST", ["diff"])
            | ("GET", ["store"])
            | ("POST", ["store", "gc"])
            | (_, ["peer", ..])
    )
}

pub(crate) fn route(request: &Request, state: &State) -> (Routed, Action) {
    let (path, query) = paths::split_target(&request.path);
    let mut segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    // Version handling: strip the served version, reject recognizable
    // foreign ones, and fall through for legacy (unversioned) paths.
    let versioned = match segments.first() {
        Some(&segment) if segment == paths::API_VERSION => {
            segments.remove(0);
            true
        }
        Some(&segment) if paths::looks_like_version(segment) => {
            return (
                Routed::Done(error_response(&ApiError::new(
                    ErrorCode::UnsupportedVersion,
                    format!(
                        "unsupported API version `{segment}` (this server serves `{}`)",
                        paths::API_VERSION
                    ),
                ))),
                Action::None,
            );
        }
        _ => false,
    };

    let method = request.method.as_str();
    let Some(allowed) = allowed_methods(&segments) else {
        return (
            Routed::Done(error_response(&ApiError::new(
                ErrorCode::NotFound,
                "no such endpoint",
            ))),
            Action::None,
        );
    };
    if !allowed.split(", ").any(|m| m == method) {
        let mut response = error_response(&ApiError::new(
            ErrorCode::MethodNotAllowed,
            format!("method {method} not allowed (allowed: {allowed})"),
        ));
        response.headers.push(("Allow", allowed.to_string()));
        return (Routed::Done(response), Action::None);
    }
    if !versioned && born_in_v1(method, &segments) {
        let location = if query.is_empty() {
            format!("/v1/{}", segments.join("/"))
        } else {
            format!("/v1/{}?{}", segments.join("/"), query)
        };
        let mut response =
            json_response(308, Json::obj(vec![("location", location.as_str().into())]));
        response.headers.push(("Location", location));
        return (Routed::Done(response), Action::None);
    }

    let (routed, action) = match (method, segments.as_slice()) {
        ("GET", ["healthz"]) => (
            Routed::Done(json_response(
                200,
                dto::health_body(env!("CARGO_PKG_VERSION"), state.uptime_ms()),
            )),
            Action::None,
        ),
        ("GET", ["stats"]) => (
            Routed::Done(json_response(200, stats(state).to_json())),
            Action::None,
        ),
        ("GET", ["metrics"]) => (Routed::Done(metrics_text(state)), Action::None),
        ("POST", ["shutdown"]) => (
            Routed::Done(json_response(200, dto::ok_body())),
            Action::Shutdown,
        ),
        ("POST", ["jobs"]) => (Routed::Done(submit(request, state)), Action::None),
        ("GET", ["jobs"]) => (Routed::Done(list_jobs(query, state)), Action::None),
        ("GET", ["jobs", key]) => (Routed::Done(status(key, state)), Action::None),
        ("GET", ["jobs", key, "wait"]) => (wait(key, query), Action::None),
        ("GET", ["jobs", key, "trace"]) => (Routed::Done(trace(key, state)), Action::None),
        ("GET", ["jobs", key, "result"]) => (Routed::Done(result(key, state)), Action::None),
        ("GET", ["jobs", key, "profile", nprocs]) => {
            (Routed::Done(profile(key, nprocs, state)), Action::None)
        }
        ("POST", ["diff"]) => (diff(request, state), Action::None),
        ("GET", ["store"]) => (Routed::Done(store_info(query, state)), Action::None),
        ("POST", ["store", "gc"]) => (Routed::Done(store_gc(state)), Action::None),
        ("GET", ["peer", "ring"]) => (
            Routed::Done(json_response(200, state.federation.ring_view().to_json())),
            Action::None,
        ),
        ("POST", ["peer", "announce"]) => {
            (Routed::Done(peer_announce(request, state)), Action::None)
        }
        ("GET", ["peer", "profile", key]) => {
            (Routed::Done(peer_profile_get(key, state)), Action::None)
        }
        ("POST", ["peer", "profile", key]) => (
            Routed::Done(peer_profile_post(key, request, state)),
            Action::None,
        ),
        ("GET", ["peer", "psg", key]) => (Routed::Done(peer_psg_get(key, state)), Action::None),
        ("POST", ["peer", "psg", key]) => (
            Routed::Done(peer_psg_post(key, request, state)),
            Action::None,
        ),
        // Unreachable given the allow-list check, but a 404 beats UB in
        // a long-lived daemon if the two tables ever drift.
        _ => (
            Routed::Done(error_response(&ApiError::new(
                ErrorCode::NotFound,
                "no such endpoint",
            ))),
            Action::None,
        ),
    };
    if !versioned {
        // Legacy alias: identical bytes, plus machine-readable notice
        // of where the endpoint lives now. Parked variants never get
        // here: `wait` and `diff` were born under `/v1`, so their
        // unversioned spellings already answered `308` above.
        if let Routed::Done(mut response) = routed {
            response.headers.push(("Deprecation", "true".to_string()));
            response.headers.push((
                "Link",
                format!("</v1/{}>; rel=\"successor-version\"", segments.join("/")),
            ));
            return (Routed::Done(response), action);
        }
    }
    (routed, action)
}

fn stats(state: &State) -> StatsResponse {
    let job_stats = state.registry.stats();
    let scale = state.profiles.stats();
    let (psg_hits, psg_misses) = state.psgs.stats();
    // Memory-only daemons report all-zero store counters rather than
    // omitting the fields, so the stats shape (and the metrics golden
    // list) is identical with and without `--store-dir`.
    let store = state
        .store
        .as_ref()
        .map(|s| s.snapshot())
        .unwrap_or_default();
    let (peer_requests, peer_hits, peer_backlog) = state.federation.counters();
    StatsResponse {
        workers: state.workers,
        queue_depth: state.queue.depth(),
        results_cached: state.registry.results_cached(),
        submitted: job_stats.submitted,
        cache_hits: job_stats.cache_hits,
        cache_misses: job_stats.cache_misses,
        rejected: job_stats.rejected,
        executed: job_stats.executed,
        completed: job_stats.completed,
        failed: job_stats.failed,
        evicted: job_stats.evicted,
        scale_hits: scale.hits,
        scale_misses: scale.misses,
        scale_evicted: scale.evicted,
        profiles_cached: scale.entries,
        psg_hits,
        psg_misses,
        programs_indexed: state.programs.len(),
        store_writes: store.writes,
        store_write_errors: store.write_errors,
        store_skipped: store.skipped,
        store_quarantined: store.quarantined,
        store_loaded: store.loaded,
        store_evicted: store.evicted,
        store_entries: store.entries,
        store_bytes: store.bytes,
        store_degraded: store.degraded,
        peer_requests,
        peer_hits,
        peer_backlog,
        version: env!("CARGO_PKG_VERSION").to_string(),
        uptime_ms: state.uptime_ms(),
    }
}

/// `GET /v1/metrics` — Prometheus-style text exposition. Families with
/// live handles render from [`ServiceMetrics`]; counters that already
/// exist elsewhere (the three cache tiers, job counters, gauges) are
/// mirrored here from the *same atomics* `/v1/stats` reads, so the two
/// endpoints can never disagree.
fn metrics_text(state: &State) -> Response {
    let s = stats(state);
    let mirrored = vec![
        Family::gauge("scalana_build_info", 1)
            .with_sample_suffix(&format!("{{version=\"{}\"}}", env!("CARGO_PKG_VERSION"))),
        Family::counter("scalana_cache_psg_hits_total", s.psg_hits),
        Family::counter("scalana_cache_psg_misses_total", s.psg_misses),
        Family::counter("scalana_cache_result_evicted_total", s.evicted),
        Family::counter("scalana_cache_result_hits_total", s.cache_hits),
        Family::counter("scalana_cache_result_misses_total", s.cache_misses),
        Family::counter("scalana_cache_scale_evicted_total", s.scale_evicted),
        Family::counter("scalana_cache_scale_hits_total", s.scale_hits),
        Family::counter("scalana_cache_scale_misses_total", s.scale_misses),
        Family::gauge(
            "scalana_connections",
            state.connections.load(Ordering::SeqCst) as u64,
        ),
        Family::counter("scalana_jobs_completed_total", s.completed),
        Family::counter("scalana_jobs_executed_total", s.executed),
        Family::counter("scalana_jobs_failed_total", s.failed),
        Family::counter("scalana_jobs_rejected_total", s.rejected),
        Family::counter("scalana_jobs_submitted_total", s.submitted),
        Family::gauge("scalana_peer_backlog", s.peer_backlog),
        Family::gauge(
            "scalana_peer_breaker_open",
            state.federation.open_breakers(),
        ),
        Family::gauge("scalana_peer_ring_size", state.federation.ring_len() as u64),
        Family::gauge("scalana_profiles_cached", s.profiles_cached as u64),
        Family::gauge("scalana_programs_indexed", s.programs_indexed as u64),
        Family::gauge("scalana_queue_depth", s.queue_depth as u64),
        Family::gauge("scalana_results_cached", s.results_cached as u64),
        Family::gauge("scalana_store_bytes", s.store_bytes),
        Family::gauge("scalana_store_degraded", s.store_degraded),
        Family::gauge("scalana_store_entries", s.store_entries),
        Family::counter("scalana_store_evicted_total", s.store_evicted),
        Family::counter("scalana_store_loaded_total", s.store_loaded),
        Family::counter("scalana_store_quarantined_total", s.store_quarantined),
        Family::counter("scalana_store_skipped_total", s.store_skipped),
        Family::counter("scalana_store_write_errors_total", s.store_write_errors),
        Family::counter("scalana_store_writes_total", s.store_writes),
        Family::gauge("scalana_uptime_ms", s.uptime_ms),
        Family::gauge("scalana_workers", s.workers as u64),
    ];
    Response {
        code: 200,
        content_type: "text/plain; version=0.0.4".to_string(),
        body: bytes::Bytes::from(state.metrics.render(mirrored).into_bytes()),
        headers: Vec::new(),
    }
}

/// `GET /v1/store?after=&limit=` — the durable tier's directory view:
/// entry/byte totals, the configured quota, degradation state, and one
/// keyset-paginated page of the (name-sorted) file listing. The
/// counters are always complete; the listing pages so a huge store
/// directory cannot balloon one response — follow `next_after` until it
/// is `null` for the full listing. A memory-only daemon (no
/// `--store-dir`) answers `404`.
fn store_info(query: &str, state: &State) -> Response {
    let Some(store) = state.store.as_ref() else {
        return error_response(&ApiError::new(
            ErrorCode::NotFound,
            "no store configured (start the daemon with --store-dir)",
        ));
    };
    let page = match StoreQuery::from_query(&paths::parse_query(query)) {
        Ok(page) => page,
        Err(error) => return error_response(&error),
    };
    let snapshot = store.snapshot();
    let files = store.list();
    // Keyset, not offset: `after` names the last file of the previous
    // page, so a sweep between pages skips entries instead of
    // repeating or missing them.
    let start = match &page.after {
        Some(after) => files.partition_point(|(name, _)| name.as_str() <= after.as_str()),
        None => 0,
    };
    let listed: Vec<Json> = files[start..]
        .iter()
        .take(page.limit)
        .map(|(name, bytes)| {
            Json::obj(vec![
                ("name", Json::Str(name.clone())),
                ("bytes", Json::Int(*bytes as i64)),
            ])
        })
        .collect();
    let next_after = if start + listed.len() < files.len() {
        match files.get(start + listed.len() - 1) {
            Some((name, _)) => Json::Str(name.clone()),
            None => Json::Null,
        }
    } else {
        Json::Null
    };
    json_response(
        200,
        Json::obj(vec![
            ("dir", Json::Str(store.dir().display().to_string())),
            ("entries", Json::Int(snapshot.entries as i64)),
            ("bytes", Json::Int(snapshot.bytes as i64)),
            ("quota", Json::Int(store.quota() as i64)),
            ("degraded", Json::Bool(snapshot.degraded != 0)),
            ("files_listed", Json::Int(listed.len() as i64)),
            ("files_total", Json::Int(files.len() as i64)),
            ("files", Json::Arr(listed)),
            ("next_after", next_after),
        ]),
    )
}

/// `POST /v1/store/gc` — run one LRU quota sweep now. Answers `503` +
/// `Retry-After` while the breaker is open (sweeping a store that
/// cannot write is pointless churn), `404` without a store.
fn store_gc(state: &State) -> Response {
    let Some(store) = state.store.as_ref() else {
        return error_response(&ApiError::new(
            ErrorCode::NotFound,
            "no store configured (start the daemon with --store-dir)",
        ));
    };
    if store.is_degraded() {
        return error_response(&ApiError::new(
            ErrorCode::StoreDegraded,
            "store is degraded to memory-only mode; retry after the breaker closes",
        ));
    }
    let report = store.sweep();
    let snapshot = store.snapshot();
    json_response(
        200,
        Json::obj(vec![
            ("evicted", Json::Int(report.evicted as i64)),
            ("freed_bytes", Json::Int(report.freed_bytes as i64)),
            ("entries", Json::Int(snapshot.entries as i64)),
            ("bytes", Json::Int(snapshot.bytes as i64)),
        ]),
    )
}

/// `POST /v1/peer/announce` — a peer introduces itself; merge it into
/// the ring and answer with our updated view (which the announcer
/// merges back — two-way gossip, so transitively seeded fleets
/// converge on one member set).
fn peer_announce(request: &Request, state: &State) -> Response {
    let doc = match parse(&request.body) {
        Ok(doc) => doc,
        Err(e) => {
            return error_response(&ApiError::new(ErrorCode::BadJson, format!("bad JSON: {e}")))
        }
    };
    match PeerAnnounce::from_json(&doc) {
        Ok(announce) => json_response(200, state.federation.announce(&announce.addr).to_json()),
        Err(error) => error_response(&error),
    }
}

/// The `400` for a peer path whose `<key>` segment is not a cache key.
fn peer_bad_key() -> Response {
    error_response(&ApiError::bad_request(
        "peer keys are 16 lowercase hex digits",
    ))
}

/// `GET /v1/peer/profile/<key>` — serve one per-scale profile image to
/// a peer, from the memory cache (without touching this daemon's
/// hit/miss accounting — it is the *peer's* lookup) or the durable
/// store beneath it.
fn peer_profile_get(key: &str, state: &State) -> Response {
    if !dto::valid_peer_key(key) {
        return peer_bad_key();
    }
    let image = state.profiles.peek(key).or_else(|| {
        state
            .store
            .as_ref()
            .and_then(|store| store.read_profile(key))
    });
    match image {
        Some(image) => json_response(200, PeerBlob::from_bytes(key, &image).to_json()),
        None => error_response(&ApiError::new(ErrorCode::NotFound, "no such profile entry")),
    }
}

/// `POST /v1/peer/profile/<key>` — a peer writes an entry through to us
/// (we own its key). The payload must round-trip as a profile image
/// before anything caches it: a mutated offer is rejected, never served
/// onward.
fn peer_profile_post(key: &str, request: &Request, state: &State) -> Response {
    if !dto::valid_peer_key(key) {
        return peer_bad_key();
    }
    let blob = match parse(&request.body)
        .map_err(|e| ApiError::new(ErrorCode::BadJson, format!("bad JSON: {e}")))
        .and_then(|doc| PeerBlob::from_json(&doc))
    {
        Ok(blob) => blob,
        Err(error) => return error_response(&error),
    };
    if blob.key != key {
        return error_response(&ApiError::bad_request("body key does not match path key"));
    }
    let image = match blob.bytes() {
        Ok(bytes) => bytes::Bytes::from(bytes),
        Err(error) => return error_response(&error),
    };
    if scalana_profile::store::load(image.clone()).is_err() {
        return error_response(&ApiError::bad_request(
            "payload is not a valid profile image",
        ));
    }
    state.profiles.store(key.to_string(), image.clone());
    if let Some(store) = state.store.as_ref() {
        store.save_profile(key, image);
    }
    json_response(200, dto::ok_body())
}

/// `GET /v1/peer/psg/<key>` — serve one encoded PSG discovery trace,
/// from the federation shelf or the durable store.
fn peer_psg_get(key: &str, state: &State) -> Response {
    if !dto::valid_peer_key(key) {
        return peer_bad_key();
    }
    let trace = state
        .federation
        .lookup_psg_trace(key)
        .or_else(|| state.store.as_ref().and_then(|store| store.psg_trace(key)));
    match trace {
        Some(trace) => json_response(200, PeerBlob::from_bytes(key, &trace).to_json()),
        None => error_response(&ApiError::new(ErrorCode::NotFound, "no such trace entry")),
    }
}

/// `POST /v1/peer/psg/<key>` — a peer writes a discovery trace through
/// to us. Decoded before anything caches it, same as profiles.
fn peer_psg_post(key: &str, request: &Request, state: &State) -> Response {
    if !dto::valid_peer_key(key) {
        return peer_bad_key();
    }
    let blob = match parse(&request.body)
        .map_err(|e| ApiError::new(ErrorCode::BadJson, format!("bad JSON: {e}")))
        .and_then(|doc| PeerBlob::from_json(&doc))
    {
        Ok(blob) => blob,
        Err(error) => return error_response(&error),
    };
    if blob.key != key {
        return error_response(&ApiError::bad_request("body key does not match path key"));
    }
    let encoded = match blob.bytes() {
        Ok(bytes) => bytes::Bytes::from(bytes),
        Err(error) => return error_response(&error),
    };
    if crate::store::decode_trace(encoded.clone()).is_none() {
        return error_response(&ApiError::bad_request(
            "payload is not a valid discovery trace",
        ));
    }
    state.federation.record_psg_trace(key, encoded.clone());
    if let Some(store) = state.store.as_ref() {
        store.save_psg_trace(key, encoded);
    }
    json_response(200, dto::ok_body())
}

/// `GET /v1/jobs/<id>/trace` — the job's span timeline. Traces exist
/// only for terminal jobs (the timeline is closed by the terminal
/// transition); a pending job answers `job_pending` + `Retry-After`.
fn trace(key: &str, state: &State) -> Response {
    match state.registry.trace(key) {
        None => error_response(&ApiError::new(ErrorCode::UnknownJob, "unknown job")),
        Some((_, None)) => error_response(&ApiError::new(
            ErrorCode::JobPending,
            "job still pending (traces exist once the job is terminal)",
        )),
        Some((_, Some(trace))) => json_response(200, trace.to_json()),
    }
}

fn status(key: &str, state: &State) -> Response {
    match state.registry.status(key) {
        Some(view) => json_response(200, job_view(&view).to_json()),
        None => error_response(&ApiError::new(ErrorCode::UnknownJob, "unknown job")),
    }
}

/// `GET /v1/jobs` — one keyset-paginated page of the registry.
fn list_jobs(query: &str, state: &State) -> Response {
    let list = match ListQuery::from_query(&paths::parse_query(query)) {
        Ok(list) => list,
        Err(error) => return error_response(&error),
    };
    let (views, next_after) = state.registry.list(
        list.state.map(job_status),
        list.after.as_deref(),
        list.limit,
    );
    let page = JobPage {
        jobs: views.iter().map(job_view).collect(),
        next_after,
    };
    json_response(200, page.to_json())
}

/// `GET /v1/jobs/<id>/wait` — server-side long-poll: the job's current
/// status document once it turns terminal or the (clamped) budget
/// elapses, whichever first. The client decides whether to re-issue — a
/// `200` with a non-terminal `status` simply means the budget ran out.
/// Only the query is validated here; parking is the caller's job
/// (subscription on the event loop, condvar on the fallback path).
fn wait(key: &str, query: &str) -> Routed {
    let wait = match WaitQuery::from_query(&paths::parse_query(query)) {
        Ok(wait) => wait,
        Err(error) => return Routed::Done(error_response(&error)),
    };
    Routed::Wait {
        key: key.to_string(),
        timeout: Duration::from_millis(wait.timeout_ms),
    }
}

/// `POST /v1/jobs`: a single submission object, or an array of them (the
/// batched form — one request, many submissions, one array of the same
/// per-job response objects, answered in order).
fn submit(request: &Request, state: &State) -> Response {
    // Stamped before parsing: the trace's time zero, so the `submit`
    // span accounts for parse + validation + registration.
    let recv_ns = obs::now_ns();
    let parse_guard = obs::span_timed(state.metrics.lbl_parse, &state.metrics.parse_ns);
    let doc = match parse(&request.body) {
        Ok(doc) => doc,
        Err(e) => {
            return error_response(&ApiError::new(ErrorCode::BadJson, format!("bad JSON: {e}")))
        }
    };
    drop(parse_guard);
    match doc {
        Json::Arr(items) => {
            if items.is_empty() {
                return error_response(&ApiError::bad_request("empty batch"));
            }
            let responses: Vec<Json> = items
                .iter()
                .map(|item| match submit_one(item, state, recv_ns) {
                    Ok(ack) => ack.to_json(),
                    // Per-item errors are reported in place: one bad
                    // entry must not void its siblings' acknowledgments.
                    Err(error) => error.to_json(),
                })
                .collect();
            json_response(200, Json::Arr(responses))
        }
        doc => match submit_one(&doc, state, recv_ns) {
            Ok(ack) => json_response(200, ack.to_json()),
            Err(error) => error_response(&error),
        },
    }
}

/// Register one submission document; returns the acknowledgment.
fn submit_one(doc: &Json, state: &State, recv_ns: u64) -> Result<SubmitAck, ApiError> {
    submit_request(SubmitRequest::from_json(doc)?, state, recv_ns)
}

/// Register one already-validated submission — the typed core shared by
/// the JSON submit path and the diff handler (which holds
/// [`SubmitRequest`]s and must not round-trip them through JSON again).
fn submit_request(
    request: SubmitRequest,
    state: &State,
    recv_ns: u64,
) -> Result<SubmitAck, ApiError> {
    let spec = spec_from_request(request, &state.default_config, &state.programs)?;
    // Remember the program so later submissions can reference it by
    // hash instead of re-sending the source.
    let program_hash = state.programs.remember(&spec.program);
    let outcome = state.registry.submit_at(spec, recv_ns, |key| {
        state.queue.push(Task::Job(key.to_string())).is_ok()
    });
    match outcome {
        SubmitOutcome::Existing(view) => Ok(SubmitAck::Cached {
            view: job_view(&view),
            program_hash,
        }),
        SubmitOutcome::Fresh(key) => Ok(SubmitAck::Queued {
            job: key,
            program_hash,
        }),
        SubmitOutcome::Rejected => Err(ApiError::new(
            ErrorCode::QueueFull,
            "job queue is full, retry later",
        )),
    }
}

/// Resolve a validated [`SubmitRequest`] into an executable [`JobSpec`]:
/// app names are checked against the built-in table, `program_hash`
/// against the daemon's program index, and the per-request knobs are
/// laid over the daemon's default configuration.
pub fn spec_from_request(
    request: SubmitRequest,
    defaults: &ScalAnaConfig,
    programs: &ProgramIndex,
) -> Result<JobSpec, ApiError> {
    let program = match request.program {
        ProgramRef::App(name) => {
            if scalana_apps::by_name(&name).is_none() {
                return Err(ApiError::new(
                    ErrorCode::UnknownApp,
                    format!("unknown app `{name}`"),
                ));
            }
            JobProgram::App(name)
        }
        ProgramRef::Source { name, text } => JobProgram::Source { name, text },
        ProgramRef::Hash(hash) => programs.resolve(&hash).ok_or_else(|| {
            ApiError::new(
                ErrorCode::UnknownProgramHash,
                format!(
                    "unknown program hash `{hash}` (never seen or evicted; re-send the source)"
                ),
            )
        })?,
    };

    let scales = request
        .scales
        .unwrap_or_else(|| dto::DEFAULT_SCALES.to_vec());
    let mut config = defaults.clone();
    if let Some(thd) = request.abnorm_thd {
        config.detect.abnorm_thd = thd;
    }
    if let Some(top) = request.top {
        config.detect.top_k = top;
    }
    if let Some(depth) = request.max_loop_depth {
        config.psg.max_loop_depth = depth;
    }
    for (name, value) in request.params {
        config.params.insert(name, value);
    }
    Ok(JobSpec {
        program,
        scales,
        config,
    })
}

/// Decode a parsed submission document into a [`JobSpec`]
/// (compatibility wrapper over [`SubmitRequest::from_json`] +
/// [`spec_from_request`]). Errors carry the HTTP status to answer with:
/// `400` for malformed requests, `404` for a `program_hash` the daemon
/// does not (or no longer does) know.
pub fn spec_from_doc(
    doc: &Json,
    defaults: &ScalAnaConfig,
    programs: &ProgramIndex,
) -> Result<JobSpec, (u16, String)> {
    SubmitRequest::from_json(doc)
        .and_then(|request| spec_from_request(request, defaults, programs))
        .map_err(|error| (error.http_status(), error.message))
}

/// Decode a submission body into a [`JobSpec`] (compatibility wrapper
/// over [`spec_from_doc`] without program-hash resolution).
pub fn parse_submit(body: &str, defaults: &ScalAnaConfig) -> Result<JobSpec, String> {
    let doc = parse(body).map_err(|e| format!("bad JSON: {e}"))?;
    let programs = ProgramIndex::new(1);
    spec_from_doc(&doc, defaults, &programs).map_err(|(_, message)| message)
}

fn result(key: &str, state: &State) -> Response {
    let Some(view) = state.registry.status(key) else {
        return error_response(&ApiError::new(ErrorCode::UnknownJob, "unknown job"));
    };
    match (view.status, &view.result) {
        (JobStatus::Done, Some(output)) => Response {
            code: 200,
            content_type: "application/json".to_string(),
            body: bytes::Bytes::from(
                dto::render_result(
                    key,
                    &output.report_json,
                    &output.runs_json,
                    output.detect_seconds,
                )
                .into_bytes(),
            ),
            headers: Vec::new(),
        },
        (JobStatus::Failed, _) => error_response(&ApiError::new(
            ErrorCode::JobFailed,
            view.error.as_deref().unwrap_or("job failed"),
        )),
        _ => error_response(&ApiError::new(ErrorCode::JobPending, "job still pending")),
    }
}

fn profile(key: &str, nprocs: &str, state: &State) -> Response {
    let Ok(nprocs) = nprocs.parse::<usize>() else {
        return error_response(&ApiError::bad_request("bad process count"));
    };
    let Some(view) = state.registry.status(key) else {
        return error_response(&ApiError::new(ErrorCode::UnknownJob, "unknown job"));
    };
    match (view.status, &view.result) {
        (JobStatus::Done, Some(output)) => {
            match output.profiles.iter().find(|(p, _)| *p == nprocs) {
                // A `Bytes` clone shares the allocation — no per-request
                // copy of a potentially tens-of-MiB image.
                Some((_, image)) => Response {
                    code: 200,
                    content_type: "application/octet-stream".to_string(),
                    body: image.clone(),
                    headers: Vec::new(),
                },
                None => error_response(&ApiError::new(
                    ErrorCode::NotFound,
                    "no profile at that scale",
                )),
            }
        }
        (JobStatus::Failed, _) => error_response(&ApiError::new(
            ErrorCode::JobFailed,
            view.error.as_deref().unwrap_or("job failed"),
        )),
        _ => error_response(&ApiError::new(ErrorCode::JobPending, "job still pending")),
    }
}

/// `POST /v1/diff` — submit (or reuse) both sides, wait for them, and
/// answer the structured comparison. Both sides go through the normal
/// submission path, so the whole-job cache, the per-scale profile
/// cache, and the refined-PSG cache all apply: diffing two analyses
/// that share scales simulates only what no previous job ever ran.
fn diff(request: &Request, state: &State) -> Routed {
    let doc = match parse(&request.body) {
        Ok(doc) => doc,
        Err(e) => {
            return Routed::Done(error_response(&ApiError::new(
                ErrorCode::BadJson,
                format!("bad JSON: {e}"),
            )))
        }
    };
    let diff_request = match DiffRequest::from_json(&doc) {
        Ok(request) => request,
        Err(error) => return Routed::Done(error_response(&error)),
    };
    let recv_ns = obs::now_ns();
    let submit_side = |label: &str, side: SubmitRequest| -> Result<String, ApiError> {
        submit_request(side, state, recv_ns)
            .map(|ack| ack.job().to_string())
            .map_err(|e| ApiError {
                message: format!("`{label}`: {}", e.message),
                ..e
            })
    };
    // Submit both before waiting on either, so the sides execute
    // concurrently across the worker pool.
    match (
        submit_side("a", diff_request.a),
        submit_side("b", diff_request.b),
    ) {
        (Ok(a), Ok(b)) => Routed::Diff { a, b },
        (Err(error), _) | (_, Err(error)) => Routed::Done(error_response(&error)),
    }
}

/// Resolve one side of a diff from its final wait outcome. Both sides
/// are always driven to an outcome before the response is assembled
/// (matching the historical both-sides-waited semantics); errors prefer
/// side `a` via [`render_diff`].
pub(crate) fn diff_side(
    label: &str,
    key: &str,
    outcome: WaitOutcome,
) -> Result<DiffSide, ApiError> {
    match outcome {
        // Not a bug: at result-cache capacity, FIFO eviction can
        // remove a completed record before this handler re-reads
        // it. Retrying re-submits the side and will normally win
        // the race (its profiles are still per-scale cached).
        WaitOutcome::Unknown => Err(ApiError::new(
            ErrorCode::Evicted,
            format!(
                "side `{label}` (job {key}) was evicted from the result cache before the \
                 diff could read it; retry"
            ),
        )),
        WaitOutcome::Pending(_) => Err(ApiError::new(
            ErrorCode::Timeout,
            format!("side `{label}` (job {key}) still pending after {DIFF_WAIT:?}"),
        )),
        WaitOutcome::Terminal(view) => match (view.status, &view.result) {
            (JobStatus::Done, Some(output)) => Ok(DiffSide {
                job: key.to_string(),
                // Stored fragments are canonical JSON rendered by
                // this process; a parse failure is a server bug.
                report: parse(&output.report_json).map_err(|e| {
                    ApiError::new(ErrorCode::Internal, format!("stored report: {e}"))
                })?,
                runs: parse(&output.runs_json)
                    .map_err(|e| ApiError::new(ErrorCode::Internal, format!("stored runs: {e}")))?,
            }),
            _ => Err(ApiError::new(
                ErrorCode::JobFailed,
                format!(
                    "side `{label}` (job {key}) failed: {}",
                    view.error.as_deref().unwrap_or("unknown error")
                ),
            )),
        },
    }
}

/// Assemble the final diff response from both resolved sides (side
/// `a`'s error wins when both failed, matching the historical
/// evaluation order).
pub(crate) fn render_diff(
    a: Result<DiffSide, ApiError>,
    b: Result<DiffSide, ApiError>,
) -> Response {
    match (a, b) {
        (Ok(a), Ok(b)) => json_response(200, scalana_api::diff::diff(&a, &b)),
        (Err(error), _) | (_, Err(error)) => error_response(&error),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_submit_accepts_app_and_source_forms() {
        let defaults = ScalAnaConfig::default();
        let spec = parse_submit(r#"{"app":"CG","scales":[2,4],"top":3}"#, &defaults).unwrap();
        assert!(matches!(&spec.program, JobProgram::App(n) if n == "CG"));
        assert_eq!(spec.scales, vec![2, 4]);
        assert_eq!(spec.config.detect.top_k, 3);

        let spec = parse_submit(
            r#"{"source":"fn main() { }","name":"x.mmpi","params":{"N":5},"abnorm_thd":1.5}"#,
            &defaults,
        )
        .unwrap();
        assert!(matches!(&spec.program, JobProgram::Source { name, .. } if name == "x.mmpi"));
        assert_eq!(spec.scales, vec![4, 8, 16, 32], "default scales");
        assert_eq!(spec.config.params["N"], 5);
        assert!((spec.config.detect.abnorm_thd - 1.5).abs() < 1e-12);
    }

    #[test]
    fn parse_submit_rejects_bad_requests() {
        let defaults = ScalAnaConfig::default();
        for (body, needle) in [
            ("{}", "exactly one"),
            (r#"{"app":"CG","source":"x"}"#, "exactly one"),
            (r#"{"app":"CG","program_hash":"ab"}"#, "exactly one"),
            (r#"{"app":"NOPE"}"#, "unknown app"),
            (r#"{"app":"CG","scales":[8,4]}"#, "ascending"),
            (r#"{"app":"CG","scales":[0]}"#, "1..="),
            (r#"{"app":"CG","scales":[1000000000]}"#, "1..="),
            (r#"{"app":"CG","max_loop_depth":4294967296}"#, "32-bit"),
            (r#"{"app":"CG","scales":"4"}"#, "array"),
            (r#"{"app":"CG","params":{"N":"x"}}"#, "integer"),
            (r#"{"app":"CG","wat":1}"#, "unknown field"),
            ("not json", "bad JSON"),
        ] {
            let err = parse_submit(body, &defaults).unwrap_err();
            assert!(err.contains(needle), "{body} -> {err}");
        }
    }

    #[test]
    fn spec_from_doc_resolves_program_hashes() {
        let defaults = ScalAnaConfig::default();
        let programs = ProgramIndex::new(0);
        let original = JobProgram::Source {
            name: "h.mmpi".to_string(),
            text: "fn main() { }".to_string(),
        };
        let hash = programs.remember(&original);

        let doc = parse(&format!(r#"{{"program_hash":"{hash}","scales":[2,4]}}"#)).unwrap();
        let spec = spec_from_doc(&doc, &defaults, &programs).unwrap();
        assert_eq!(spec.program.content_hash(), hash);
        assert_eq!(spec.scales, vec![2, 4]);

        let doc = parse(r#"{"program_hash":"doesnotexist0000"}"#).unwrap();
        let (code, message) = spec_from_doc(&doc, &defaults, &programs).unwrap_err();
        assert_eq!(code, 404, "unknown hash is Not Found, not Bad Request");
        assert!(message.contains("re-send"), "{message}");
    }

    #[test]
    fn routing_tables_cover_every_endpoint_constant() {
        // The allow-list is the routing contract; every path the api
        // crate publishes must be known to it (and unknown ones not).
        for (target, method) in [
            (paths::HEALTHZ.to_string(), "GET"),
            (paths::STATS.to_string(), "GET"),
            (paths::METRICS.to_string(), "GET"),
            (paths::SHUTDOWN.to_string(), "POST"),
            (paths::JOBS.to_string(), "POST"),
            (paths::jobs_list(Some("done"), Some(5), None), "GET"),
            (paths::job("k"), "GET"),
            (paths::job_result("k"), "GET"),
            (paths::job_profile("k", 8), "GET"),
            (paths::job_wait("k", 100), "GET"),
            (paths::job_trace("k"), "GET"),
            (paths::DIFF.to_string(), "POST"),
            (paths::STORE.to_string(), "GET"),
            (paths::STORE_GC.to_string(), "POST"),
            (paths::PEER_RING.to_string(), "GET"),
            (paths::PEER_ANNOUNCE.to_string(), "POST"),
            (paths::peer_profile("k"), "GET"),
            (paths::peer_profile("k"), "POST"),
            (paths::peer_psg("k"), "GET"),
            (paths::peer_psg("k"), "POST"),
        ] {
            let (path, _) = paths::split_target(&target);
            let segments: Vec<&str> = path
                .split('/')
                .filter(|s| !s.is_empty() && *s != paths::API_VERSION)
                .collect();
            let allowed =
                allowed_methods(&segments).unwrap_or_else(|| panic!("no allow entry for {target}"));
            assert!(
                allowed.split(", ").any(|m| m == method),
                "{method} {target} not allowed by `{allowed}`"
            );
        }
        assert!(allowed_methods(&["nope"]).is_none());
        assert!(allowed_methods(&["jobs", "k", "nope"]).is_none());
    }
}
