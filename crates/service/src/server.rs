//! The analysis daemon: TCP accept loop, worker pool, HTTP routing.
//!
//! ```text
//! POST /jobs                    submit a job (JSON body)
//! GET  /jobs/<id>               job status
//! GET  /jobs/<id>/result        cached analysis result (JSON)
//! GET  /jobs/<id>/profile/<p>   persisted profile image at scale <p>
//! GET  /stats                   counters: cache hits/misses, queue, ...
//! GET  /healthz                 liveness probe
//! POST /shutdown                graceful stop
//! ```
//!
//! Connections are short-lived (one request each); submissions land in
//! the bounded [`JobQueue`] and a pool of worker threads drains it,
//! running the `scalana_core::pipeline` per job. Results live in the
//! content-addressed [`Registry`], so identical re-submissions are
//! answered without re-simulating.

use crate::cache::{JobStatus, Registry, StatusView, SubmitOutcome};
use crate::http::{read_request, write_response, Request};
use crate::job::{JobProgram, JobSpec};
use crate::json::{parse, Json};
use crate::queue::JobQueue;
use scalana_core::ScalAnaConfig;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads executing analyses.
    pub workers: usize,
    /// Bounded queue capacity (submissions beyond it get `503`).
    pub queue_capacity: usize,
    /// Completed results retained in the cache (oldest evicted first;
    /// 0 = unbounded). Results hold profile images, so a long-lived
    /// daemon must bound them.
    pub max_cached_results: usize,
    /// Base analysis configuration; per-request knobs override it.
    pub default_config: ScalAnaConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().min(4))
            .unwrap_or(2);
        ServiceConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers,
            queue_capacity: 64,
            max_cached_results: 256,
            default_config: ScalAnaConfig::default(),
        }
    }
}

/// Most connection-handler threads alive at once. The job queue and
/// worker pool are bounded; without this, connection concurrency would
/// be the one unbounded resource (a burst of idle sockets = one thread
/// + stack each for up to the 30 s read timeout).
const MAX_CONNECTIONS: usize = 256;

struct State {
    registry: Registry,
    queue: JobQueue,
    workers: usize,
    shutdown: AtomicBool,
    addr: SocketAddr,
    connections: AtomicUsize,
    default_config: ScalAnaConfig,
}

/// Decrements the live-connection count when a handler exits, however
/// it exits.
struct ConnGuard<'a>(&'a AtomicUsize);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl State {
    fn trigger_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            self.queue.shutdown();
            // Wake the blocked accept loop with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// A bound (not yet running) daemon.
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.state.addr)
            .finish()
    }
}

impl Server {
    /// Bind the listener (the returned server is not serving yet).
    pub fn bind(config: &ServiceConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            state: Arc::new(State {
                registry: Registry::with_result_capacity(config.max_cached_results),
                queue: JobQueue::new(config.queue_capacity),
                workers: config.workers.max(1),
                shutdown: AtomicBool::new(false),
                addr,
                connections: AtomicUsize::new(0),
                default_config: config.default_config.clone(),
            }),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Serve until `POST /shutdown`. Blocks; spawns the worker pool and
    /// one short-lived thread per connection.
    pub fn run(self) -> io::Result<()> {
        let workers: Vec<_> = (0..self.state.workers)
            .map(|i| {
                let state = Arc::clone(&self.state);
                std::thread::Builder::new()
                    .name(format!("scalana-worker-{i}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawn worker")
            })
            .collect();

        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            // Overload shedding: answer 503 from the accept thread
            // rather than spawn an unbounded number of handlers.
            if self.state.connections.fetch_add(1, Ordering::SeqCst) >= MAX_CONNECTIONS {
                self.state.connections.fetch_sub(1, Ordering::SeqCst);
                let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                let _ = write_response(
                    &stream,
                    503,
                    "application/json",
                    b"{\"error\":\"too many connections\"}",
                );
                continue;
            }
            let state = Arc::clone(&self.state);
            // Detached: handlers are short-lived, time-limited, and
            // counted (the guard in handle_connection releases the slot).
            if std::thread::Builder::new()
                .name("scalana-conn".to_string())
                .spawn(move || handle_connection(stream, &state))
                .is_err()
            {
                self.state.connections.fetch_sub(1, Ordering::SeqCst);
            }
        }

        self.state.queue.shutdown();
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

fn worker_loop(state: &State) {
    // Runs until `pop` returns `None`: after shutdown the queue stops
    // accepting pushes but still hands out already-accepted jobs, so
    // every submission the daemon acknowledged gets executed (its record
    // would otherwise sit `queued` forever) — graceful, not abrupt.
    while let Some(key) = state.queue.pop() {
        let Some(spec) = state.registry.start(&key) else {
            continue;
        };
        // Isolate panics: execute() runs parser/simulator/detector over
        // client-supplied programs. An escaped panic would kill this
        // worker thread for good AND strand the record in `Running` —
        // unretryable, since only Failed records are resubmittable.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| spec.execute()));
        match result {
            Ok(Ok(output)) => state.registry.complete(&key, output),
            Ok(Err(error)) => state.registry.fail(&key, error),
            Err(panic) => state
                .registry
                .fail(&key, format!("job panicked: {}", panic_message(&panic))),
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    panic
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| panic.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("unknown panic")
}

fn handle_connection(stream: TcpStream, state: &State) {
    let _guard = ConnGuard(&state.connections);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    let request = match stream.try_clone().and_then(read_request) {
        Ok(request) => request,
        Err(_) => {
            let _ = respond_json(
                &stream,
                400,
                &Json::obj(vec![("error", "malformed request".into())]),
            );
            return;
        }
    };
    let (response, action) = route(&request, state);
    let (code, content_type, body) = response;
    let _ = write_response(&stream, code, &content_type, &body);
    // The routing decision (not a re-match on the raw path, which would
    // miss normalized forms like `//shutdown`) drives post-response
    // actions, after the acknowledgment is on the wire.
    if action == Action::Shutdown {
        state.trigger_shutdown();
    }
}

fn respond_json(stream: &TcpStream, code: u16, body: &Json) -> io::Result<()> {
    write_response(stream, code, "application/json", body.render().as_bytes())
}

/// What to do after the response is written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    None,
    Shutdown,
}

/// Bodies are `Bytes` so a cached profile image is served by refcount
/// bump, not a per-request deep copy.
type Response = (u16, String, bytes::Bytes);

fn json_response(code: u16, body: Json) -> Response {
    (
        code,
        "application/json".to_string(),
        bytes::Bytes::from(body.render().into_bytes()),
    )
}

fn error_response(code: u16, message: &str) -> Response {
    json_response(code, Json::obj(vec![("error", message.into())]))
}

fn route(request: &Request, state: &State) -> (Response, Action) {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    let response = match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => json_response(200, Json::obj(vec![("ok", true.into())])),
        ("GET", ["stats"]) => json_response(200, stats_json(state)),
        ("POST", ["shutdown"]) => {
            return (
                json_response(200, Json::obj(vec![("ok", true.into())])),
                Action::Shutdown,
            );
        }
        ("POST", ["jobs"]) => submit(request, state),
        ("GET", ["jobs", key]) => match state.registry.status(key) {
            Some(view) => json_response(200, status_json(&view)),
            None => error_response(404, "unknown job"),
        },
        ("GET", ["jobs", key, "result"]) => result(key, state),
        ("GET", ["jobs", key, "profile", nprocs]) => profile(key, nprocs, state),
        ("GET" | "POST", _) => error_response(404, "no such endpoint"),
        _ => error_response(405, "unsupported method"),
    };
    (response, Action::None)
}

fn stats_json(state: &State) -> Json {
    let stats = state.registry.stats();
    Json::obj(vec![
        ("workers", state.workers.into()),
        ("queue_depth", state.queue.depth().into()),
        ("results_cached", state.registry.results_cached().into()),
        ("submitted", stats.submitted.into()),
        ("cache_hits", stats.cache_hits.into()),
        ("cache_misses", stats.cache_misses.into()),
        ("rejected", stats.rejected.into()),
        ("executed", stats.executed.into()),
        ("completed", stats.completed.into()),
        ("failed", stats.failed.into()),
        ("evicted", stats.evicted.into()),
    ])
}

fn status_json(view: &StatusView) -> Json {
    let mut pairs = vec![
        ("job", Json::from(view.key.as_str())),
        ("program", view.label.as_str().into()),
        ("scales", view.scales.clone().into()),
        ("status", view.status.as_str().into()),
    ];
    if let Some(error) = &view.error {
        pairs.push(("error", error.as_str().into()));
    }
    Json::obj(pairs)
}

fn submit(request: &Request, state: &State) -> Response {
    let spec = match parse_submit(&request.body, &state.default_config) {
        Ok(spec) => spec,
        Err(message) => return error_response(400, &message),
    };
    let outcome = state
        .registry
        .submit(spec, |key| state.queue.push(key.to_string()).is_ok());
    match outcome {
        SubmitOutcome::Existing(view) => {
            let mut body = status_json(&view);
            if let Json::Obj(pairs) = &mut body {
                pairs.push(("cached".to_string(), Json::Bool(true)));
            }
            json_response(200, body)
        }
        SubmitOutcome::Fresh(key) => json_response(
            200,
            Json::obj(vec![
                ("job", key.as_str().into()),
                ("status", "queued".into()),
                ("cached", false.into()),
            ]),
        ),
        SubmitOutcome::Rejected => error_response(503, "job queue is full, retry later"),
    }
}

fn result(key: &str, state: &State) -> Response {
    let Some(view) = state.registry.status(key) else {
        return error_response(404, "unknown job");
    };
    match (view.status, &view.result) {
        (JobStatus::Done, Some(output)) => {
            // Splice the pre-rendered canonical fragments — results are
            // fetched repeatedly, and cloning + re-rendering the whole
            // report tree per request is the expensive way to say the
            // same bytes. Field syntax stays valid because every
            // fragment is itself canonical JSON.
            let mut body =
                String::with_capacity(output.report_json.len() + output.runs_json.len() + 96);
            body.push_str("{\"job\":");
            body.push_str(&Json::from(key).render());
            body.push_str(",\"report\":");
            body.push_str(&output.report_json);
            body.push_str(",\"runs\":");
            body.push_str(&output.runs_json);
            body.push_str(",\"detect_seconds\":");
            body.push_str(&Json::Num(output.detect_seconds).render());
            body.push('}');
            (
                200,
                "application/json".to_string(),
                bytes::Bytes::from(body.into_bytes()),
            )
        }
        (JobStatus::Failed, _) => {
            error_response(500, view.error.as_deref().unwrap_or("job failed"))
        }
        _ => error_response(409, "job still pending"),
    }
}

fn profile(key: &str, nprocs: &str, state: &State) -> Response {
    let Ok(nprocs) = nprocs.parse::<usize>() else {
        return error_response(400, "bad process count");
    };
    let Some(view) = state.registry.status(key) else {
        return error_response(404, "unknown job");
    };
    match (view.status, &view.result) {
        (JobStatus::Done, Some(output)) => {
            match output.profiles.iter().find(|(p, _)| *p == nprocs) {
                // A `Bytes` clone shares the allocation — no per-request
                // copy of a potentially tens-of-MiB image.
                Some((_, image)) => (200, "application/octet-stream".to_string(), image.clone()),
                None => error_response(404, "no profile at that scale"),
            }
        }
        (JobStatus::Failed, _) => {
            error_response(500, view.error.as_deref().unwrap_or("job failed"))
        }
        _ => error_response(409, "job still pending"),
    }
}

/// Largest accepted process count per scale. The simulator allocates
/// per-rank state, so an unbounded request (`"scales":[1000000000]`)
/// would OOM a worker; the paper's largest runs are a few thousand
/// ranks, so this guardrail costs nothing real.
pub const MAX_SCALE: usize = 65_536;

/// Decode a submission body into a [`JobSpec`].
///
/// ```json
/// {"app": "CG", "scales": [4, 8], "top": 3}
/// {"source": "fn main() { ... }", "name": "demo.mmpi",
///  "scales": [2, 4], "abnorm_thd": 1.5, "max_loop_depth": 6,
///  "params": {"N": 100000}}
/// ```
pub fn parse_submit(body: &str, defaults: &ScalAnaConfig) -> Result<JobSpec, String> {
    let doc = parse(body).map_err(|e| format!("bad JSON: {e}"))?;
    let program = match (doc.get("app"), doc.get("source")) {
        (Some(app), None) => {
            let name = app.as_str().ok_or("`app` must be a string")?;
            if scalana_apps::by_name(name).is_none() {
                return Err(format!("unknown app `{name}`"));
            }
            JobProgram::App(name.to_string())
        }
        (None, Some(source)) => JobProgram::Source {
            name: doc
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or("inline.mmpi")
                .to_string(),
            text: source
                .as_str()
                .ok_or("`source` must be a string")?
                .to_string(),
        },
        _ => return Err("exactly one of `app` or `source` is required".to_string()),
    };

    let scales = match doc.get("scales") {
        None => vec![4, 8, 16, 32],
        Some(value) => {
            let items = value.as_array().ok_or("`scales` must be an array")?;
            let scales: Vec<usize> = items
                .iter()
                .map(|v| {
                    v.as_i64()
                        .filter(|n| (1..=MAX_SCALE as i64).contains(n))
                        .map(|n| n as usize)
                        .ok_or_else(|| {
                            format!("`scales` entries must be integers in 1..={MAX_SCALE}")
                        })
                })
                .collect::<Result<_, _>>()?;
            if scales.is_empty() || scales.windows(2).any(|w| w[0] >= w[1]) {
                return Err("`scales` must be a strictly ascending list".to_string());
            }
            scales
        }
    };

    let mut config = defaults.clone();
    if let Some(v) = doc.get("abnorm_thd") {
        config.detect.abnorm_thd = v.as_f64().ok_or("`abnorm_thd` must be a number")?;
    }
    if let Some(v) = doc.get("top") {
        config.detect.top_k = v
            .as_i64()
            .filter(|n| *n >= 0)
            .ok_or("`top` must be a non-negative integer")? as usize;
    }
    if let Some(v) = doc.get("max_loop_depth") {
        config.psg.max_loop_depth = v
            .as_i64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or("`max_loop_depth` must be a non-negative 32-bit integer")?;
    }
    if let Some(v) = doc.get("params") {
        match v {
            Json::Obj(pairs) => {
                for (name, value) in pairs {
                    let value = value
                        .as_i64()
                        .ok_or_else(|| format!("param `{name}` must be an integer"))?;
                    config.params.insert(name.clone(), value);
                }
            }
            _ => return Err("`params` must be an object".to_string()),
        }
    }
    Ok(JobSpec {
        program,
        scales,
        config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_submit_accepts_app_and_source_forms() {
        let defaults = ScalAnaConfig::default();
        let spec = parse_submit(r#"{"app":"CG","scales":[2,4],"top":3}"#, &defaults).unwrap();
        assert!(matches!(&spec.program, JobProgram::App(n) if n == "CG"));
        assert_eq!(spec.scales, vec![2, 4]);
        assert_eq!(spec.config.detect.top_k, 3);

        let spec = parse_submit(
            r#"{"source":"fn main() { }","name":"x.mmpi","params":{"N":5},"abnorm_thd":1.5}"#,
            &defaults,
        )
        .unwrap();
        assert!(matches!(&spec.program, JobProgram::Source { name, .. } if name == "x.mmpi"));
        assert_eq!(spec.scales, vec![4, 8, 16, 32], "default scales");
        assert_eq!(spec.config.params["N"], 5);
        assert!((spec.config.detect.abnorm_thd - 1.5).abs() < 1e-12);
    }

    #[test]
    fn parse_submit_rejects_bad_requests() {
        let defaults = ScalAnaConfig::default();
        for (body, needle) in [
            ("{}", "exactly one"),
            (r#"{"app":"CG","source":"x"}"#, "exactly one"),
            (r#"{"app":"NOPE"}"#, "unknown app"),
            (r#"{"app":"CG","scales":[8,4]}"#, "ascending"),
            (r#"{"app":"CG","scales":[0]}"#, "1..="),
            (r#"{"app":"CG","scales":[1000000000]}"#, "1..="),
            (r#"{"app":"CG","max_loop_depth":4294967296}"#, "32-bit"),
            (r#"{"app":"CG","scales":"4"}"#, "array"),
            (r#"{"app":"CG","params":{"N":"x"}}"#, "integer"),
            ("not json", "bad JSON"),
        ] {
            let err = parse_submit(body, &defaults).unwrap_err();
            assert!(err.contains(needle), "{body} -> {err}");
        }
    }
}
