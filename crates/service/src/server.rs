//! The analysis daemon: TCP accept loop, worker pool, HTTP routing.
//!
//! ```text
//! POST /jobs                    submit a job (JSON object) or a batch (JSON array)
//! GET  /jobs/<id>               job status
//! GET  /jobs/<id>/result        cached analysis result (JSON)
//! GET  /jobs/<id>/profile/<p>   persisted profile image at scale <p>
//! GET  /stats                   counters: job + per-scale cache hits/misses, ...
//! GET  /healthz                 liveness probe
//! POST /shutdown                graceful stop
//! ```
//!
//! Connections speak HTTP/1.1 keep-alive: one socket carries any number
//! of sequential requests (a poll loop costs one TCP handshake total).
//! Submissions land in the bounded [`JobQueue`]; a pool of worker
//! threads executes them *per scale* ([`crate::exec`]): each requested
//! scale resolves against the content-addressed per-scale
//! [`ProfileCache`] first, only the misses are simulated — fanned out
//! across the pool, not one worker per job — and whole-job results live
//! in the sharded [`Registry`], so identical re-submissions are answered
//! without touching the queue and overlapping ones re-simulate only
//! their genuinely new scales.

use crate::cache::{JobStatus, Registry, StatusView, SubmitOutcome};
use crate::exec::{ExecCtx, Task};
use crate::http::{write_response_conn, MessageReader, Request};
use crate::job::{JobProgram, JobSpec};
use crate::json::{parse, Json};
use crate::profile_cache::{ProfileCache, ProgramIndex, PsgCache};
use crate::queue::JobQueue;
use scalana_core::ScalAnaConfig;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads executing analyses.
    pub workers: usize,
    /// Bounded queue capacity (submissions beyond it get `503`).
    pub queue_capacity: usize,
    /// Completed results retained in the cache (oldest evicted first;
    /// 0 = unbounded). Results hold profile images, so a long-lived
    /// daemon must bound them.
    pub max_cached_results: usize,
    /// Per-scale profile images retained (oldest evicted first;
    /// 0 = unbounded). The unit of cross-job reuse: one entry per
    /// (program, profile config, discovery scale, scale).
    pub max_cached_profiles: usize,
    /// Refined PSGs retained (0 = unbounded). Small and extremely
    /// reusable — one per (program, PSG options, discovery scale).
    pub max_cached_psgs: usize,
    /// Programs indexed by content hash for `--program-hash` reuse
    /// (0 = unbounded).
    pub max_indexed_programs: usize,
    /// Base analysis configuration; per-request knobs override it.
    pub default_config: ScalAnaConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get().min(4))
            .unwrap_or(2);
        ServiceConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers,
            queue_capacity: 64,
            max_cached_results: 256,
            max_cached_profiles: 1024,
            max_cached_psgs: 64,
            max_indexed_programs: 512,
            default_config: ScalAnaConfig::default(),
        }
    }
}

/// Most connection-handler threads alive at once. The job queue and
/// worker pool are bounded; without this, connection concurrency would
/// be the one unbounded resource (a burst of idle sockets = one thread
/// + stack each for up to the 30 s read timeout).
const MAX_CONNECTIONS: usize = 256;

struct State {
    registry: Registry,
    queue: JobQueue<Task>,
    profiles: ProfileCache,
    psgs: PsgCache,
    programs: ProgramIndex,
    workers: usize,
    shutdown: AtomicBool,
    addr: SocketAddr,
    connections: AtomicUsize,
    default_config: ScalAnaConfig,
}

impl State {
    fn exec_ctx(&self) -> ExecCtx<'_> {
        ExecCtx {
            registry: &self.registry,
            queue: &self.queue,
            profiles: &self.profiles,
            psgs: &self.psgs,
        }
    }

    fn trigger_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            self.queue.shutdown();
            // Wake the blocked accept loop with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// Decrements the live-connection count when a handler exits, however
/// it exits.
struct ConnGuard<'a>(&'a AtomicUsize);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A bound (not yet running) daemon.
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.state.addr)
            .finish()
    }
}

impl Server {
    /// Bind the listener (the returned server is not serving yet).
    pub fn bind(config: &ServiceConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            state: Arc::new(State {
                registry: Registry::with_result_capacity(config.max_cached_results),
                queue: JobQueue::new(config.queue_capacity),
                profiles: ProfileCache::new(config.max_cached_profiles),
                psgs: PsgCache::new(config.max_cached_psgs),
                programs: ProgramIndex::new(config.max_indexed_programs),
                workers: config.workers.max(1),
                shutdown: AtomicBool::new(false),
                addr,
                connections: AtomicUsize::new(0),
                default_config: config.default_config.clone(),
            }),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Serve until `POST /shutdown`. Blocks; spawns the worker pool and
    /// one connection-handler thread per live connection.
    pub fn run(self) -> io::Result<()> {
        let workers: Vec<_> = (0..self.state.workers)
            .map(|i| {
                let state = Arc::clone(&self.state);
                std::thread::Builder::new()
                    .name(format!("scalana-worker-{i}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawn worker")
            })
            .collect();

        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            // Overload shedding: answer 503 from the accept thread
            // rather than spawn an unbounded number of handlers.
            if self.state.connections.fetch_add(1, Ordering::SeqCst) >= MAX_CONNECTIONS {
                self.state.connections.fetch_sub(1, Ordering::SeqCst);
                let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                let _ = write_response_conn(
                    &stream,
                    503,
                    "application/json",
                    b"{\"error\":\"too many connections\"}",
                    false,
                );
                continue;
            }
            let state = Arc::clone(&self.state);
            // Detached: handlers are time-limited (the read timeout
            // bounds idle keep-alive connections) and counted (the
            // guard in handle_connection releases the slot).
            if std::thread::Builder::new()
                .name("scalana-conn".to_string())
                .spawn(move || handle_connection(stream, &state))
                .is_err()
            {
                self.state.connections.fetch_sub(1, Ordering::SeqCst);
            }
        }

        self.state.queue.shutdown();
        for worker in workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

fn worker_loop(state: &State) {
    // Runs until `pop` returns `None`: after shutdown the queue stops
    // accepting job pushes but still hands out already-accepted tasks —
    // both whole jobs and the per-scale work they fan out — so every
    // submission the daemon acknowledged gets executed (its record
    // would otherwise sit `queued` forever) — graceful, not abrupt.
    let ctx = state.exec_ctx();
    while let Some(task) = state.queue.pop() {
        // Panic isolation lives inside run_task: pipeline stages over
        // client-supplied programs run under catch_unwind and fail the
        // job instead of killing this worker.
        crate::exec::run_task(&ctx, task);
    }
}

fn handle_connection(stream: TcpStream, state: &State) {
    let _guard = ConnGuard(&state.connections);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
    // Keep-alive exchanges are small request/response pairs; Nagle
    // batching would add delayed-ACK latency to every one of them.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = MessageReader::new(read_half);
    // Keep-alive loop: one request per iteration, strictly in order
    // (pipelined requests are answered in sequence).
    loop {
        let request = match reader.next_request() {
            Ok(Some(request)) => request,
            // Peer closed between requests — a clean end.
            Ok(None) => return,
            Err(e) => {
                // An idle keep-alive connection hitting the read
                // timeout is normal; only protocol garbage earns a 400.
                if e.kind() != io::ErrorKind::WouldBlock && e.kind() != io::ErrorKind::TimedOut {
                    let _ = write_response_conn(
                        &stream,
                        400,
                        "application/json",
                        b"{\"error\":\"malformed request\"}",
                        false,
                    );
                }
                return;
            }
        };
        let (response, action) = route(&request, state);
        let (code, content_type, body) = response;
        // Shutting down (this request or a concurrent one): announce
        // close so well-behaved clients stop reusing the socket.
        let keep_alive = request.keep_alive
            && action != Action::Shutdown
            && !state.shutdown.load(Ordering::SeqCst);
        let written = write_response_conn(&stream, code, &content_type, &body, keep_alive).is_ok();
        // The routing decision (not a re-match on the raw path, which
        // would miss normalized forms like `//shutdown`) drives
        // post-response actions, after the acknowledgment is on the
        // wire. Shutdown happens even when the write failed — a client
        // that disconnects right after sending `POST /shutdown` must
        // not leave a zombie daemon behind.
        if action == Action::Shutdown {
            state.trigger_shutdown();
        }
        if !written || !keep_alive {
            return;
        }
    }
}

/// What to do after the response is written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    None,
    Shutdown,
}

/// Bodies are `Bytes` so a cached profile image is served by refcount
/// bump, not a per-request deep copy.
type Response = (u16, String, bytes::Bytes);

fn json_response(code: u16, body: Json) -> Response {
    (
        code,
        "application/json".to_string(),
        bytes::Bytes::from(body.render().into_bytes()),
    )
}

fn error_response(code: u16, message: &str) -> Response {
    json_response(code, Json::obj(vec![("error", message.into())]))
}

fn route(request: &Request, state: &State) -> (Response, Action) {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    let response = match (request.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => json_response(200, Json::obj(vec![("ok", true.into())])),
        ("GET", ["stats"]) => json_response(200, stats_json(state)),
        ("POST", ["shutdown"]) => {
            return (
                json_response(200, Json::obj(vec![("ok", true.into())])),
                Action::Shutdown,
            );
        }
        ("POST", ["jobs"]) => submit(request, state),
        ("GET", ["jobs", key]) => match state.registry.status(key) {
            Some(view) => json_response(200, status_json(&view)),
            None => error_response(404, "unknown job"),
        },
        ("GET", ["jobs", key, "result"]) => result(key, state),
        ("GET", ["jobs", key, "profile", nprocs]) => profile(key, nprocs, state),
        ("GET" | "POST", _) => error_response(404, "no such endpoint"),
        _ => error_response(405, "unsupported method"),
    };
    (response, Action::None)
}

fn stats_json(state: &State) -> Json {
    let stats = state.registry.stats();
    let scale = state.profiles.stats();
    let (psg_hits, psg_misses) = state.psgs.stats();
    Json::obj(vec![
        ("workers", state.workers.into()),
        ("queue_depth", state.queue.depth().into()),
        ("results_cached", state.registry.results_cached().into()),
        ("submitted", stats.submitted.into()),
        ("cache_hits", stats.cache_hits.into()),
        ("cache_misses", stats.cache_misses.into()),
        ("rejected", stats.rejected.into()),
        ("executed", stats.executed.into()),
        ("completed", stats.completed.into()),
        ("failed", stats.failed.into()),
        ("evicted", stats.evicted.into()),
        // Per-scale profile cache: the unit of cross-job reuse.
        ("scale_hits", scale.hits.into()),
        ("scale_misses", scale.misses.into()),
        ("scale_evicted", scale.evicted.into()),
        ("profiles_cached", scale.entries.into()),
        ("psg_hits", psg_hits.into()),
        ("psg_misses", psg_misses.into()),
        ("programs_indexed", state.programs.len().into()),
    ])
}

fn status_json(view: &StatusView) -> Json {
    let mut pairs = vec![
        ("job", Json::from(view.key.as_str())),
        ("program", view.label.as_str().into()),
        ("scales", view.scales.clone().into()),
        ("status", view.status.as_str().into()),
    ];
    if let Some(error) = &view.error {
        pairs.push(("error", error.as_str().into()));
    }
    Json::obj(pairs)
}

/// `POST /jobs`: a single submission object, or an array of them (the
/// batched form — one request, many submissions, one array of the same
/// per-job response objects, answered in order).
fn submit(request: &Request, state: &State) -> Response {
    let doc = match parse(&request.body) {
        Ok(doc) => doc,
        Err(e) => return error_response(400, &format!("bad JSON: {e}")),
    };
    match doc {
        Json::Arr(items) => {
            if items.is_empty() {
                return error_response(400, "empty batch");
            }
            let responses: Vec<Json> = items
                .iter()
                .map(|item| match submit_one(item, state) {
                    Ok(body) => body,
                    // Per-item errors are reported in place: one bad
                    // entry must not void its siblings' acknowledgments.
                    Err((code, message)) => Json::obj(vec![
                        ("error", message.as_str().into()),
                        ("code", i64::from(code).into()),
                    ]),
                })
                .collect();
            json_response(200, Json::Arr(responses))
        }
        doc => match submit_one(&doc, state) {
            Ok(body) => json_response(200, body),
            Err((code, message)) => error_response(code, &message),
        },
    }
}

/// Register one submission document; returns the response body.
fn submit_one(doc: &Json, state: &State) -> Result<Json, (u16, String)> {
    let spec = spec_from_doc(doc, &state.default_config, &state.programs)?;
    // Remember the program so later submissions can reference it by
    // hash instead of re-sending the source.
    let program_hash = state.programs.remember(&spec.program);
    let outcome = state.registry.submit(spec, |key| {
        state.queue.push(Task::Job(key.to_string())).is_ok()
    });
    match outcome {
        SubmitOutcome::Existing(view) => {
            let mut body = status_json(&view);
            if let Json::Obj(pairs) = &mut body {
                pairs.push(("cached".to_string(), Json::Bool(true)));
                pairs.push(("program_hash".to_string(), program_hash.into()));
            }
            Ok(body)
        }
        SubmitOutcome::Fresh(key) => Ok(Json::obj(vec![
            ("job", key.as_str().into()),
            ("status", "queued".into()),
            ("cached", false.into()),
            ("program_hash", program_hash.into()),
        ])),
        SubmitOutcome::Rejected => Err((503, "job queue is full, retry later".to_string())),
    }
}

/// Largest accepted process count per scale. The simulator allocates
/// per-rank state, so an unbounded request (`"scales":[1000000000]`)
/// would OOM a worker; the paper's largest runs are a few thousand
/// ranks, so this guardrail costs nothing real.
pub const MAX_SCALE: usize = 65_536;

/// Decode a parsed submission document into a [`JobSpec`]. Errors carry
/// the HTTP status to answer with: `400` for malformed requests, `404`
/// for a `program_hash` the daemon does not (or no longer does) know.
///
/// ```json
/// {"app": "CG", "scales": [4, 8], "top": 3}
/// {"source": "fn main() { ... }", "name": "demo.mmpi",
///  "scales": [2, 4], "abnorm_thd": 1.5, "max_loop_depth": 6,
///  "params": {"N": 100000}}
/// {"program_hash": "f00f5ca1a71e57ed", "scales": [2, 4, 8, 16]}
/// ```
pub fn spec_from_doc(
    doc: &Json,
    defaults: &ScalAnaConfig,
    programs: &ProgramIndex,
) -> Result<JobSpec, (u16, String)> {
    let bad = |message: String| (400u16, message);
    let program = match (doc.get("app"), doc.get("source"), doc.get("program_hash")) {
        (Some(app), None, None) => {
            let name = app
                .as_str()
                .ok_or_else(|| bad("`app` must be a string".to_string()))?;
            if scalana_apps::by_name(name).is_none() {
                return Err(bad(format!("unknown app `{name}`")));
            }
            JobProgram::App(name.to_string())
        }
        (None, Some(source), None) => JobProgram::Source {
            name: doc
                .get("name")
                .and_then(Json::as_str)
                .unwrap_or("inline.mmpi")
                .to_string(),
            text: source
                .as_str()
                .ok_or_else(|| bad("`source` must be a string".to_string()))?
                .to_string(),
        },
        (None, None, Some(hash)) => {
            let hash = hash
                .as_str()
                .ok_or_else(|| bad("`program_hash` must be a string".to_string()))?;
            programs.resolve(hash).ok_or((
                404u16,
                format!(
                    "unknown program hash `{hash}` (never seen or evicted; re-send the source)"
                ),
            ))?
        }
        _ => {
            return Err(bad(
                "exactly one of `app`, `source`, or `program_hash` is required".to_string(),
            ))
        }
    };

    let scales = match doc.get("scales") {
        None => vec![4, 8, 16, 32],
        Some(value) => {
            let items = value
                .as_array()
                .ok_or_else(|| bad("`scales` must be an array".to_string()))?;
            let scales: Vec<usize> = items
                .iter()
                .map(|v| {
                    v.as_i64()
                        .filter(|n| (1..=MAX_SCALE as i64).contains(n))
                        .map(|n| n as usize)
                        .ok_or_else(|| {
                            bad(format!(
                                "`scales` entries must be integers in 1..={MAX_SCALE}"
                            ))
                        })
                })
                .collect::<Result<_, _>>()?;
            if scales.is_empty() || scales.windows(2).any(|w| w[0] >= w[1]) {
                return Err(bad("`scales` must be a strictly ascending list".to_string()));
            }
            scales
        }
    };

    let mut config = defaults.clone();
    if let Some(v) = doc.get("abnorm_thd") {
        config.detect.abnorm_thd = v
            .as_f64()
            .ok_or_else(|| bad("`abnorm_thd` must be a number".to_string()))?;
    }
    if let Some(v) = doc.get("top") {
        config.detect.top_k = v
            .as_i64()
            .filter(|n| *n >= 0)
            .ok_or_else(|| bad("`top` must be a non-negative integer".to_string()))?
            as usize;
    }
    if let Some(v) = doc.get("max_loop_depth") {
        config.psg.max_loop_depth =
            v.as_i64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| {
                    bad("`max_loop_depth` must be a non-negative 32-bit integer".to_string())
                })?;
    }
    if let Some(v) = doc.get("params") {
        match v {
            Json::Obj(pairs) => {
                for (name, value) in pairs {
                    let value = value
                        .as_i64()
                        .ok_or_else(|| bad(format!("param `{name}` must be an integer")))?;
                    config.params.insert(name.clone(), value);
                }
            }
            _ => return Err(bad("`params` must be an object".to_string())),
        }
    }
    Ok(JobSpec {
        program,
        scales,
        config,
    })
}

/// Decode a submission body into a [`JobSpec`] (compatibility wrapper
/// over [`spec_from_doc`] without program-hash resolution).
pub fn parse_submit(body: &str, defaults: &ScalAnaConfig) -> Result<JobSpec, String> {
    let doc = parse(body).map_err(|e| format!("bad JSON: {e}"))?;
    let programs = ProgramIndex::new(1);
    spec_from_doc(&doc, defaults, &programs).map_err(|(_, message)| message)
}

fn result(key: &str, state: &State) -> Response {
    let Some(view) = state.registry.status(key) else {
        return error_response(404, "unknown job");
    };
    match (view.status, &view.result) {
        (JobStatus::Done, Some(output)) => {
            // Splice the pre-rendered canonical fragments — results are
            // fetched repeatedly, and cloning + re-rendering the whole
            // report tree per request is the expensive way to say the
            // same bytes. Field syntax stays valid because every
            // fragment is itself canonical JSON.
            let mut body =
                String::with_capacity(output.report_json.len() + output.runs_json.len() + 96);
            body.push_str("{\"job\":");
            body.push_str(&Json::from(key).render());
            body.push_str(",\"report\":");
            body.push_str(&output.report_json);
            body.push_str(",\"runs\":");
            body.push_str(&output.runs_json);
            body.push_str(",\"detect_seconds\":");
            body.push_str(&Json::Num(output.detect_seconds).render());
            body.push('}');
            (
                200,
                "application/json".to_string(),
                bytes::Bytes::from(body.into_bytes()),
            )
        }
        (JobStatus::Failed, _) => {
            error_response(500, view.error.as_deref().unwrap_or("job failed"))
        }
        _ => error_response(409, "job still pending"),
    }
}

fn profile(key: &str, nprocs: &str, state: &State) -> Response {
    let Ok(nprocs) = nprocs.parse::<usize>() else {
        return error_response(400, "bad process count");
    };
    let Some(view) = state.registry.status(key) else {
        return error_response(404, "unknown job");
    };
    match (view.status, &view.result) {
        (JobStatus::Done, Some(output)) => {
            match output.profiles.iter().find(|(p, _)| *p == nprocs) {
                // A `Bytes` clone shares the allocation — no per-request
                // copy of a potentially tens-of-MiB image.
                Some((_, image)) => (200, "application/octet-stream".to_string(), image.clone()),
                None => error_response(404, "no profile at that scale"),
            }
        }
        (JobStatus::Failed, _) => {
            error_response(500, view.error.as_deref().unwrap_or("job failed"))
        }
        _ => error_response(409, "job still pending"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_submit_accepts_app_and_source_forms() {
        let defaults = ScalAnaConfig::default();
        let spec = parse_submit(r#"{"app":"CG","scales":[2,4],"top":3}"#, &defaults).unwrap();
        assert!(matches!(&spec.program, JobProgram::App(n) if n == "CG"));
        assert_eq!(spec.scales, vec![2, 4]);
        assert_eq!(spec.config.detect.top_k, 3);

        let spec = parse_submit(
            r#"{"source":"fn main() { }","name":"x.mmpi","params":{"N":5},"abnorm_thd":1.5}"#,
            &defaults,
        )
        .unwrap();
        assert!(matches!(&spec.program, JobProgram::Source { name, .. } if name == "x.mmpi"));
        assert_eq!(spec.scales, vec![4, 8, 16, 32], "default scales");
        assert_eq!(spec.config.params["N"], 5);
        assert!((spec.config.detect.abnorm_thd - 1.5).abs() < 1e-12);
    }

    #[test]
    fn parse_submit_rejects_bad_requests() {
        let defaults = ScalAnaConfig::default();
        for (body, needle) in [
            ("{}", "exactly one"),
            (r#"{"app":"CG","source":"x"}"#, "exactly one"),
            (r#"{"app":"CG","program_hash":"ab"}"#, "exactly one"),
            (r#"{"app":"NOPE"}"#, "unknown app"),
            (r#"{"app":"CG","scales":[8,4]}"#, "ascending"),
            (r#"{"app":"CG","scales":[0]}"#, "1..="),
            (r#"{"app":"CG","scales":[1000000000]}"#, "1..="),
            (r#"{"app":"CG","max_loop_depth":4294967296}"#, "32-bit"),
            (r#"{"app":"CG","scales":"4"}"#, "array"),
            (r#"{"app":"CG","params":{"N":"x"}}"#, "integer"),
            ("not json", "bad JSON"),
        ] {
            let err = parse_submit(body, &defaults).unwrap_err();
            assert!(err.contains(needle), "{body} -> {err}");
        }
    }

    #[test]
    fn spec_from_doc_resolves_program_hashes() {
        let defaults = ScalAnaConfig::default();
        let programs = ProgramIndex::new(0);
        let original = JobProgram::Source {
            name: "h.mmpi".to_string(),
            text: "fn main() { }".to_string(),
        };
        let hash = programs.remember(&original);

        let doc = parse(&format!(r#"{{"program_hash":"{hash}","scales":[2,4]}}"#)).unwrap();
        let spec = spec_from_doc(&doc, &defaults, &programs).unwrap();
        assert_eq!(spec.program.content_hash(), hash);
        assert_eq!(spec.scales, vec![2, 4]);

        let doc = parse(r#"{"program_hash":"doesnotexist0000"}"#).unwrap();
        let (code, message) = spec_from_doc(&doc, &defaults, &programs).unwrap_err();
        assert_eq!(code, 404, "unknown hash is Not Found, not Bad Request");
        assert!(message.contains("re-send"), "{message}");
    }
}
