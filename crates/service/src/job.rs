//! Job specification, content addressing, and execution.

use crate::hash::{hash_config, hash_profile_config, StableHasher};
use crate::json::Json;
use crate::jsonify::{report_to_json, run_summary_to_json};
use bytes::Bytes;
use scalana_core::{assemble, pipeline, ScalAnaConfig};
use scalana_lang::{parse_program, Program};

/// What program a job analyzes.
#[derive(Debug, Clone)]
pub enum JobProgram {
    /// A built-in workload by Table II name (`CG`, `ZMP`, ...); runs
    /// with the app's recommended machine model.
    App(String),
    /// Inline MiniMPI source shipped by the client.
    Source {
        /// File name used in `file:line` locations.
        name: String,
        /// The program text.
        text: String,
    },
}

impl JobProgram {
    /// Feed the program identity (kind tag + name + text) to a hasher.
    pub fn hash_into(&self, h: &mut StableHasher) {
        match self {
            JobProgram::App(name) => {
                h.write_u8(0);
                h.write_str(name);
            }
            JobProgram::Source { name, text } => {
                h.write_u8(1);
                h.write_str(name);
                h.write_str(text);
            }
        }
    }

    /// Content hash of the program alone — the handle `submit
    /// --program-hash` uses to re-reference a previously uploaded
    /// program without re-sending its source.
    pub fn content_hash(&self) -> String {
        let mut h = StableHasher::new();
        self.hash_into(&mut h);
        h.hex()
    }
}

/// One analysis request: program + scales + full configuration.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The program.
    pub program: JobProgram,
    /// Ascending process counts.
    pub scales: Vec<usize>,
    /// Pipeline configuration (machine model is replaced by the app's
    /// when `program` is [`JobProgram::App`]).
    pub config: ScalAnaConfig,
}

impl JobSpec {
    /// The content address: a stable hash of everything that determines
    /// the analysis output. Identical jobs — byte-identical program,
    /// scales, and config — share a key and therefore a cache slot.
    pub fn key(&self) -> String {
        let mut h = StableHasher::new();
        self.program.hash_into(&mut h);
        h.write_usize(self.scales.len());
        for &s in &self.scales {
            h.write_usize(s);
        }
        hash_config(&mut h, &self.config);
        h.hex()
    }

    /// The scale indirect-call discovery runs at — the smallest
    /// requested scale, exactly as `scalana_core::profile_runs` picks it.
    /// Per-scale cache keys include it because the refined PSG (and
    /// therefore every profile collected over it) depends on which scale
    /// resolved the indirect calls.
    pub fn discovery_scale(&self) -> usize {
        self.scales[0]
    }

    /// Content address of the *refined PSG* this job profiles over:
    /// program + PSG options + discovery scale. Discovery simulates with
    /// a default machine/parameter setup, so nothing else contributes.
    pub fn psg_key(&self, resolved: &ScalAnaConfig) -> String {
        let mut h = StableHasher::new();
        h.write_str("psg");
        self.program.hash_into(&mut h);
        h.write_u64(u64::from(resolved.psg.max_loop_depth));
        h.write_bool(resolved.psg.contract);
        h.write_usize(self.discovery_scale());
        h.hex()
    }

    /// Content address of the profile collected at `nprocs`: program +
    /// every profile-relevant config field (`hash_profile_config` —
    /// detection knobs deliberately excluded) + discovery scale + the
    /// scale itself. Two submissions whose scale sets overlap share the
    /// cached profile image for every common scale.
    ///
    /// `resolved` must be the post-resolution config (app machine model
    /// substituted), so `App` jobs key on the machine they actually run.
    pub fn profile_key(&self, resolved: &ScalAnaConfig, nprocs: usize) -> String {
        let mut h = StableHasher::new();
        h.write_str("profile");
        self.program.hash_into(&mut h);
        hash_profile_config(&mut h, resolved);
        h.write_usize(self.discovery_scale());
        h.write_usize(nprocs);
        h.hex()
    }

    /// Resolve the program and the effective config (an [`JobProgram::App`]
    /// substitutes its recommended machine model).
    pub fn resolve(&self) -> Result<(Program, ScalAnaConfig), String> {
        match &self.program {
            JobProgram::App(name) => {
                let app =
                    scalana_apps::by_name(name).ok_or_else(|| format!("unknown app `{name}`"))?;
                let config = ScalAnaConfig {
                    machine: app.machine.clone(),
                    ..self.config.clone()
                };
                Ok((app.program, config))
            }
            JobProgram::Source { name, text } => {
                let program = parse_program(name, text).map_err(|e| e.to_string())?;
                Ok((program, self.config.clone()))
            }
        }
    }

    /// Human-readable program label for status lines.
    pub fn label(&self) -> String {
        match &self.program {
            JobProgram::App(name) => format!("app:{name}"),
            JobProgram::Source { name, .. } => name.clone(),
        }
    }

    /// Run the full pipeline for this spec. Returns a rendered result
    /// plus one persisted profile image per scale (`ScalAna-prof`'s
    /// post-mortem artifact, served by `/jobs/<id>/profile/<nprocs>`).
    pub fn execute(&self) -> Result<JobOutput, String> {
        let (program, config) = self.resolve()?;
        let runs =
            pipeline::profile_runs(&program, &self.scales, &config).map_err(|e| e.to_string())?;
        // Persist each profile before detection consumes it — the same
        // image `ScalAna-prof` would leave on disk for `ScalAna-detect`.
        let profiles: Vec<(usize, Bytes)> = runs
            .scales
            .iter()
            .zip(&runs.profiles)
            .map(|(&nprocs, data)| (nprocs, scalana_profile::store::save(data)))
            .collect();
        let analysis = assemble(runs, &config);
        Ok(JobOutput {
            report_json: report_to_json(&analysis.report).render(),
            runs_json: Json::Arr(analysis.runs.iter().map(run_summary_to_json).collect()).render(),
            detect_seconds: analysis.detect_seconds,
            profiles,
        })
    }
}

/// A completed job's cached artifacts. The JSON parts are stored
/// pre-rendered: results are served many times (polling clients, cache
/// hits), so the serialization happens once at completion and each
/// request splices the canonical fragments instead of cloning and
/// re-rendering a document tree.
#[derive(Debug)]
pub struct JobOutput {
    /// Canonical JSON of the detection report (deterministic bytes).
    pub report_json: String,
    /// Canonical JSON array of per-scale run summaries (deterministic).
    pub runs_json: String,
    /// Wall-clock detection seconds (not deterministic).
    pub detect_seconds: f64,
    /// `(nprocs, profile image)` per scale, via `scalana_profile::store`.
    pub profiles: Vec<(usize, Bytes)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec(text: &str) -> JobSpec {
        JobSpec {
            program: JobProgram::Source {
                name: "demo.mmpi".to_string(),
                text: text.to_string(),
            },
            scales: vec![2, 4],
            config: ScalAnaConfig::default(),
        }
    }

    const DEMO: &str = "fn main() { comp(cycles = 100_000); allreduce(bytes = 8); }";

    #[test]
    fn key_is_content_addressed() {
        let spec = demo_spec(DEMO);
        assert_eq!(spec.key(), demo_spec(DEMO).key());
        assert_eq!(spec.key().len(), 16);

        let mut other_scales = demo_spec(DEMO);
        other_scales.scales = vec![2, 4, 8];
        assert_ne!(spec.key(), other_scales.key());

        let other_text = demo_spec("fn main() { comp(cycles = 1); }");
        assert_ne!(spec.key(), other_text.key());

        let app = JobSpec {
            program: JobProgram::App("CG".to_string()),
            scales: vec![2, 4],
            config: ScalAnaConfig::default(),
        };
        assert_ne!(spec.key(), app.key());
    }

    #[test]
    fn profile_key_ignores_detection_and_other_scales() {
        let spec = demo_spec(DEMO);
        let (_, resolved) = spec.resolve().unwrap();

        // Detection knobs change the job key but not any profile key.
        let mut tweaked = demo_spec(DEMO);
        tweaked.config.detect.top_k = 99;
        let (_, tweaked_resolved) = tweaked.resolve().unwrap();
        assert_ne!(spec.key(), tweaked.key());
        assert_eq!(
            spec.profile_key(&resolved, 4),
            tweaked.profile_key(&tweaked_resolved, 4)
        );
        assert_eq!(spec.psg_key(&resolved), tweaked.psg_key(&tweaked_resolved));

        // Adding a larger scale keeps the discovery scale, so existing
        // profiles stay addressable; changing the smallest scale does not.
        let mut wider = demo_spec(DEMO);
        wider.scales = vec![2, 4, 8];
        assert_eq!(
            spec.profile_key(&resolved, 4),
            wider.profile_key(&resolved, 4)
        );
        let mut shifted = demo_spec(DEMO);
        shifted.scales = vec![4, 8];
        assert_ne!(
            spec.profile_key(&resolved, 4),
            shifted.profile_key(&resolved, 4)
        );

        // Different scales produce different keys; params matter.
        assert_ne!(
            spec.profile_key(&resolved, 2),
            spec.profile_key(&resolved, 4)
        );
        let mut with_param = demo_spec(DEMO);
        with_param.config.params.insert("N".to_string(), 7);
        let (_, param_resolved) = with_param.resolve().unwrap();
        assert_ne!(
            spec.profile_key(&resolved, 4),
            with_param.profile_key(&param_resolved, 4)
        );
    }

    #[test]
    fn program_content_hash_is_stable() {
        let a = demo_spec(DEMO).program.content_hash();
        let b = demo_spec(DEMO).program.content_hash();
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert_ne!(
            a,
            JobProgram::App("CG".to_string()).content_hash(),
            "different programs, different handles"
        );
    }

    #[test]
    fn execute_produces_report_and_profiles() {
        let out = demo_spec(DEMO).execute().unwrap();
        let report = crate::json::parse(&out.report_json).unwrap();
        assert!(report.get("root_causes").is_some());
        let runs = crate::json::parse(&out.runs_json).unwrap();
        assert_eq!(runs.as_array().unwrap().len(), 2);
        assert_eq!(out.profiles.len(), 2);
        let (nprocs, image) = &out.profiles[0];
        assert_eq!(*nprocs, 2);
        let loaded = scalana_profile::store::load(image.clone()).unwrap();
        assert_eq!(loaded.nprocs, 2);
    }

    #[test]
    fn execute_rejects_unknown_app_and_bad_source() {
        let mut spec = demo_spec(DEMO);
        spec.program = JobProgram::App("NOPE".to_string());
        assert!(spec.execute().unwrap_err().contains("unknown app"));

        let bad = demo_spec("fn main( {");
        assert!(bad.execute().is_err());
    }
}
