//! Job specification, content addressing, and execution.

use crate::hash::{hash_config, StableHasher};
use crate::json::Json;
use crate::jsonify::{report_to_json, run_summary_to_json};
use bytes::Bytes;
use scalana_core::{assemble, pipeline, ScalAnaConfig};
use scalana_lang::parse_program;

/// What program a job analyzes.
#[derive(Debug, Clone)]
pub enum JobProgram {
    /// A built-in workload by Table II name (`CG`, `ZMP`, ...); runs
    /// with the app's recommended machine model.
    App(String),
    /// Inline MiniMPI source shipped by the client.
    Source {
        /// File name used in `file:line` locations.
        name: String,
        /// The program text.
        text: String,
    },
}

/// One analysis request: program + scales + full configuration.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The program.
    pub program: JobProgram,
    /// Ascending process counts.
    pub scales: Vec<usize>,
    /// Pipeline configuration (machine model is replaced by the app's
    /// when `program` is [`JobProgram::App`]).
    pub config: ScalAnaConfig,
}

impl JobSpec {
    /// The content address: a stable hash of everything that determines
    /// the analysis output. Identical jobs — byte-identical program,
    /// scales, and config — share a key and therefore a cache slot.
    pub fn key(&self) -> String {
        let mut h = StableHasher::new();
        match &self.program {
            JobProgram::App(name) => {
                h.write_u8(0);
                h.write_str(name);
            }
            JobProgram::Source { name, text } => {
                h.write_u8(1);
                h.write_str(name);
                h.write_str(text);
            }
        }
        h.write_usize(self.scales.len());
        for &s in &self.scales {
            h.write_usize(s);
        }
        hash_config(&mut h, &self.config);
        h.hex()
    }

    /// Human-readable program label for status lines.
    pub fn label(&self) -> String {
        match &self.program {
            JobProgram::App(name) => format!("app:{name}"),
            JobProgram::Source { name, .. } => name.clone(),
        }
    }

    /// Run the full pipeline for this spec. Returns a rendered result
    /// plus one persisted profile image per scale (`ScalAna-prof`'s
    /// post-mortem artifact, served by `/jobs/<id>/profile/<nprocs>`).
    pub fn execute(&self) -> Result<JobOutput, String> {
        let (program, config) = match &self.program {
            JobProgram::App(name) => {
                let app =
                    scalana_apps::by_name(name).ok_or_else(|| format!("unknown app `{name}`"))?;
                let config = ScalAnaConfig {
                    machine: app.machine.clone(),
                    ..self.config.clone()
                };
                (app.program, config)
            }
            JobProgram::Source { name, text } => {
                let program = parse_program(name, text).map_err(|e| e.to_string())?;
                (program, self.config.clone())
            }
        };
        let runs =
            pipeline::profile_runs(&program, &self.scales, &config).map_err(|e| e.to_string())?;
        // Persist each profile before detection consumes it — the same
        // image `ScalAna-prof` would leave on disk for `ScalAna-detect`.
        let profiles: Vec<(usize, Bytes)> = runs
            .scales
            .iter()
            .zip(&runs.profiles)
            .map(|(&nprocs, data)| (nprocs, scalana_profile::store::save(data)))
            .collect();
        let analysis = assemble(runs, &config);
        Ok(JobOutput {
            report_json: report_to_json(&analysis.report).render(),
            runs_json: Json::Arr(analysis.runs.iter().map(run_summary_to_json).collect()).render(),
            detect_seconds: analysis.detect_seconds,
            profiles,
        })
    }
}

/// A completed job's cached artifacts. The JSON parts are stored
/// pre-rendered: results are served many times (polling clients, cache
/// hits), so the serialization happens once at completion and each
/// request splices the canonical fragments instead of cloning and
/// re-rendering a document tree.
#[derive(Debug)]
pub struct JobOutput {
    /// Canonical JSON of the detection report (deterministic bytes).
    pub report_json: String,
    /// Canonical JSON array of per-scale run summaries (deterministic).
    pub runs_json: String,
    /// Wall-clock detection seconds (not deterministic).
    pub detect_seconds: f64,
    /// `(nprocs, profile image)` per scale, via `scalana_profile::store`.
    pub profiles: Vec<(usize, Bytes)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec(text: &str) -> JobSpec {
        JobSpec {
            program: JobProgram::Source {
                name: "demo.mmpi".to_string(),
                text: text.to_string(),
            },
            scales: vec![2, 4],
            config: ScalAnaConfig::default(),
        }
    }

    const DEMO: &str = "fn main() { comp(cycles = 100_000); allreduce(bytes = 8); }";

    #[test]
    fn key_is_content_addressed() {
        let spec = demo_spec(DEMO);
        assert_eq!(spec.key(), demo_spec(DEMO).key());
        assert_eq!(spec.key().len(), 16);

        let mut other_scales = demo_spec(DEMO);
        other_scales.scales = vec![2, 4, 8];
        assert_ne!(spec.key(), other_scales.key());

        let other_text = demo_spec("fn main() { comp(cycles = 1); }");
        assert_ne!(spec.key(), other_text.key());

        let app = JobSpec {
            program: JobProgram::App("CG".to_string()),
            scales: vec![2, 4],
            config: ScalAnaConfig::default(),
        };
        assert_ne!(spec.key(), app.key());
    }

    #[test]
    fn execute_produces_report_and_profiles() {
        let out = demo_spec(DEMO).execute().unwrap();
        let report = crate::json::parse(&out.report_json).unwrap();
        assert!(report.get("root_causes").is_some());
        let runs = crate::json::parse(&out.runs_json).unwrap();
        assert_eq!(runs.as_array().unwrap().len(), 2);
        assert_eq!(out.profiles.len(), 2);
        let (nprocs, image) = &out.profiles[0];
        assert_eq!(*nprocs, 2);
        let loaded = scalana_profile::store::load(image.clone()).unwrap();
        assert_eq!(loaded.nprocs, 2);
    }

    #[test]
    fn execute_rejects_unknown_app_and_bad_source() {
        let mut spec = demo_spec(DEMO);
        spec.program = JobProgram::App("NOPE".to_string());
        assert!(spec.execute().unwrap_err().contains("unknown app"));

        let bad = demo_spec("fn main( {");
        assert!(bad.execute().is_err());
    }
}
