//! Canonical JSON views of the analysis data model.
//!
//! Shared between `scalana analyze --json` and the daemon's result
//! endpoint, so a client comparing a served report against a local run
//! compares identical bytes. Field order is fixed here; floats render
//! through the canonical form in [`crate::json`].

use crate::json::Json;
use scalana_core::{Analysis, RunSummary};
use scalana_detect::{
    summarize, AbnormalVertex, DetectionReport, NonScalableVertex, PathStep, RootCause,
    RootCausePath, ScalingSummary,
};
use scalana_graph::PsgStats;

/// One run summary.
pub fn run_summary_to_json(run: &RunSummary) -> Json {
    Json::obj(vec![
        ("nprocs", run.nprocs.into()),
        ("total_time", run.total_time.into()),
        ("storage_bytes", run.storage_bytes.into()),
        ("sample_count", run.sample_count.into()),
        ("comm_edges", run.comm_edges.into()),
    ])
}

/// PSG statistics (the Table II columns).
pub fn psg_stats_to_json(stats: &PsgStats) -> Json {
    Json::obj(vec![
        ("vbc", stats.vbc.into()),
        ("vac", stats.vac.into()),
        ("loops", stats.loops.into()),
        ("branches", stats.branches.into()),
        ("comps", stats.comps.into()),
        ("mpis", stats.mpis.into()),
        ("callsites", stats.callsites.into()),
        ("recursive", stats.recursive.into()),
        ("reduction", stats.reduction().into()),
        ("comp_mpi_fraction", stats.comp_mpi_fraction().into()),
    ])
}

/// Whole-program scaling summary (speedup curve).
pub fn scaling_to_json(summary: &ScalingSummary) -> Json {
    let points: Vec<Json> = summary
        .points
        .iter()
        .map(|p| {
            Json::obj(vec![
                ("nprocs", p.nprocs.into()),
                ("time", p.time.into()),
                ("speedup", p.speedup.into()),
                ("efficiency", p.efficiency.into()),
            ])
        })
        .collect();
    Json::obj(vec![
        ("points", Json::Arr(points)),
        ("time_slope", summary.time_slope.into()),
        (
            "serial_fraction",
            summary.serial_fraction.map_or(Json::Null, Json::from),
        ),
        (
            "efficient_scale",
            summary.efficient_scale.map_or(Json::Null, Json::from),
        ),
    ])
}

fn non_scalable_to_json(n: &NonScalableVertex) -> Json {
    Json::obj(vec![
        ("vertex", n.vertex.into()),
        ("location", n.location.as_str().into()),
        ("slope", n.fit.slope.into()),
        ("intercept", n.fit.intercept.into()),
        ("r2", n.fit.r2.into()),
        ("times", n.times.clone().into()),
        ("time_fraction", n.time_fraction.into()),
    ])
}

fn abnormal_to_json(a: &AbnormalVertex) -> Json {
    Json::obj(vec![
        ("vertex", a.vertex.into()),
        ("location", a.location.as_str().into()),
        ("ranks", a.ranks.clone().into()),
        ("ratio", a.ratio.into()),
        ("median_time", a.median_time.into()),
    ])
}

fn step_to_json(s: &PathStep) -> Json {
    Json::obj(vec![
        ("rank", s.rank.into()),
        ("vertex", s.vertex.into()),
        ("kind", s.kind.as_str().into()),
        ("location", s.location.as_str().into()),
        ("time", s.time.into()),
        ("wait_time", s.wait_time.into()),
        ("via_comm", s.via_comm.into()),
    ])
}

fn path_to_json(p: &RootCausePath) -> Json {
    Json::obj(vec![
        (
            "steps",
            Json::Arr(p.steps.iter().map(step_to_json).collect()),
        ),
        ("root_cause_idx", p.root_cause_idx.into()),
        ("confident", p.confident.into()),
    ])
}

fn root_cause_to_json(c: &RootCause) -> Json {
    Json::obj(vec![
        ("vertex", c.vertex.into()),
        ("kind", c.kind.as_str().into()),
        ("location", c.location.as_str().into()),
        ("func", c.func.as_str().into()),
        ("path_count", c.path_count.into()),
        ("score", c.score.into()),
        ("mean_time", c.mean_time.into()),
        ("time_imbalance", c.time_imbalance.into()),
        ("ins_imbalance", c.ins_imbalance.into()),
    ])
}

/// The full detection report.
pub fn report_to_json(report: &DetectionReport) -> Json {
    Json::obj(vec![
        (
            "non_scalable",
            Json::Arr(
                report
                    .non_scalable
                    .iter()
                    .map(non_scalable_to_json)
                    .collect(),
            ),
        ),
        (
            "abnormal",
            Json::Arr(report.abnormal.iter().map(abnormal_to_json).collect()),
        ),
        (
            "root_causes",
            Json::Arr(report.root_causes.iter().map(root_cause_to_json).collect()),
        ),
        (
            "paths",
            Json::Arr(report.paths.iter().map(path_to_json).collect()),
        ),
    ])
}

/// Everything `scalana analyze --json` emits: PSG stats, per-scale run
/// summaries, the speedup curve, and the detection report.
///
/// `detect_seconds` is wall-clock and therefore the one non-deterministic
/// field; consumers wanting byte-stable output compare the `report` and
/// `runs` members.
pub fn analysis_to_json(analysis: &Analysis) -> Json {
    let measurements: Vec<(usize, f64)> = analysis
        .runs
        .iter()
        .map(|r| (r.nprocs, r.total_time))
        .collect();
    Json::obj(vec![
        ("psg", psg_stats_to_json(&analysis.psg.stats)),
        (
            "runs",
            Json::Arr(analysis.runs.iter().map(run_summary_to_json).collect()),
        ),
        ("speedup", scaling_to_json(&summarize(&measurements))),
        ("report", report_to_json(&analysis.report)),
        ("detect_seconds", analysis.detect_seconds.into()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalana_apps::{cg, CgOptions};
    use scalana_core::{analyze_app, ScalAnaConfig};

    #[test]
    fn analysis_json_has_every_section_and_reparses() {
        let app = cg::build(&CgOptions {
            na: 20_000,
            iterations: 3,
            delay_rank: None,
        });
        let analysis = analyze_app(&app, &[2, 4], &ScalAnaConfig::default()).unwrap();
        let json = analysis_to_json(&analysis);
        let text = json.render();
        let reparsed = crate::json::parse(&text).unwrap();
        assert_eq!(reparsed.render(), text, "parse∘render is the identity");
        for key in ["psg", "runs", "speedup", "report", "detect_seconds"] {
            assert!(reparsed.get(key).is_some(), "missing {key}");
        }
        assert_eq!(reparsed.get("runs").unwrap().as_array().unwrap().len(), 2);
        let report = reparsed.get("report").unwrap();
        for key in ["non_scalable", "abnormal", "root_causes", "paths"] {
            assert!(report.get(key).is_some(), "missing report.{key}");
        }
    }

    #[test]
    fn report_json_is_deterministic_across_runs() {
        let app = cg::build(&CgOptions {
            na: 20_000,
            iterations: 3,
            delay_rank: None,
        });
        let a = analyze_app(&app, &[2, 4], &ScalAnaConfig::default()).unwrap();
        let b = analyze_app(&app, &[2, 4], &ScalAnaConfig::default()).unwrap();
        assert_eq!(
            report_to_json(&a.report).render(),
            report_to_json(&b.report).render()
        );
    }
}
