//! Content-addressed job registry and result cache.
//!
//! One logical map keyed by [`JobSpec::key`] holds every job the daemon
//! has seen, in whatever state. Because the key is a content address,
//! the registry *is* the cache: re-submitting an identical job finds
//! the existing record — completed (served from cache), or still in
//! flight (coalesced onto the running job) — and never re-runs the
//! simulator. Hit/miss counters are exported via `/stats`.
//!
//! The map is sharded N-way by key hash: submissions, status polls, and
//! worker completions for different jobs touch different locks, so the
//! registry no longer serializes the daemon under concurrent clients.
//! Only FIFO eviction coordinates across shards, through a small
//! completion-order list behind its own lock (taken strictly *after*
//! any shard lock is released — never while holding one).

use crate::job::{JobOutput, JobSpec};
use crate::sharded::shard_index;
use scalana_api::trace::{TraceResponse, TraceSpan};
use scalana_obs as obs;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; result cached.
    Done,
    /// Execution failed; kept for inspection, replaced on re-submit.
    Failed,
}

impl JobStatus {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Failed => "failed",
        }
    }
}

/// One registry entry.
#[derive(Debug)]
pub struct JobRecord {
    /// The spec (kept so workers and status endpoints can read it).
    pub spec: JobSpec,
    /// Current status.
    pub status: JobStatus,
    /// Failure message, when `Failed`.
    pub error: Option<String>,
    /// Cached result, when `Done`.
    pub result: Option<Arc<JobOutput>>,
    /// Which execution owns this record. A failed multi-scale job can be
    /// resubmitted (fresh record, new generation) while late scale tasks
    /// of the previous attempt are still winding down; their
    /// [`Registry::fail`]/[`Registry::complete`] calls carry the old
    /// generation and must not clobber the retry.
    generation: u64,
    /// Observability epoch nanoseconds when the submission arrived at
    /// the server (request parsing began) — the trace's time zero.
    recv_ns: u64,
    /// When the fresh record was registered and enqueued.
    registered_ns: u64,
    /// When a worker claimed the job (0 until then).
    started_ns: u64,
    /// When the job reached `Done`/`Failed` (0 until then).
    terminal_ns: u64,
    /// Child spans of the execution (`resolve`, per-`scale`,
    /// `assemble`), attached by the worker just before the terminal
    /// transition; offsets are epoch nanoseconds, rebased at read.
    run_spans: Vec<TraceSpan>,
}

/// Status view returned to HTTP handlers (no lock held).
#[derive(Debug, Clone)]
pub struct StatusView {
    /// Job key.
    pub key: String,
    /// Program label.
    pub label: String,
    /// Scales.
    pub scales: Vec<usize>,
    /// Status.
    pub status: JobStatus,
    /// Failure message, when failed.
    pub error: Option<String>,
    /// Cached result, when done.
    pub result: Option<Arc<JobOutput>>,
}

/// Outcome of a submission.
#[derive(Debug)]
pub enum SubmitOutcome {
    /// New work: the job was registered and enqueued.
    Fresh(String),
    /// The job already exists — a cache hit (done or coalesced).
    Existing(StatusView),
    /// The queue refused the job; nothing was registered.
    Rejected,
}

/// Monotonic service counters, exported at `/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Submissions accepted (fresh + hits; not queue-full rejections).
    pub submitted: u64,
    /// Submissions answered from an existing record.
    pub cache_hits: u64,
    /// Submissions that created a new job.
    pub cache_misses: u64,
    /// Submissions rejected because the queue was full.
    pub rejected: u64,
    /// Pipeline executions actually started by workers.
    pub executed: u64,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Completed results evicted to respect the capacity bound.
    pub evicted: u64,
}

/// Shards of the job map. Keys are uniform content hashes; 16 locks is
/// plenty to keep the expected contention per lock negligible for the
/// connection counts the daemon admits.
const REGISTRY_SHARDS: usize = 16;

/// One registry shard: the record map, the condition variable that
/// *blocking* long-poll waiters ([`Registry::wait_terminal`]) park on,
/// and the list of *asynchronous* completion subscriptions
/// ([`Registry::subscribe`]) the daemon's event loop parks instead of
/// threads. Terminal transitions (`complete`/`fail`) notify the condvar
/// and drain the matching subscriptions; condvar waiters re-check their
/// record and go back to sleep on wake-ups for sibling keys (cheap, and
/// shard-local so unrelated jobs rarely share a condvar).
///
/// Lock order within a shard is `records` → `waiters`, always: both
/// subscription registration and the terminal-transition drain happen
/// under the `records` lock, which is what makes park-vs-complete
/// race-free — a subscription either observes the terminal status in
/// `records` or is enlisted before the transition can start draining.
#[derive(Debug, Default)]
struct Shard {
    records: Mutex<HashMap<String, JobRecord>>,
    terminal: Condvar,
    waiters: Mutex<Vec<Waiter>>,
}

/// One parked completion subscription.
#[derive(Debug)]
struct Waiter {
    key: String,
    token: u64,
    waker: Arc<dyn WaitWaker>,
}

/// Sink for completion notifications: [`Registry::subscribe`] hands the
/// registry one of these per parked waiter, and the terminal transition
/// calls [`wake`](WaitWaker::wake) with the waiter's token. Called with
/// a shard `records` lock held, so implementations must be quick and
/// must never call back into the registry (the daemon's implementation
/// pushes the token onto a ready queue and signals an eventfd).
pub trait WaitWaker: Send + Sync + std::fmt::Debug {
    /// Deliver a completion notification for the subscription `token`.
    fn wake(&self, token: u64);
}

/// Outcome of [`Registry::subscribe`].
#[derive(Debug)]
pub enum SubscribeOutcome {
    /// No record under that key (never submitted, or evicted).
    Unknown,
    /// Already terminal — answered inline, nothing parked.
    Terminal(StatusView),
    /// Parked: the waker fires when the job reaches a terminal state.
    Parked,
}

/// Outcome of a bounded wait for a job to finish.
#[derive(Debug)]
pub enum WaitOutcome {
    /// No record under that key (never submitted, or evicted).
    Unknown,
    /// The job reached `Done` or `Failed` within the budget.
    Terminal(StatusView),
    /// The budget elapsed first; the view is the still-pending state.
    Pending(StatusView),
}

/// Observability handles the registry reports into. Detached (inert)
/// by default so tests and library callers pay nothing; the daemon
/// wires them to its [`crate::metrics::ServiceMetrics`] registry via
/// [`Registry::with_obs`].
#[derive(Debug)]
pub struct RegistryObs {
    /// Long-poll waiters that actually parked (condvar or subscription).
    pub parks: obs::Counter,
    /// Parked waiters woken by a terminal transition (vs. timing out).
    pub wakes: obs::Counter,
    /// Subscriptions currently parked (gauge mirror of
    /// [`Registry::parked`]).
    pub parked: obs::Gauge,
    /// Fresh job registered → claimed by a worker.
    pub queue_wait_ns: obs::Histogram,
    /// Worker claim → terminal transition.
    pub job_ns: obs::Histogram,
    /// Ring label stamped on each result-cache eviction event.
    pub evict_label: obs::LabelId,
}

impl Default for RegistryObs {
    fn default() -> RegistryObs {
        RegistryObs {
            parks: obs::Counter::detached(),
            wakes: obs::Counter::detached(),
            parked: obs::Gauge::detached(),
            queue_wait_ns: obs::Histogram::detached(),
            job_ns: obs::Histogram::detached(),
            evict_label: obs::label("result_evict"),
        }
    }
}

/// The shared registry.
#[derive(Debug)]
pub struct Registry {
    shards: Box<[Shard]>,
    /// Observability sinks (inert unless wired by the daemon).
    obs: RegistryObs,
    /// Keys in completion order — the FIFO eviction candidates. Guarded
    /// by its own lock; never taken while a shard lock is held.
    done_order: Mutex<VecDeque<String>>,
    /// Retain at most this many completed results (0 = unbounded). The
    /// daemon must bound it: each `JobOutput` holds per-scale profile
    /// images and each spec its full source text, so an unbounded map
    /// grows monotonically under a stream of distinct jobs until OOM.
    max_results: usize,
    /// Completed results currently held — kept as an atomic so `/stats`
    /// and `results_cached` never touch the shard locks.
    results_held: AtomicUsize,
    /// Subscriptions currently parked across all shards (mirrored into
    /// `obs.parked` so `/v1/metrics` sees it without touching locks).
    parked: AtomicUsize,
    /// Generation source for [`JobRecord::generation`].
    generations: AtomicU64,
    submitted: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    rejected: AtomicU64,
    executed: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    evicted: AtomicU64,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry {
            shards: (0..REGISTRY_SHARDS).map(|_| Shard::default()).collect(),
            obs: RegistryObs::default(),
            done_order: Mutex::new(VecDeque::new()),
            max_results: 0,
            results_held: AtomicUsize::new(0),
            parked: AtomicUsize::new(0),
            generations: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }
}

fn view(key: &str, record: &JobRecord) -> StatusView {
    StatusView {
        key: key.to_string(),
        label: record.spec.label(),
        scales: record.spec.scales.clone(),
        status: record.status,
        error: record.error.clone(),
        result: record.result.clone(),
    }
}

impl Registry {
    /// Empty, unbounded registry (tests; the daemon uses
    /// [`Registry::with_result_capacity`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Empty registry retaining at most `max_results` completed results
    /// (oldest evicted first; 0 means unbounded).
    pub fn with_result_capacity(max_results: usize) -> Registry {
        Registry {
            max_results,
            ..Registry::default()
        }
    }

    /// Wire the registry's observability events to live handles.
    pub fn with_obs(mut self, obs: RegistryObs) -> Registry {
        self.obs = obs;
        self
    }

    /// The shard holding `key`.
    fn shard(&self, key: &str) -> &Shard {
        &self.shards[shard_index(key, self.shards.len())]
    }

    /// Register a submission. Failed jobs are retried (their record is
    /// replaced and the submission counts as a miss).
    ///
    /// `enqueue` is called *inside* the key's shard lock for fresh jobs
    /// and must be non-blocking (the bounded
    /// [`crate::queue::JobQueue::push`] is). Holding the lock makes
    /// lookup → register → enqueue atomic: without it, a concurrent
    /// identical submission could coalesce onto a record that a failed
    /// enqueue is about to roll back, leaving that client acknowledged
    /// for a job that no longer exists. When `enqueue` refuses, nothing
    /// is registered and no accepted-submission counter moves — only
    /// `rejected`.
    pub fn submit<F>(&self, spec: JobSpec, enqueue: F) -> SubmitOutcome
    where
        F: FnOnce(&str) -> bool,
    {
        self.submit_at(spec, obs::now_ns(), enqueue)
    }

    /// [`Registry::submit`] with an explicit arrival timestamp (epoch
    /// nanoseconds): the server stamps a submission when it starts
    /// parsing the request, so the job's trace accounts for the parse
    /// stage too. The stamp becomes the trace's time zero.
    pub fn submit_at<F>(&self, spec: JobSpec, recv_ns: u64, enqueue: F) -> SubmitOutcome
    where
        F: FnOnce(&str) -> bool,
    {
        let key = spec.key();
        let mut jobs = self.shard(&key).records.lock().unwrap();
        match jobs.get(&key) {
            Some(record) if record.status != JobStatus::Failed => {
                self.submitted.fetch_add(1, Ordering::Relaxed);
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                SubmitOutcome::Existing(view(&key, record))
            }
            _ => {
                if !enqueue(&key) {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    return SubmitOutcome::Rejected;
                }
                self.submitted.fetch_add(1, Ordering::Relaxed);
                self.cache_misses.fetch_add(1, Ordering::Relaxed);
                jobs.insert(
                    key.clone(),
                    JobRecord {
                        spec,
                        status: JobStatus::Queued,
                        error: None,
                        result: None,
                        generation: self.generations.fetch_add(1, Ordering::Relaxed),
                        recv_ns,
                        registered_ns: obs::now_ns(),
                        started_ns: 0,
                        terminal_ns: 0,
                        run_spans: Vec::new(),
                    },
                );
                SubmitOutcome::Fresh(key)
            }
        }
    }

    /// Worker claims a queued job; returns its spec plus the record's
    /// generation, which the execution must echo back to
    /// [`complete`](Registry::complete)/[`fail`](Registry::fail).
    pub fn start(&self, key: &str) -> Option<(JobSpec, u64)> {
        let mut jobs = self.shard(key).records.lock().unwrap();
        let record = jobs.get_mut(key)?;
        if record.status != JobStatus::Queued {
            return None;
        }
        record.status = JobStatus::Running;
        record.started_ns = obs::now_ns();
        self.obs
            .queue_wait_ns
            .record(record.started_ns.saturating_sub(record.registered_ns));
        self.executed.fetch_add(1, Ordering::Relaxed);
        Some((record.spec.clone(), record.generation))
    }

    /// Worker finished successfully. No-ops unless the record is still
    /// the `Running` execution identified by `generation` — a late call
    /// from a superseded attempt must not touch a retry's record.
    /// When a result capacity is set, the oldest completed results are
    /// evicted to make room — an evicted job simply re-runs on its next
    /// submission.
    pub fn complete(&self, key: &str, generation: u64, output: JobOutput) {
        {
            let shard = self.shard(key);
            let mut jobs = shard.records.lock().unwrap();
            let Some(record) = jobs.get_mut(key) else {
                return;
            };
            if record.status != JobStatus::Running || record.generation != generation {
                return;
            }
            record.status = JobStatus::Done;
            record.result = Some(Arc::new(output));
            record.error = None;
            record.terminal_ns = obs::now_ns();
            self.obs
                .job_ns
                .record(record.terminal_ns.saturating_sub(record.started_ns));
            // Count the completion before waking anyone: a client woken
            // by the transition must find `completed`/`results_cached`
            // already reflecting the job it just observed (`fail()`
            // orders its counter the same way).
            self.completed.fetch_add(1, Ordering::Relaxed);
            self.results_held.fetch_add(1, Ordering::Relaxed);
            // Wake long-poll waiters while still holding the shard lock
            // (no waiter can miss the transition).
            shard.terminal.notify_all();
            self.drain_waiters(shard, key);
        }

        // Eviction holds the completion-order lock and takes one shard
        // lock per candidate; the shard lock above is already released,
        // so the done_order → shard order is the only one that exists.
        let mut done_order = self.done_order.lock().unwrap();
        done_order.push_back(key.to_string());
        while self.max_results > 0 && done_order.len() > self.max_results {
            let Some(oldest) = done_order.pop_front() else {
                break;
            };
            // Entries in done_order are Done for as long as they exist
            // (Done is terminal); a stale key — evicted earlier, then
            // resubmitted and completed again — is simply skipped.
            let mut jobs = self.shard(&oldest).records.lock().unwrap();
            if jobs
                .get(&oldest)
                .is_some_and(|r| r.status == JobStatus::Done)
            {
                jobs.remove(&oldest);
                self.evicted.fetch_add(1, Ordering::Relaxed);
                self.results_held.fetch_sub(1, Ordering::Relaxed);
                obs::record(obs::EventKind::Counter, self.obs.evict_label, 1);
            }
        }
    }

    /// Worker failed. No-ops unless the record is still the `Running`
    /// execution identified by `generation`: a multi-scale job calls
    /// this once per failing scale, and only the first may transition
    /// the record (and count) — later calls, or calls from an attempt
    /// that a resubmission has already replaced, must not clobber a
    /// freshly queued retry with a stale error.
    pub fn fail(&self, key: &str, generation: u64, error: String) {
        let shard = self.shard(key);
        let mut jobs = shard.records.lock().unwrap();
        if let Some(record) = jobs.get_mut(key) {
            if record.status != JobStatus::Running || record.generation != generation {
                return;
            }
            record.status = JobStatus::Failed;
            record.error = Some(error);
            record.terminal_ns = obs::now_ns();
            self.obs
                .job_ns
                .record(record.terminal_ns.saturating_sub(record.started_ns));
            self.failed.fetch_add(1, Ordering::Relaxed);
            shard.terminal.notify_all();
            self.drain_waiters(shard, key);
        }
    }

    /// Wake and remove every subscription parked on `key`. Must be
    /// called with the shard's `records` lock held (the terminal
    /// transition is still in progress, so no new subscription can
    /// slip in between the status change and the drain).
    fn drain_waiters(&self, shard: &Shard, key: &str) {
        let mut waiters = shard.waiters.lock().unwrap();
        let mut index = 0;
        while index < waiters.len() {
            if waiters[index].key == key {
                let waiter = waiters.swap_remove(index);
                waiter.waker.wake(waiter.token);
                self.obs.wakes.inc();
                let now = self.parked.fetch_sub(1, Ordering::Relaxed) - 1;
                self.obs.parked.set(now as u64);
            } else {
                index += 1;
            }
        }
    }

    /// Status of one job.
    pub fn status(&self, key: &str) -> Option<StatusView> {
        let jobs = self.shard(key).records.lock().unwrap();
        jobs.get(key).map(|record| view(key, record))
    }

    /// Attach the execution's child spans (epoch-nanosecond offsets)
    /// to the record, to be rebased and served under the `run` span by
    /// [`Registry::trace`]. Called by the worker just before the
    /// terminal transition; like `complete`/`fail`, it no-ops unless
    /// the record is still the `Running` execution identified by
    /// `generation`.
    pub fn attach_run_spans(&self, key: &str, generation: u64, spans: Vec<TraceSpan>) {
        let mut jobs = self.shard(key).records.lock().unwrap();
        if let Some(record) = jobs.get_mut(key) {
            if record.status == JobStatus::Running && record.generation == generation {
                record.run_spans = spans;
            }
        }
    }

    /// The job's span timeline, built from the record's lifecycle
    /// timestamps and the worker-attached run spans.
    ///
    /// `None` — no record under the key. `Some((status, None))` — the
    /// job exists but has not reached a terminal state yet.
    /// `Some((status, Some(trace)))` — the terminal timeline: the
    /// top-level `submit`/`queue_wait`/`run` spans tile the interval
    /// from the submission's arrival to the terminal transition, so
    /// their durations sum exactly to `total_ns`; the `run` children
    /// carry the per-scale cache verdicts, in canonical order.
    ///
    /// Re-submitting an identical job coalesces onto this record, so
    /// the trace always describes the execution that actually ran.
    pub fn trace(&self, key: &str) -> Option<(JobStatus, Option<TraceResponse>)> {
        let jobs = self.shard(key).records.lock().unwrap();
        let record = jobs.get(key)?;
        if !matches!(record.status, JobStatus::Done | JobStatus::Failed) || record.terminal_ns == 0
        {
            return Some((record.status, None));
        }
        let zero = record.recv_ns;
        let rebase = |ns: u64| ns.saturating_sub(zero);
        let mut run = TraceSpan::new(
            "run",
            rebase(record.started_ns),
            record.terminal_ns.saturating_sub(record.started_ns),
        )
        .with_tag(
            "outcome",
            if record.status == JobStatus::Done {
                "done"
            } else {
                "failed"
            },
        );
        run.children = record
            .run_spans
            .iter()
            .map(|span| TraceSpan {
                start_ns: rebase(span.start_ns),
                ..span.clone()
            })
            .collect();
        run.sort_children();
        let trace = TraceResponse {
            job: key.to_string(),
            total_ns: record.terminal_ns.saturating_sub(zero),
            spans: vec![
                TraceSpan::new(
                    "submit",
                    0,
                    record.registered_ns.saturating_sub(record.recv_ns),
                ),
                TraceSpan::new(
                    "queue_wait",
                    rebase(record.registered_ns),
                    record.started_ns.saturating_sub(record.registered_ns),
                ),
                run,
            ],
        };
        Some((record.status, Some(trace)))
    }

    /// Block until the job reaches a terminal state or `timeout`
    /// elapses — the server side of `GET /v1/jobs/<id>/wait`. Parks on
    /// the shard's condvar, so a completing worker wakes the waiter at
    /// the transition instead of the waiter discovering it a poll
    /// interval later. Spurious wake-ups (sibling keys on the same
    /// shard) re-check and go back to sleep with the remaining budget.
    pub fn wait_terminal(&self, key: &str, timeout: Duration) -> WaitOutcome {
        let deadline = Instant::now() + timeout;
        let shard = self.shard(key);
        let mut parked = false;
        let mut jobs = shard.records.lock().unwrap();
        loop {
            let Some(record) = jobs.get(key) else {
                return WaitOutcome::Unknown;
            };
            if matches!(record.status, JobStatus::Done | JobStatus::Failed) {
                if parked {
                    // Woken by the terminal transition, not the budget.
                    self.obs.wakes.inc();
                }
                return WaitOutcome::Terminal(view(key, record));
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return WaitOutcome::Pending(view(key, record));
            };
            if !parked {
                parked = true;
                self.obs.parks.inc();
            }
            let (guard, result) = shard.terminal.wait_timeout(jobs, remaining).unwrap();
            jobs = guard;
            if result.timed_out() {
                return match jobs.get(key) {
                    None => WaitOutcome::Unknown,
                    Some(record)
                        if matches!(record.status, JobStatus::Done | JobStatus::Failed) =>
                    {
                        self.obs.wakes.inc();
                        WaitOutcome::Terminal(view(key, record))
                    }
                    Some(record) => WaitOutcome::Pending(view(key, record)),
                };
            }
        }
    }

    /// Non-blocking counterpart of [`Registry::wait_terminal`] for the
    /// daemon's event loop: answer inline if the job is already
    /// terminal (or unknown), otherwise park `(token, waker)` as a
    /// completion subscription. The terminal transition wakes every
    /// subscription for the key exactly once; the subscription is
    /// consumed by the wake. Waiters that give up early (client went
    /// away, wait budget elapsed) must [`Registry::unsubscribe`].
    ///
    /// The registration is race-free against `complete`/`fail`: both
    /// the status check here and the drain there run under the shard's
    /// `records` lock, so a subscription either sees the terminal
    /// status inline or is enlisted before the drain runs.
    pub fn subscribe(&self, key: &str, token: u64, waker: Arc<dyn WaitWaker>) -> SubscribeOutcome {
        let shard = self.shard(key);
        let jobs = shard.records.lock().unwrap();
        let Some(record) = jobs.get(key) else {
            return SubscribeOutcome::Unknown;
        };
        if matches!(record.status, JobStatus::Done | JobStatus::Failed) {
            return SubscribeOutcome::Terminal(view(key, record));
        }
        shard.waiters.lock().unwrap().push(Waiter {
            key: key.to_string(),
            token,
            waker,
        });
        self.obs.parks.inc();
        let now = self.parked.fetch_add(1, Ordering::Relaxed) + 1;
        self.obs.parked.set(now as u64);
        SubscribeOutcome::Parked
    }

    /// Remove a parked subscription that gave up before the terminal
    /// transition (timeout, or the client hung up). Returns whether a
    /// subscription was actually removed — `false` means the wake
    /// already fired (or was never parked) and the caller races a
    /// pending notification for this token.
    pub fn unsubscribe(&self, key: &str, token: u64) -> bool {
        let shard = self.shard(key);
        // Taken in the shard's records → waiters order so removal can
        // never interleave with a terminal drain for the same key.
        let _jobs = shard.records.lock().unwrap();
        let mut waiters = shard.waiters.lock().unwrap();
        let before = waiters.len();
        waiters.retain(|w| !(w.key == key && w.token == token));
        let removed = before - waiters.len();
        if removed > 0 {
            let now = self.parked.fetch_sub(removed, Ordering::Relaxed) - removed;
            self.obs.parked.set(now as u64);
        }
        removed > 0
    }

    /// Subscriptions currently parked (lock-free).
    pub fn parked(&self) -> usize {
        self.parked.load(Ordering::Relaxed)
    }

    /// One page of jobs, ordered by key: jobs in `state` (all states
    /// when `None`) with keys strictly greater than `after`, at most
    /// `limit` of them. The second member is the pagination cursor —
    /// `Some(last key)` when more matching jobs exist past this page.
    ///
    /// Keys are content hashes, so the order is stable but arbitrary;
    /// what matters is that it is *total*, making pagination exact even
    /// as jobs come and go between pages (a new job either sorts after
    /// the cursor and appears later, or sorted before it and is missed —
    /// the standard keyset-pagination contract).
    pub fn list(
        &self,
        state: Option<JobStatus>,
        after: Option<&str>,
        limit: usize,
    ) -> (Vec<StatusView>, Option<String>) {
        let mut matching: Vec<StatusView> = Vec::new();
        for shard in self.shards.iter() {
            let jobs = shard.records.lock().unwrap();
            for (key, record) in jobs.iter() {
                if state.is_some_and(|s| s != record.status) {
                    continue;
                }
                if after.is_some_and(|a| key.as_str() <= a) {
                    continue;
                }
                matching.push(view(key, record));
            }
        }
        matching.sort_by(|a, b| a.key.cmp(&b.key));
        let more = matching.len() > limit;
        matching.truncate(limit);
        let next_after = if more {
            matching.last().map(|v| v.key.clone())
        } else {
            None
        };
        (matching, next_after)
    }

    /// Completed results currently held in the cache (lock-free — a
    /// counter, not a scan, so `/stats` never contends with submissions).
    pub fn results_cached(&self) -> usize {
        self.results_held.load(Ordering::Relaxed)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            executed: self.executed.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobProgram;
    use scalana_core::ScalAnaConfig;

    fn spec(text: &str) -> JobSpec {
        JobSpec {
            program: JobProgram::Source {
                name: "t.mmpi".to_string(),
                text: text.to_string(),
            },
            scales: vec![2],
            config: ScalAnaConfig::default(),
        }
    }

    const SRC: &str = "fn main() { comp(cycles = 10_000); allreduce(bytes = 8); }";

    fn accept(registry: &Registry, spec: JobSpec) -> SubmitOutcome {
        registry.submit(spec, |_| true)
    }

    #[test]
    fn resubmission_hits_whether_pending_or_done() {
        let registry = Registry::new();
        let key = match accept(&registry, spec(SRC)) {
            SubmitOutcome::Fresh(key) => key,
            other => panic!("first submit must be fresh, got {other:?}"),
        };
        // Second submit while queued: coalesced, counted as a hit.
        match accept(&registry, spec(SRC)) {
            SubmitOutcome::Existing(v) => assert_eq!(v.status, JobStatus::Queued),
            other => panic!("identical job must coalesce, got {other:?}"),
        }
        // Execute and complete; third submit is served from cache.
        let (job, generation) = registry.start(&key).unwrap();
        let output = job.execute().unwrap();
        registry.complete(&key, generation, output);
        match accept(&registry, spec(SRC)) {
            SubmitOutcome::Existing(v) => {
                assert_eq!(v.status, JobStatus::Done);
                assert!(v.result.is_some());
            }
            other => panic!("completed job must hit the cache, got {other:?}"),
        }
        let stats = registry.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.cache_hits, 2);
        assert_eq!(stats.cache_misses, 1);
        assert_eq!(stats.executed, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(registry.results_cached(), 1);
    }

    #[test]
    fn failed_jobs_are_retried_on_resubmit() {
        let registry = Registry::new();
        let key = match accept(&registry, spec("fn main( {")) {
            SubmitOutcome::Fresh(key) => key,
            other => panic!("{other:?}"),
        };
        let (_, generation) = registry.start(&key).unwrap();
        registry.fail(&key, generation, "parse error".to_string());
        assert_eq!(registry.status(&key).unwrap().status, JobStatus::Failed);
        match accept(&registry, spec("fn main( {")) {
            SubmitOutcome::Fresh(k) => assert_eq!(k, key),
            other => panic!("failed job must be retried, got {other:?}"),
        }
        assert_eq!(registry.stats().cache_misses, 2);
    }

    #[test]
    fn stale_generation_cannot_clobber_a_retry() {
        // A multi-scale job fails one scale; the client resubmits while
        // a second failing scale task of the *old* attempt is still
        // winding down. Its late fail() must not touch the fresh record.
        let registry = Registry::new();
        let key = match accept(&registry, spec(SRC)) {
            SubmitOutcome::Fresh(key) => key,
            other => panic!("{other:?}"),
        };
        let (_, old_generation) = registry.start(&key).unwrap();
        registry.fail(&key, old_generation, "scale 2: deadlock".to_string());
        // Retry: fresh record, new generation, status Queued.
        assert!(matches!(
            accept(&registry, spec(SRC)),
            SubmitOutcome::Fresh(_)
        ));

        // Late duplicate fail from the old attempt: ignored (the retry
        // stays claimable), and the failed counter moves only once.
        registry.fail(&key, old_generation, "scale 4: deadlock".to_string());
        assert_eq!(registry.status(&key).unwrap().status, JobStatus::Queued);
        assert_eq!(registry.stats().failed, 1);

        // The retry executes normally; a stale complete() from the old
        // attempt cannot overwrite it either.
        let (job, new_generation) = registry.start(&key).unwrap();
        assert_ne!(old_generation, new_generation);
        let output = job.execute().unwrap();
        registry.complete(&key, old_generation, output);
        assert_eq!(
            registry.status(&key).unwrap().status,
            JobStatus::Running,
            "stale complete must not publish a result"
        );
        registry.complete(&key, new_generation, job.execute().unwrap());
        assert_eq!(registry.status(&key).unwrap().status, JobStatus::Done);
        assert_eq!(registry.results_cached(), 1);
    }

    #[test]
    fn result_capacity_evicts_oldest_completed() {
        let registry = Registry::with_result_capacity(2);
        let texts = [
            "fn main() { comp(cycles = 10_000); }",
            "fn main() { comp(cycles = 20_000); }",
            "fn main() { comp(cycles = 30_000); }",
        ];
        let mut keys = Vec::new();
        for text in texts {
            let key = match accept(&registry, spec(text)) {
                SubmitOutcome::Fresh(key) => key,
                other => panic!("{other:?}"),
            };
            let (job, generation) = registry.start(&key).unwrap();
            registry.complete(&key, generation, job.execute().unwrap());
            keys.push(key);
        }
        // Capacity 2: the first completion was evicted, the rest serve.
        assert_eq!(registry.results_cached(), 2);
        assert!(registry.status(&keys[0]).is_none(), "oldest evicted");
        assert!(registry.status(&keys[1]).is_some());
        assert!(registry.status(&keys[2]).is_some());
        assert_eq!(registry.stats().evicted, 1);
        // An evicted job is simply fresh work again.
        assert!(matches!(
            accept(&registry, spec(texts[0])),
            SubmitOutcome::Fresh(_)
        ));
    }

    #[test]
    fn wait_terminal_wakes_on_completion_and_times_out_pending() {
        let registry = Registry::new();
        // Unknown key: answered immediately.
        assert!(matches!(
            registry.wait_terminal("nope", Duration::from_secs(5)),
            WaitOutcome::Unknown
        ));

        let key = match accept(&registry, spec(SRC)) {
            SubmitOutcome::Fresh(key) => key,
            other => panic!("{other:?}"),
        };
        // Still queued: a short wait reports Pending, not a hang.
        let started = std::time::Instant::now();
        assert!(matches!(
            registry.wait_terminal(&key, Duration::from_millis(30)),
            WaitOutcome::Pending(v) if v.status == JobStatus::Queued
        ));
        assert!(started.elapsed() >= Duration::from_millis(30));

        // A waiter parked on a running job is woken by complete().
        let (job, generation) = registry.start(&key).unwrap();
        let output = job.execute().unwrap();
        std::thread::scope(|scope| {
            let registry = &registry;
            let waiter_key = key.clone();
            let waiter = scope.spawn(move || {
                let started = std::time::Instant::now();
                let outcome = registry.wait_terminal(&waiter_key, Duration::from_secs(30));
                (outcome, started.elapsed())
            });
            std::thread::sleep(Duration::from_millis(20));
            registry.complete(&key, generation, output);
            let (outcome, waited) = waiter.join().unwrap();
            match outcome {
                WaitOutcome::Terminal(view) => assert_eq!(view.status, JobStatus::Done),
                other => panic!("expected terminal, got {other:?}"),
            }
            assert!(
                waited < Duration::from_secs(5),
                "woke at completion, not at the timeout ({waited:?})"
            );
        });

        // Terminal records answer without waiting at all.
        assert!(matches!(
            registry.wait_terminal(&key, Duration::ZERO),
            WaitOutcome::Terminal(_)
        ));
    }

    #[test]
    fn list_paginates_in_key_order_with_state_filter() {
        let registry = Registry::new();
        let mut keys = Vec::new();
        for i in 0..5 {
            let text = format!("fn main() {{ comp(cycles = {}); }}", 10_000 + i);
            let key = match accept(&registry, spec(&text)) {
                SubmitOutcome::Fresh(key) => key,
                other => panic!("{other:?}"),
            };
            // Complete all but the last two (left queued).
            if i < 3 {
                let (job, generation) = registry.start(&key).unwrap();
                registry.complete(&key, generation, job.execute().unwrap());
            }
            keys.push(key);
        }
        keys.sort();

        // Full listing: every job, ascending by key, no cursor.
        let (all, next) = registry.list(None, None, 100);
        assert_eq!(all.iter().map(|v| v.key.clone()).collect::<Vec<_>>(), keys);
        assert!(next.is_none());

        // Cursor walk with limit 2 covers everything exactly once.
        let mut walked = Vec::new();
        let mut after: Option<String> = None;
        loop {
            let (page, next) = registry.list(None, after.as_deref(), 2);
            assert!(page.len() <= 2);
            walked.extend(page.iter().map(|v| v.key.clone()));
            match next {
                Some(cursor) => after = Some(cursor),
                None => break,
            }
        }
        assert_eq!(walked, keys);

        // State filter: exactly the three completed jobs.
        let (done, _) = registry.list(Some(JobStatus::Done), None, 100);
        assert_eq!(done.len(), 3);
        assert!(done.iter().all(|v| v.status == JobStatus::Done));
        let (queued, _) = registry.list(Some(JobStatus::Queued), None, 100);
        assert_eq!(queued.len(), 2);
    }

    #[test]
    fn rejected_enqueue_registers_nothing() {
        let registry = Registry::new();
        assert!(matches!(
            registry.submit(spec(SRC), |_| false),
            SubmitOutcome::Rejected
        ));
        let stats = registry.stats();
        assert_eq!(stats.rejected, 1);
        // Only accepted submissions count — and no phantom record exists
        // for a later identical submission to coalesce onto.
        assert_eq!(stats.submitted, 0);
        assert_eq!(stats.cache_misses, 0);
        assert!(matches!(
            registry.submit(spec(SRC), |_| true),
            SubmitOutcome::Fresh(_)
        ));
    }

    #[derive(Debug, Default)]
    struct RecordingWaker(Mutex<Vec<u64>>);

    impl WaitWaker for RecordingWaker {
        fn wake(&self, token: u64) {
            self.0.lock().unwrap().push(token);
        }
    }

    #[test]
    fn subscriptions_park_wake_once_and_unsubscribe() {
        let registry = Registry::new();
        let waker = Arc::new(RecordingWaker::default());

        // Unknown key: answered inline, nothing parked.
        assert!(matches!(
            registry.subscribe("nope", 1, waker.clone()),
            SubscribeOutcome::Unknown
        ));
        assert_eq!(registry.parked(), 0);

        let key = match accept(&registry, spec(SRC)) {
            SubmitOutcome::Fresh(key) => key,
            other => panic!("{other:?}"),
        };
        // Pending job: both subscriptions park.
        assert!(matches!(
            registry.subscribe(&key, 10, waker.clone()),
            SubscribeOutcome::Parked
        ));
        assert!(matches!(
            registry.subscribe(&key, 11, waker.clone()),
            SubscribeOutcome::Parked
        ));
        assert_eq!(registry.parked(), 2);

        // One gives up early; only the survivor is woken.
        assert!(registry.unsubscribe(&key, 11));
        assert!(!registry.unsubscribe(&key, 11), "second removal is a no-op");
        assert_eq!(registry.parked(), 1);

        let (job, generation) = registry.start(&key).unwrap();
        registry.complete(&key, generation, job.execute().unwrap());
        assert_eq!(*waker.0.lock().unwrap(), vec![10]);
        assert_eq!(registry.parked(), 0);
        // The wake consumed the subscription: nothing left to remove.
        assert!(!registry.unsubscribe(&key, 10));

        // Terminal job: answered inline, waker untouched.
        match registry.subscribe(&key, 12, waker.clone()) {
            SubscribeOutcome::Terminal(view) => assert_eq!(view.status, JobStatus::Done),
            other => panic!("expected inline terminal answer, got {other:?}"),
        }
        assert_eq!(*waker.0.lock().unwrap(), vec![10]);
    }
}
