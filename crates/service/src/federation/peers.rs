//! One handle per remote daemon: a bounded keep-alive connection pool
//! behind a per-peer circuit breaker.
//!
//! The breaker replicates the ladder the durable store uses for disk
//! faults ([`crate::store`]): [`BREAKER_TRIP`] consecutive failures open
//! it, the open interval doubles from [`BREAKER_BASE_BACKOFF`] up to
//! [`BREAKER_MAX_BACKOFF`], and one success closes it entirely. While
//! open, [`PeerClient::request`] refuses instantly — the caller falls
//! back to local simulation without paying a connect timeout per job. A
//! dead peer therefore degrades fleet throughput (remote hits become
//! local misses), never correctness or availability.

use crate::client::Conn;
use crate::http::HttpResponse;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Consecutive failures that open a peer's breaker.
const BREAKER_TRIP: u32 = 3;
/// First open interval after a trip.
const BREAKER_BASE_BACKOFF: Duration = Duration::from_millis(250);
/// Backoff ceiling — a long-dead peer is re-probed at this cadence.
const BREAKER_MAX_BACKOFF: Duration = Duration::from_secs(30);

/// Idle keep-alive connections retained per peer. Requests beyond the
/// pool open a fresh connection and the surplus is dropped on return.
const POOL_SIZE: usize = 4;

/// Budget for opening a TCP connection to a peer.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(1);
/// Budget for one request/response round trip on a peer connection.
const READ_TIMEOUT: Duration = Duration::from_secs(5);

/// The store's failure ladder, replicated per peer.
#[derive(Debug, Default)]
struct Breaker {
    /// Consecutive failures since the last success.
    failures: u32,
    /// While set, requests are refused until this instant.
    open_until: Option<Instant>,
    /// Open interval the *next* trip will use.
    backoff: Duration,
}

impl Breaker {
    fn admit(&self, now: Instant) -> bool {
        self.open_until.is_none_or(|until| now >= until)
    }

    fn on_success(&mut self) {
        self.failures = 0;
        self.open_until = None;
        self.backoff = Duration::ZERO;
    }

    fn on_failure(&mut self, now: Instant) {
        self.failures += 1;
        if self.failures >= BREAKER_TRIP {
            if self.backoff.is_zero() {
                self.backoff = BREAKER_BASE_BACKOFF;
            }
            self.open_until = Some(now + self.backoff);
            self.backoff = (self.backoff * 2).min(BREAKER_MAX_BACKOFF);
        }
    }

    fn is_open(&self) -> bool {
        self.open_until.is_some()
    }
}

/// A pooled, breaker-guarded client for one remote daemon.
#[derive(Debug)]
pub struct PeerClient {
    addr: String,
    pool: Mutex<Vec<Conn>>,
    breaker: Mutex<Breaker>,
}

impl PeerClient {
    /// A client for the daemon at `addr`. No connection is opened until
    /// the first request.
    pub fn new(addr: &str) -> PeerClient {
        PeerClient {
            addr: addr.to_string(),
            pool: Mutex::new(Vec::new()),
            breaker: Mutex::new(Breaker::default()),
        }
    }

    /// The peer's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the breaker is currently tripped open.
    pub fn is_open(&self) -> bool {
        self.breaker.lock().unwrap().is_open()
    }

    /// One request to the peer. `None`: the breaker refused (the peer is
    /// known-bad; fall back without any I/O). `Some(Err)`: this attempt
    /// failed (and fed the breaker). `Some(Ok)`: the peer answered —
    /// any HTTP status, the caller interprets it.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Option<Result<HttpResponse, String>> {
        if !self.breaker.lock().unwrap().admit(Instant::now()) {
            return None;
        }
        let pooled = self.pool.lock().unwrap().pop();
        let mut conn = match pooled {
            Some(conn) => conn,
            None => match Conn::connect_with_timeout(&self.addr, CONNECT_TIMEOUT, READ_TIMEOUT) {
                Ok(conn) => conn,
                Err(e) => {
                    self.breaker.lock().unwrap().on_failure(Instant::now());
                    return Some(Err(e));
                }
            },
        };
        match conn.request_full(method, path, body) {
            Ok(response) => {
                self.breaker.lock().unwrap().on_success();
                if conn.is_alive() {
                    let mut pool = self.pool.lock().unwrap();
                    if pool.len() < POOL_SIZE {
                        pool.push(conn);
                    }
                }
                Some(Ok(response))
            }
            Err(e) => {
                // The pooled connection may simply have idled out
                // server-side; a failure on a *fresh* connection is the
                // signal the breaker should count. Retry once.
                match Conn::connect_with_timeout(&self.addr, CONNECT_TIMEOUT, READ_TIMEOUT)
                    .and_then(|mut fresh| {
                        fresh.request_full(method, path, body).map(|r| (fresh, r))
                    }) {
                    Ok((fresh, response)) => {
                        self.breaker.lock().unwrap().on_success();
                        if fresh.is_alive() {
                            let mut pool = self.pool.lock().unwrap();
                            if pool.len() < POOL_SIZE {
                                pool.push(fresh);
                            }
                        }
                        Some(Ok(response))
                    }
                    Err(_) => {
                        self.breaker.lock().unwrap().on_failure(Instant::now());
                        Some(Err(e))
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_trips_after_consecutive_failures_and_backs_off() {
        let mut b = Breaker::default();
        let t0 = Instant::now();
        assert!(b.admit(t0));
        b.on_failure(t0);
        b.on_failure(t0);
        assert!(b.admit(t0), "two failures stay closed");
        b.on_failure(t0);
        assert!(b.is_open());
        assert!(!b.admit(t0));
        assert!(b.admit(t0 + BREAKER_BASE_BACKOFF), "reopens after backoff");
        // A further failure doubles the interval.
        b.on_failure(t0 + BREAKER_BASE_BACKOFF);
        assert!(!b.admit(t0 + BREAKER_BASE_BACKOFF + BREAKER_BASE_BACKOFF));
        assert!(b.admit(t0 + BREAKER_BASE_BACKOFF + BREAKER_BASE_BACKOFF * 2));
        b.on_success();
        assert!(!b.is_open());
        assert!(b.admit(t0));
    }

    #[test]
    fn dead_peer_refuses_after_trip_without_io() {
        // Nothing listens on this port (reserved, never assigned).
        let peer = PeerClient::new("127.0.0.1:1");
        for _ in 0..BREAKER_TRIP {
            assert!(matches!(
                peer.request("GET", "/v1/healthz", ""),
                Some(Err(_))
            ));
        }
        assert!(peer.is_open());
        assert!(peer.request("GET", "/v1/healthz", "").is_none());
    }
}
