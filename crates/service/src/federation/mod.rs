//! Cache federation: N daemons as one fleet-wide analysis service.
//!
//! Each daemon started with `--peer` places itself and its peers on a
//! rendezvous ring ([`Ring`]) keyed by the *same* content-addressed FNV
//! keys the local caches use. Every key has exactly one owner that all
//! members agree on, so the fleet behaves as one sharded cache:
//!
//! - **read-through** — on a local per-scale or PSG miss, the executor
//!   consults the key's owner (`GET /v1/peer/profile/<key>`,
//!   `GET /v1/peer/psg/<key>`) before simulating; a remote hit costs one
//!   round trip instead of a simulator run;
//! - **write-behind** — freshly simulated entries are *offered* to their
//!   owner asynchronously on a dedicated writer thread (mirroring the
//!   durable store's write-behind), so the publishing job never blocks
//!   on peer I/O. The `peer_backlog` stat counts offers not yet settled;
//!   once it reads zero, every offer has reached (or conclusively failed
//!   to reach) its owner — the benches and smoke tests gate on that to
//!   stay deterministic;
//! - **membership** — at startup each daemon announces itself to its
//!   seeds (`POST /v1/peer/announce`) and merges the rings it gets back,
//!   so transitively connected seeds converge on one member set;
//! - **degradation** — all peer I/O sits behind per-peer circuit
//!   breakers ([`PeerClient`]); a dead peer turns its remote hits back
//!   into local simulations and write-offers into no-ops. Nothing on the
//!   job path ever *requires* a peer.
//!
//! The owner's durable store ([`crate::store`]) backs its share of the
//! key space, so a restarted owner warm-loads and immediately re-serves
//! the fleet.

pub mod peers;
pub mod ring;

pub use peers::PeerClient;
pub use ring::Ring;

use crate::http::HttpResponse;
use crate::json::parse;
use crate::sharded::ShardedMap;
use bytes::Bytes;
use scalana_api::{paths, PeerAnnounce, PeerBlob, RingView};
use scalana_obs::{Counter, Histogram};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::Instant;

/// Refined-PSG discovery traces held for peer serving. The owner's
/// durable store is the real home; this bounded map only covers
/// memory-only daemons and the window before the store writer settles.
const PSG_TRACE_CAPACITY: usize = 256;

/// Shard count for the trace map (same rationale as the caches').
const PSG_TRACE_SHARDS: usize = 16;

/// Pre-registered metric handles the federation layer feeds; clones of
/// the atomics [`crate::ServiceMetrics`] registered, so `/v1/metrics`
/// and `/v1/stats` read the same values.
#[derive(Debug, Clone)]
pub struct PeerMetrics {
    /// Remote fetch attempts actually put on the wire.
    pub requests: Counter,
    /// Remote fetches that came back as a decodable cache entry.
    pub hits: Counter,
    /// Wall time of one remote fetch round trip.
    pub fetch_ns: Histogram,
}

/// One queued write-behind item.
enum Offer {
    /// `POST` a cache entry to its owner.
    Blob {
        addr: String,
        path: String,
        body: String,
    },
    /// Introduce ourselves to a seed and merge the ring it returns.
    Announce { addr: String },
}

/// The daemon's view of the fleet: ring, peer clients, write-behind
/// queue, and the serve-side PSG trace shelf.
#[derive(Debug)]
pub struct Federation {
    /// Our advertised identity on the ring.
    self_addr: String,
    ring: RwLock<Ring>,
    /// Lazily created clients, one per remote member ever dialed.
    clients: Mutex<HashMap<String, Arc<PeerClient>>>,
    /// Encoded discovery traces we can serve to peers.
    psg_traces: ShardedMap<Bytes>,
    /// Offers enqueued but not yet settled by the writer.
    backlog: AtomicU64,
    metrics: PeerMetrics,
    writer: Mutex<Option<Sender<Offer>>>,
}

impl std::fmt::Debug for Offer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Offer::Blob { addr, path, .. } => write!(f, "Blob({addr}, {path})"),
            Offer::Announce { addr } => write!(f, "Announce({addr})"),
        }
    }
}

impl Federation {
    /// A federation of `self_addr` plus `seeds` (either may already
    /// contain the other; the ring dedups).
    pub fn new(self_addr: String, seeds: &[String], metrics: PeerMetrics) -> Federation {
        let ring = Ring::new(
            seeds
                .iter()
                .cloned()
                .chain(std::iter::once(self_addr.clone())),
        );
        Federation {
            self_addr,
            ring: RwLock::new(ring),
            clients: Mutex::new(HashMap::new()),
            psg_traces: ShardedMap::new(PSG_TRACE_SHARDS, PSG_TRACE_CAPACITY),
            backlog: AtomicU64::new(0),
            metrics,
            writer: Mutex::new(None),
        }
    }

    /// Our advertised address.
    pub fn self_addr(&self) -> &str {
        &self.self_addr
    }

    /// Whether there is anyone besides us on the ring.
    pub fn is_federated(&self) -> bool {
        self.ring.read().unwrap().len() > 1
    }

    /// Ring members right now.
    pub fn ring_len(&self) -> usize {
        self.ring.read().unwrap().len()
    }

    /// The `GET /v1/peer/ring` document.
    pub fn ring_view(&self) -> RingView {
        RingView {
            self_addr: self.self_addr.clone(),
            members: self.ring.read().unwrap().members().to_vec(),
        }
    }

    /// Merge an announced member in and answer with the updated view.
    pub fn announce(&self, addr: &str) -> RingView {
        self.ring.write().unwrap().insert(addr);
        self.ring_view()
    }

    /// The client for `addr`, created on first use.
    fn client(&self, addr: &str) -> Arc<PeerClient> {
        let mut clients = self.clients.lock().unwrap();
        Arc::clone(
            clients
                .entry(addr.to_string())
                .or_insert_with(|| Arc::new(PeerClient::new(addr))),
        )
    }

    /// Whether this daemon is `key`'s ring owner (trivially true on an
    /// empty or single-member ring). The cache admission policy keys on
    /// this: local memory is reserved for the owned shard, so the
    /// fleet's aggregate capacity really is the sum of its members'.
    pub fn owns(&self, key: &str) -> bool {
        match self.ring.read().unwrap().owner(key) {
            Some(owner) => owner == self.self_addr,
            None => true,
        }
    }

    /// The remote owner of `key`, or `None` when we own it ourselves
    /// (or the ring is empty).
    pub fn remote_owner(&self, key: &str) -> Option<Arc<PeerClient>> {
        let owner = self.ring.read().unwrap().owner(key)?.to_string();
        if owner == self.self_addr {
            return None;
        }
        Some(self.client(&owner))
    }

    /// Breakers currently tripped open across all peer clients.
    pub fn open_breakers(&self) -> u64 {
        self.clients
            .lock()
            .unwrap()
            .values()
            .filter(|c| c.is_open())
            .count() as u64
    }

    /// `(requests, hits, backlog)` for `/v1/stats`.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.metrics.requests.get(),
            self.metrics.hits.get(),
            self.backlog.load(Ordering::Acquire),
        )
    }

    /// Offers enqueued but not yet settled.
    pub fn backlog(&self) -> u64 {
        self.backlog.load(Ordering::Acquire)
    }

    /// One remote fetch: ask `key`'s owner for the entry at `path`.
    /// `None` covers every miss shape — we own the key, the breaker is
    /// open, transport failed, the owner answered non-200, or the body
    /// did not decode — because all of them mean the same thing to the
    /// executor: do the work locally.
    fn fetch(&self, key: &str, path: &str) -> Option<Bytes> {
        let peer = self.remote_owner(key)?;
        let started = Instant::now();
        let attempt = peer.request("GET", path, "")?;
        self.metrics.requests.inc();
        self.metrics
            .fetch_ns
            .record(started.elapsed().as_nanos() as u64);
        let response: HttpResponse = attempt.ok()?;
        if response.code != 200 {
            return None;
        }
        let text = std::str::from_utf8(&response.body).ok()?;
        let blob = PeerBlob::from_json(&parse(text).ok()?).ok()?;
        if blob.key != key {
            return None;
        }
        let bytes = blob.bytes().ok()?;
        self.metrics.hits.inc();
        Some(Bytes::from(bytes))
    }

    /// Fetch one per-scale profile image from its owner.
    pub fn fetch_profile(&self, key: &str) -> Option<Bytes> {
        self.fetch(key, &paths::peer_profile(key))
    }

    /// Fetch one encoded PSG discovery trace: the local shelf first
    /// (an owner holds traces peers pushed to it without a round trip),
    /// then the key's remote owner.
    pub fn fetch_psg_trace(&self, key: &str) -> Option<Bytes> {
        if let Some(trace) = self.lookup_psg_trace(key) {
            return Some(trace);
        }
        self.fetch(key, &paths::peer_psg(key))
    }

    /// Serve-side: an encoded trace we hold for peers.
    pub fn lookup_psg_trace(&self, key: &str) -> Option<Bytes> {
        self.psg_traces.get(key)
    }

    /// Serve-side: shelve a trace a peer pushed to us.
    pub fn record_psg_trace(&self, key: &str, encoded: Bytes) {
        self.psg_traces.insert(key.to_string(), encoded);
    }

    /// Write-behind: offer a freshly simulated profile image to its
    /// owner. No-op when we own the key.
    pub fn offer_profile(&self, key: &str, image: &Bytes) {
        let Some(peer) = self.remote_owner(key) else {
            return;
        };
        let body = PeerBlob::from_bytes(key, image).to_json().render();
        self.enqueue(Offer::Blob {
            addr: peer.addr().to_string(),
            path: paths::peer_profile(key),
            body,
        });
    }

    /// Write-behind: shelve a freshly discovered trace locally (we can
    /// serve it to peers either way) and offer it to its owner.
    pub fn publish_psg_trace(&self, key: &str, encoded: &Bytes) {
        self.record_psg_trace(key, encoded.clone());
        let Some(peer) = self.remote_owner(key) else {
            return;
        };
        let body = PeerBlob::from_bytes(key, encoded).to_json().render();
        self.enqueue(Offer::Blob {
            addr: peer.addr().to_string(),
            path: paths::peer_psg(key),
            body,
        });
    }

    /// Introduce ourselves to every seed (asynchronously, on the writer
    /// thread); the rings they answer with are merged back in, so
    /// transitively connected fleets converge without a coordinator.
    pub fn announce_peers(&self) {
        let members = self.ring.read().unwrap().members().to_vec();
        for addr in members {
            if addr != self.self_addr {
                self.enqueue(Offer::Announce { addr });
            }
        }
    }

    /// Queue one offer for the writer. The backlog counts it *before*
    /// the send so a reader polling `peer_backlog == 0` can never
    /// observe the gap; a missing writer settles it immediately.
    fn enqueue(&self, offer: Offer) {
        self.backlog.fetch_add(1, Ordering::AcqRel);
        let sender = self.writer.lock().unwrap().clone();
        let sent = match sender {
            Some(tx) => tx.send(offer).is_ok(),
            None => false,
        };
        if !sent {
            self.backlog.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Settle one offer (writer thread).
    fn process(&self, offer: Offer) {
        match offer {
            Offer::Blob { addr, path, body } => {
                // Best effort: the owner either absorbs it or the entry
                // stays local-only until someone re-simulates it there.
                let _ = self.client(&addr).request("POST", &path, &body);
            }
            Offer::Announce { addr } => {
                let body = PeerAnnounce {
                    addr: self.self_addr.clone(),
                }
                .to_json()
                .render();
                let Some(Ok(response)) =
                    self.client(&addr)
                        .request("POST", paths::PEER_ANNOUNCE, &body)
                else {
                    return;
                };
                if response.code != 200 {
                    return;
                }
                let Some(view) = std::str::from_utf8(&response.body)
                    .ok()
                    .and_then(|text| parse(text).ok())
                    .as_ref()
                    .and_then(RingView::from_json)
                else {
                    return;
                };
                let mut ring = self.ring.write().unwrap();
                ring.insert(&view.self_addr);
                for member in &view.members {
                    ring.insert(member);
                }
            }
        }
    }

    /// Start the write-behind thread (mirrors the store writer's
    /// lifecycle: started by [`crate::Server::run`], stopped on
    /// shutdown).
    pub fn start_writer(self: &Arc<Federation>) -> JoinHandle<()> {
        let (tx, rx) = mpsc::channel::<Offer>();
        *self.writer.lock().unwrap() = Some(tx);
        let federation = Arc::clone(self);
        thread::Builder::new()
            .name("peer-writer".to_string())
            .spawn(move || {
                for offer in rx {
                    federation.process(offer);
                    federation.backlog.fetch_sub(1, Ordering::AcqRel);
                }
            })
            .expect("spawn peer-writer thread")
    }

    /// Drop the sender; the writer drains its queue and exits.
    pub fn stop_writer(&self) {
        self.writer.lock().unwrap().take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalana_obs::MetricsRegistry;

    fn metrics() -> PeerMetrics {
        let registry = MetricsRegistry::new();
        PeerMetrics {
            requests: registry.counter("scalana_peer_requests_total"),
            hits: registry.counter("scalana_peer_hits_total"),
            fetch_ns: registry.histogram("scalana_peer_fetch_ns"),
        }
    }

    #[test]
    fn standalone_daemon_owns_every_key() {
        let fed = Federation::new("127.0.0.1:7878".to_string(), &[], metrics());
        assert!(!fed.is_federated());
        assert_eq!(fed.ring_len(), 1);
        assert!(fed.remote_owner("00ff5ca1a71e57ed").is_none());
        assert!(fed.fetch_profile("00ff5ca1a71e57ed").is_none());
        let view = fed.ring_view();
        assert_eq!(view.members, vec!["127.0.0.1:7878".to_string()]);
    }

    #[test]
    fn announce_merges_members_and_offers_settle_without_a_writer() {
        let fed = Federation::new(
            "127.0.0.1:7878".to_string(),
            &["127.0.0.1:7879".to_string()],
            metrics(),
        );
        assert!(fed.is_federated());
        let view = fed.announce("127.0.0.1:7880");
        assert_eq!(view.members.len(), 3);
        // Duplicate announce changes nothing.
        assert_eq!(fed.announce("127.0.0.1:7880").members.len(), 3);
        // No writer started: offers must settle instantly, not leak
        // backlog forever.
        let image = Bytes::from_static(b"image-bytes");
        for i in 0..32 {
            let mut h = crate::hash::StableHasher::new();
            h.write_usize(i);
            fed.offer_profile(&h.hex(), &image);
        }
        assert_eq!(fed.backlog(), 0);
    }

    #[test]
    fn psg_traces_shelve_and_serve() {
        let fed = Federation::new("127.0.0.1:7878".to_string(), &[], metrics());
        let encoded = Bytes::from_static(b"trace");
        fed.publish_psg_trace("00ff5ca1a71e57ed", &encoded);
        assert_eq!(
            fed.lookup_psg_trace("00ff5ca1a71e57ed").as_deref(),
            Some(&b"trace"[..])
        );
        assert!(fed.lookup_psg_trace("ffffffffffffffff").is_none());
    }
}
