//! Rendezvous (highest-random-weight) hashing over the daemon fleet.
//!
//! Every member scores every key with the same process-independent
//! FNV-1a ([`crate::hash::StableHasher`]) over `(key, member)`; the
//! member with the highest score owns the key. Because the score is a
//! pure function of the pair, any two daemons holding the same member
//! set compute the same owner for every key — no coordination, no
//! token table to replicate. And because removing a member only
//! reassigns the keys *it* won (every other pair's score is untouched),
//! membership churn remaps ~1/N of the key space instead of rehashing
//! everything — the property the federation proptests pin.

use crate::hash::StableHasher;

/// An ordered, deduplicated member set with rendezvous ownership.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ring {
    /// Member addresses, ascending and unique.
    members: Vec<String>,
}

impl Ring {
    /// Build a ring from any iterable of member addresses (sorted and
    /// deduplicated, so insertion order never influences ownership).
    pub fn new(members: impl IntoIterator<Item = String>) -> Ring {
        let mut members: Vec<String> = members.into_iter().collect();
        members.sort();
        members.dedup();
        Ring { members }
    }

    /// The member list, ascending.
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// Member count.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// No members at all.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether `addr` is already a member.
    pub fn contains(&self, addr: &str) -> bool {
        self.members
            .binary_search_by(|m| m.as_str().cmp(addr))
            .is_ok()
    }

    /// Add a member; returns whether the set changed.
    pub fn insert(&mut self, addr: &str) -> bool {
        match self.members.binary_search_by(|m| m.as_str().cmp(addr)) {
            Ok(_) => false,
            Err(at) => {
                self.members.insert(at, addr.to_string());
                true
            }
        }
    }

    /// Remove a member; returns whether the set changed.
    pub fn remove(&mut self, addr: &str) -> bool {
        match self.members.binary_search_by(|m| m.as_str().cmp(addr)) {
            Ok(at) => {
                self.members.remove(at);
                true
            }
            Err(_) => false,
        }
    }

    /// The rendezvous score of one `(key, member)` pair.
    ///
    /// FNV-1a diffuses trailing bytes weakly (one xor-multiply), and
    /// member addresses differ mostly in their final port digits — raw
    /// FNV scores would hand some members far more than 1/N of the key
    /// space. The splitmix64 finalizer gives every input bit even
    /// influence over the comparison.
    fn score(key: &str, member: &str) -> u64 {
        let mut h = StableHasher::new();
        h.write_str(key);
        h.write_str(member);
        let mut x = h.finish();
        x ^= x >> 30;
        x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        x
    }

    /// The member owning `key`: highest score wins, ties broken by the
    /// larger address so the winner is unique and order-independent.
    pub fn owner(&self, key: &str) -> Option<&str> {
        self.members
            .iter()
            .max_by_key(|member| (Ring::score(key, member), member.as_str()))
            .map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn keys(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| {
                let mut h = StableHasher::new();
                h.write_usize(i);
                h.hex()
            })
            .collect()
    }

    fn member_set(max: usize) -> impl Strategy<Value = Vec<String>> {
        proptest::collection::vec(0u16..500, 1..max + 1).prop_map(|ports| {
            ports
                .iter()
                .map(|p| format!("10.0.0.1:{}", 7000 + p))
                .collect()
        })
    }

    #[test]
    fn single_member_owns_everything() {
        let ring = Ring::new(["a:1".to_string()]);
        for key in keys(64) {
            assert_eq!(ring.owner(&key), Some("a:1"));
        }
        assert_eq!(Ring::new(std::iter::empty()).owner("k"), None);
    }

    #[test]
    fn duplicates_and_order_are_normalized() {
        let a = Ring::new(["b:2".to_string(), "a:1".to_string(), "b:2".to_string()]);
        let b = Ring::new(["a:1".to_string(), "b:2".to_string()]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        assert!(a.contains("a:1") && !a.contains("c:3"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Same member set ⇒ identical ownership on every node, however
        /// the set was assembled.
        #[test]
        fn placement_is_order_independent(members in member_set(8), shift in 0usize..8) {
            let forward = Ring::new(members.clone());
            let mut rotated = members.clone();
            rotated.rotate_left(shift % members.len().max(1));
            rotated.reverse();
            let backward = Ring::new(rotated);
            prop_assert_eq!(forward.members(), backward.members());
            for key in keys(128) {
                prop_assert_eq!(forward.owner(&key), backward.owner(&key));
            }
        }

        /// Removing one member reassigns exactly the keys it owned —
        /// every other key keeps its owner (minimal disruption).
        #[test]
        fn removing_a_member_only_remaps_its_keys(members in member_set(8), victim in 0usize..8) {
            let full = Ring::new(members.clone());
            let victim = full.members()[victim % full.len()].clone();
            let mut shrunk = full.clone();
            shrunk.remove(&victim);
            if shrunk.is_empty() {
                return Ok(());
            }
            for key in keys(256) {
                let before = full.owner(&key).unwrap();
                let after = shrunk.owner(&key).unwrap();
                if before != victim {
                    prop_assert_eq!(before, after, "non-victim keys must not move");
                }
            }
        }

        /// Adding one member steals only the keys it now owns, and on a
        /// uniform key space it takes roughly 1/N of them.
        #[test]
        fn adding_a_member_takes_about_one_nth(members in member_set(6)) {
            let base = Ring::new(members.clone());
            let mut grown = base.clone();
            if !grown.insert("10.0.0.2:9999") {
                return Ok(());
            }
            let sample = keys(1024);
            let mut moved = 0usize;
            for key in &sample {
                let before = base.owner(key).unwrap();
                let after = grown.owner(key).unwrap();
                if before != after {
                    prop_assert_eq!(after, "10.0.0.2:9999", "keys only move to the newcomer");
                    moved += 1;
                }
            }
            // Expected share is 1/N; allow a generous band around it so
            // the test pins the property, not the RNG.
            let n = grown.len();
            let expected = sample.len() / n;
            prop_assert!(
                moved <= expected * 3 + 32,
                "newcomer took {moved} of {} keys in an {n}-member ring (expected ~{expected})",
                sample.len()
            );
            prop_assert!(
                moved * 8 >= expected,
                "newcomer took {moved} keys; a rendezvous ring cannot leave it empty-handed"
            );
        }
    }
}
