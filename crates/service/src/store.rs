//! Durable on-disk store for the daemon's content-addressed caches.
//!
//! `scalana serve --store-dir <dir>` writes every per-scale profile
//! image and every refined-PSG discovery trace through to disk as a
//! content-addressed file, so a restarted (or crashed) daemon warms its
//! caches from the directory and answers previously-profiled scales
//! with zero re-simulation, byte-identical to its pre-crash answers.
//!
//! Three layers keep this crash-safe:
//!
//! 1. **Atomic write protocol** — every entry is written to a `.tmp`
//!    sibling, fsynced, renamed into place, and the directory fsynced.
//!    A crash at any point leaves either the old entry, the new entry,
//!    or a quarantinable `.tmp` orphan — never a half-visible file.
//!    Entries are framed with a versioned header and a length/checksum
//!    trailer ([`encode_frame`]/[`decode_frame`]), so torn or alien
//!    bytes are detected, typed ([`CorruptKind`]), quarantined to
//!    `<store-dir>/quarantine/`, and counted — never panicked on.
//! 2. **Injectable IO** — all filesystem traffic goes through the
//!    [`StoreIo`] trait. Production uses [`RealIo`]; tests drive the
//!    seed-deterministic [`FaultIo`]/[`FaultPlan`] (ENOSPC, EIO,
//!    permission loss, fsync failure, torn write then crash) to prove
//!    every failure mode degrades instead of corrupting.
//! 3. **Circuit breaker** — persistent write failures trip the store
//!    into memory-only mode (writes skipped and counted) with half-open
//!    retry probes under exponential backoff, so a full disk costs
//!    durability, not availability. State is surfaced through the
//!    `scalana_store_*` metric families and `/v1/stats`.
//!
//! The PSG side cannot serialize a [`scalana_graph::Psg`] directly;
//! instead the store persists the *indirect-call discovery trace*
//! (see [`scalana_core::pipeline::refined_psg_traced`]) and rebuilds
//! the identical refined PSG by replaying it — no simulation.

use crate::hash::StableHasher;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use scalana_profile::recorder::DiscoveryRound;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Magic number opening every store frame (distinct from the inner
/// profile-image magic so the two layers cannot be confused).
pub const STORE_MAGIC: u32 = 0x5ca1_ad15;
/// Store frame format version.
pub const STORE_VERSION: u16 = 1;
/// Trailer size: payload-length echo (u64) + FNV-1a checksum (u64).
const TRAILER_BYTES: usize = 16;
/// Consecutive write failures that trip the circuit breaker open.
const BREAKER_TRIP: u32 = 3;
/// First half-open retry delay; doubles per failed probe.
const BREAKER_BASE_BACKOFF: Duration = Duration::from_millis(250);
/// Backoff ceiling.
const BREAKER_MAX_BACKOFF: Duration = Duration::from_secs(30);

/// What a store entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryKind {
    /// A `scalana_profile::store::save` image for one (program, config,
    /// discovery-scale, nprocs) profile key.
    Profile,
    /// An indirect-call discovery trace for one refined-PSG key.
    PsgTrace,
}

impl EntryKind {
    fn tag(self) -> u8 {
        match self {
            EntryKind::Profile => 1,
            EntryKind::PsgTrace => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<EntryKind> {
        match tag {
            1 => Some(EntryKind::Profile),
            2 => Some(EntryKind::PsgTrace),
            _ => None,
        }
    }

    fn prefix(self) -> &'static str {
        match self {
            EntryKind::Profile => "profile",
            EntryKind::PsgTrace => "psg",
        }
    }
}

/// The data file name for an entry.
pub fn entry_file_name(kind: EntryKind, key: &str) -> String {
    format!("{}-{}.img", kind.prefix(), key)
}

/// Parse a data file name back into its expected kind and key.
fn parse_file_name(name: &str) -> Option<(EntryKind, &str)> {
    let stem = name.strip_suffix(".img")?;
    if let Some(key) = stem.strip_prefix("profile-") {
        return Some((EntryKind::Profile, key));
    }
    stem.strip_prefix("psg-")
        .map(|key| (EntryKind::PsgTrace, key))
}

/// Why a store file failed to decode. Every reason is quarantinable;
/// none is a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorruptKind {
    /// Shorter than its own framing claims (torn write, byte cut).
    Truncated,
    /// Not a store frame at all (alien file).
    BadMagic,
    /// A frame from a future (or mangled) format version.
    BadVersion(u16),
    /// Unknown entry-kind tag.
    BadKind(u8),
    /// Framing intact but the trailer checksum does not match.
    BadChecksum,
    /// Valid frame whose embedded key or kind disagrees with the file
    /// name it was found under (misplaced or renamed file).
    KeyMismatch,
}

impl std::fmt::Display for CorruptKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorruptKind::Truncated => write!(f, "truncated store frame"),
            CorruptKind::BadMagic => write!(f, "not a store frame"),
            CorruptKind::BadVersion(v) => write!(f, "unsupported store version {v}"),
            CorruptKind::BadKind(t) => write!(f, "unknown store entry kind {t}"),
            CorruptKind::BadChecksum => write!(f, "store frame checksum mismatch"),
            CorruptKind::KeyMismatch => write!(f, "store frame key disagrees with file name"),
        }
    }
}

/// Frame an entry: versioned header, content-addressed key, payload,
/// then a length/checksum trailer over every preceding byte.
pub fn encode_frame(kind: EntryKind, key: &str, payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(payload.len() + key.len() + 48);
    buf.put_u32_le(STORE_MAGIC);
    buf.put_u16_le(STORE_VERSION);
    buf.put_u8(kind.tag());
    buf.put_u16_le(key.len() as u16);
    buf.put_slice(key.as_bytes());
    buf.put_u64_le(payload.len() as u64);
    buf.put_slice(payload);
    let mut h = StableHasher::new();
    h.write_bytes(&buf);
    buf.put_u64_le(payload.len() as u64);
    buf.put_u64_le(h.finish());
    buf.freeze()
}

/// Decode a store frame, returning the typed corruption reason on any
/// mismatch. The checksum covers header and payload, so a single
/// flipped bit anywhere is `BadChecksum`; a byte cut anywhere is
/// `Truncated`.
pub fn decode_frame(raw: &[u8]) -> Result<(EntryKind, String, Bytes), CorruptKind> {
    if raw.len() < 4 {
        return Err(CorruptKind::Truncated);
    }
    if u32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]) != STORE_MAGIC {
        return Err(CorruptKind::BadMagic);
    }
    if raw.len() < 7 {
        return Err(CorruptKind::Truncated);
    }
    let version = u16::from_le_bytes([raw[4], raw[5]]);
    if version != STORE_VERSION {
        return Err(CorruptKind::BadVersion(version));
    }
    let kind = EntryKind::from_tag(raw[6]).ok_or(CorruptKind::BadKind(raw[6]))?;
    if raw.len() < 9 {
        return Err(CorruptKind::Truncated);
    }
    let key_len = u16::from_le_bytes([raw[7], raw[8]]) as usize;
    let header_end = 9 + key_len;
    if raw.len() < header_end + 8 + TRAILER_BYTES {
        return Err(CorruptKind::Truncated);
    }
    let payload_len =
        u64::from_le_bytes(raw[header_end..header_end + 8].try_into().expect("8 bytes")) as usize;
    let total = header_end
        .checked_add(8)
        .and_then(|n| n.checked_add(payload_len))
        .and_then(|n| n.checked_add(TRAILER_BYTES))
        .ok_or(CorruptKind::Truncated)?;
    if raw.len() != total {
        return Err(CorruptKind::Truncated);
    }
    let echo = u64::from_le_bytes(raw[total - 16..total - 8].try_into().expect("8 bytes"));
    let mut h = StableHasher::new();
    h.write_bytes(&raw[..total - TRAILER_BYTES]);
    let checksum = u64::from_le_bytes(raw[total - 8..total].try_into().expect("8 bytes"));
    if echo != payload_len as u64 || checksum != h.finish() {
        return Err(CorruptKind::BadChecksum);
    }
    let key = String::from_utf8_lossy(&raw[9..header_end]).into_owned();
    let payload = Bytes::from(raw[header_end + 8..total - TRAILER_BYTES].to_vec());
    Ok((kind, key, payload))
}

/// Serialize an indirect-call discovery trace (round-ordered, each
/// round's triples in application order).
pub fn encode_trace(trace: &[DiscoveryRound]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u64_le(trace.len() as u64);
    for round in trace {
        buf.put_u64_le(round.len() as u64);
        for (ctx, stmt, callee) in round {
            buf.put_u32_le(*ctx);
            buf.put_u32_le(*stmt);
            buf.put_u16_le(callee.len() as u16);
            buf.put_slice(callee.as_bytes());
        }
    }
    buf.freeze()
}

/// Deserialize a discovery trace. Bounds-checked throughout (hostile
/// counts return `None`, they never panic or over-allocate).
pub fn decode_trace(mut buf: Bytes) -> Option<Vec<DiscoveryRound>> {
    const TRIPLE_MIN: usize = 4 + 4 + 2;
    if buf.remaining() < 8 {
        return None;
    }
    let rounds = buf.get_u64_le() as usize;
    if rounds > buf.remaining() {
        return None;
    }
    let mut trace = Vec::with_capacity(rounds.min(16));
    for _ in 0..rounds {
        if buf.remaining() < 8 {
            return None;
        }
        let triples = buf.get_u64_le() as usize;
        match triples.checked_mul(TRIPLE_MIN) {
            Some(min) if buf.remaining() >= min => {}
            _ => return None,
        }
        let mut round = Vec::with_capacity(triples);
        for _ in 0..triples {
            if buf.remaining() < TRIPLE_MIN {
                return None;
            }
            let ctx = buf.get_u32_le();
            let stmt = buf.get_u32_le();
            let len = buf.get_u16_le() as usize;
            if buf.remaining() < len {
                return None;
            }
            let name = buf.copy_to_bytes(len);
            round.push((ctx, stmt, String::from_utf8_lossy(&name).into_owned()));
        }
        trace.push(round);
    }
    if buf.has_remaining() {
        return None;
    }
    Some(trace)
}

/// Every filesystem operation the store performs, behind a trait so
/// tests can inject faults at exact points. Implementations must be
/// shareable across the writer thread and request handlers.
pub trait StoreIo: Send + Sync + std::fmt::Debug {
    /// `std::fs::create_dir_all`.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Create/truncate `path` and write all of `bytes`.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Flush a file's data and metadata to disk (`File::sync_all`).
    fn sync_file(&self, path: &Path) -> io::Result<()>;
    /// Atomic rename within the store directory.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Flush the directory entry itself (durability of the rename).
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// List the *files* (not subdirectories) directly inside `path`.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
    /// Delete a file.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// `(len_bytes, mtime_nanos_since_epoch)` of a file.
    fn metadata(&self, path: &Path) -> io::Result<(u64, u64)>;
}

/// The production [`StoreIo`]: plain `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealIo;

impl StoreIo for RealIo {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut files = Vec::new();
        for entry in std::fs::read_dir(path)? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                files.push(entry.path());
            }
        }
        files.sort();
        Ok(files)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn metadata(&self, path: &Path) -> io::Result<(u64, u64)> {
        let meta = std::fs::metadata(path)?;
        let mtime = meta
            .modified()
            .ok()
            .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        Ok((meta.len(), mtime))
    }
}

/// The failure a [`FaultPlan`] injects at one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Disk full (`ENOSPC`).
    Enospc,
    /// Generic IO error (`EIO`).
    Eio,
    /// Permission loss (`EACCES`).
    Eacces,
    /// fsync reports failure (data may or may not be durable).
    FsyncFail,
    /// A write persists only a prefix of the bytes, then fails — the
    /// on-disk image of a crash mid-write.
    Torn,
}

impl FaultKind {
    fn error(self, op: &str) -> io::Error {
        match self {
            FaultKind::Enospc => io::Error::from_raw_os_error(28),
            FaultKind::Eio | FaultKind::Torn => io::Error::from_raw_os_error(5),
            FaultKind::Eacces => io::Error::from_raw_os_error(13),
            FaultKind::FsyncFail => io::Error::other(format!("injected fsync failure at {op}")),
        }
    }
}

/// A deterministic schedule of injected faults over the store's
/// *mutating* operations (write, fsync, rename, directory fsync —
/// reads are exercised by the corruption matrix instead). The plan is
/// a pure function of `(seed, operation index)`, so a failing test
/// seed replays exactly.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    rate_per_mille: u32,
    scripted: Vec<(u64, FaultKind)>,
}

impl FaultPlan {
    /// Random-looking faults: each mutating op faults with probability
    /// `rate_per_mille`/1000, the kind derived from the op index.
    pub fn seeded(seed: u64, rate_per_mille: u32) -> FaultPlan {
        FaultPlan {
            seed,
            rate_per_mille,
            scripted: Vec::new(),
        }
    }

    /// Exact faults: mutating op `i` (0-based, store-lifetime counter)
    /// fails with the given kind; all other ops succeed.
    pub fn scripted(faults: Vec<(u64, FaultKind)>) -> FaultPlan {
        FaultPlan {
            seed: 0,
            rate_per_mille: 0,
            scripted: faults,
        }
    }

    fn mix(&self, op_index: u64) -> u64 {
        let mut h = StableHasher::new();
        h.write_u64(self.seed);
        h.write_u64(op_index);
        h.finish()
    }

    fn fault_for(&self, op_index: u64) -> Option<FaultKind> {
        if !self.scripted.is_empty() {
            return self
                .scripted
                .iter()
                .find(|(i, _)| *i == op_index)
                .map(|(_, k)| *k);
        }
        if self.rate_per_mille == 0 {
            return None;
        }
        let h = self.mix(op_index);
        if (h % 1000) as u32 >= self.rate_per_mille {
            return None;
        }
        Some(match (h >> 32) % 5 {
            0 => FaultKind::Enospc,
            1 => FaultKind::Eio,
            2 => FaultKind::Eacces,
            3 => FaultKind::FsyncFail,
            _ => FaultKind::Torn,
        })
    }

    /// Where a torn write cuts, as a fraction of the payload.
    fn torn_cut(&self, op_index: u64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        (self.mix(op_index.wrapping_add(0x7041)) as usize) % len
    }
}

/// [`RealIo`] with a [`FaultPlan`] injected over every mutating
/// operation. Reads and listings pass through untouched.
#[derive(Debug)]
pub struct FaultIo {
    inner: RealIo,
    plan: FaultPlan,
    mutations: AtomicU64,
    injected: AtomicU64,
}

impl FaultIo {
    /// Wrap the real filesystem with a fault schedule.
    pub fn new(plan: FaultPlan) -> FaultIo {
        FaultIo {
            inner: RealIo,
            plan,
            mutations: AtomicU64::new(0),
            injected: AtomicU64::new(0),
        }
    }

    /// How many faults actually fired.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::SeqCst)
    }

    /// How many mutating operations were attempted.
    pub fn mutations(&self) -> u64 {
        self.mutations.load(Ordering::SeqCst)
    }

    fn gate(&self, op: &str) -> Result<u64, io::Error> {
        let index = self.mutations.fetch_add(1, Ordering::SeqCst);
        match self.plan.fault_for(index) {
            None => Ok(index),
            Some(FaultKind::Torn) => Ok(index), // handled by `write`
            Some(kind) => {
                self.injected.fetch_add(1, Ordering::SeqCst);
                Err(kind.error(op))
            }
        }
    }
}

impl StoreIo for FaultIo {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let index = self.mutations.fetch_add(1, Ordering::SeqCst);
        match self.plan.fault_for(index) {
            None => self.inner.write(path, bytes),
            Some(FaultKind::Torn) => {
                self.injected.fetch_add(1, Ordering::SeqCst);
                let cut = self.plan.torn_cut(index, bytes.len());
                let _ = self.inner.write(path, &bytes[..cut]);
                Err(FaultKind::Torn.error("write"))
            }
            Some(kind) => {
                self.injected.fetch_add(1, Ordering::SeqCst);
                Err(kind.error("write"))
            }
        }
    }

    fn sync_file(&self, path: &Path) -> io::Result<()> {
        self.gate("sync_file")?;
        self.inner.sync_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.gate("rename")?;
        self.inner.rename(from, to)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        self.gate("sync_dir")?;
        self.inner.sync_dir(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        self.inner.read_dir(path)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.gate("remove")?;
        self.inner.remove(path)
    }

    fn metadata(&self, path: &Path) -> io::Result<(u64, u64)> {
        self.inner.metadata(path)
    }
}

/// Circuit breaker over store writes: trips open after
/// [`BREAKER_TRIP`] consecutive failures, then admits one half-open
/// probe per backoff window (doubling up to [`BREAKER_MAX_BACKOFF`]).
#[derive(Debug)]
struct Breaker {
    failures: u32,
    open_until: Option<Instant>,
    backoff: Duration,
}

impl Breaker {
    fn new() -> Breaker {
        Breaker {
            failures: 0,
            open_until: None,
            backoff: BREAKER_BASE_BACKOFF,
        }
    }

    /// May a write attempt proceed right now?
    fn admit(&self, now: Instant) -> bool {
        match self.open_until {
            Some(until) => now >= until,
            None => true,
        }
    }

    fn on_success(&mut self) {
        self.failures = 0;
        self.open_until = None;
        self.backoff = BREAKER_BASE_BACKOFF;
    }

    fn on_failure(&mut self, now: Instant) {
        self.failures += 1;
        if self.failures >= BREAKER_TRIP {
            self.open_until = Some(now + self.backoff);
            self.backoff = (self.backoff * 2).min(BREAKER_MAX_BACKOFF);
        }
    }

    fn is_open(&self) -> bool {
        self.open_until.is_some()
    }
}

/// One queued write-behind request.
#[derive(Debug)]
struct WriteReq {
    kind: EntryKind,
    key: String,
    payload: Bytes,
}

/// Counter snapshot for `/v1/stats` and the `scalana_store_*` metric
/// families.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreSnapshot {
    /// Entries successfully persisted.
    pub writes: u64,
    /// Failed write attempts (any step of the atomic protocol).
    pub write_errors: u64,
    /// Writes skipped because the breaker was open (memory-only mode).
    pub skipped: u64,
    /// Files moved to `quarantine/` (corrupt, torn, alien, orphaned).
    pub quarantined: u64,
    /// Entries successfully loaded from disk (warm scan + read-through).
    pub loaded: u64,
    /// Entries removed by the quota sweep.
    pub evicted: u64,
    /// Live entries in the store directory.
    pub entries: u64,
    /// Bytes of live entries.
    pub bytes: u64,
    /// 1 while the circuit breaker is open (memory-only mode), else 0.
    pub degraded: u64,
}

/// Result of one LRU quota sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Entries removed.
    pub evicted: u64,
    /// Bytes freed.
    pub freed_bytes: u64,
}

/// The durable store: a directory of framed, content-addressed entries
/// plus the machinery above (atomic writes, quarantine, warm scan,
/// write-behind thread, circuit breaker, LRU quota sweep).
#[derive(Debug)]
pub struct DiskStore {
    io: Arc<dyn StoreIo>,
    dir: PathBuf,
    quota: u64,
    writes: AtomicU64,
    write_errors: AtomicU64,
    skipped: AtomicU64,
    quarantined: AtomicU64,
    loaded: AtomicU64,
    evicted: AtomicU64,
    entries: AtomicU64,
    bytes: AtomicU64,
    degraded: AtomicU64,
    /// Bumped once per *completed* write; the sweep snapshots it so an
    /// entry (re)written during the sweep is never a victim.
    generation: AtomicU64,
    write_gens: Mutex<HashMap<String, u64>>,
    traces: Mutex<HashMap<String, Bytes>>,
    breaker: Mutex<Breaker>,
    writer: Mutex<Option<mpsc::Sender<WriteReq>>>,
}

impl DiskStore {
    /// Open (creating if needed) a store directory and warm-scan it.
    /// Returns the store plus every valid profile image found, for
    /// seeding the in-memory per-scale cache; PSG traces are retained
    /// inside the store for replay on demand.
    ///
    /// Never fails hard: an unreadable or uncreatable directory yields
    /// an empty, already-degraded store — the daemon must stay
    /// available in memory-only mode.
    pub fn open(io: Arc<dyn StoreIo>, dir: &Path, quota: u64) -> (DiskStore, Vec<(String, Bytes)>) {
        let store = DiskStore {
            io,
            dir: dir.to_path_buf(),
            quota,
            writes: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            loaded: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            entries: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            write_gens: Mutex::new(HashMap::new()),
            traces: Mutex::new(HashMap::new()),
            breaker: Mutex::new(Breaker::new()),
            writer: Mutex::new(None),
        };
        if store.io.create_dir_all(&store.dir).is_err()
            || store.io.create_dir_all(&store.quarantine_dir()).is_err()
        {
            store.mark_degraded();
            return (store, Vec::new());
        }
        let warm = store.warm_scan();
        (store, warm)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured quota in bytes (0 = unlimited).
    pub fn quota(&self) -> u64 {
        self.quota
    }

    fn quarantine_dir(&self) -> PathBuf {
        self.dir.join("quarantine")
    }

    fn entry_path(&self, kind: EntryKind, key: &str) -> PathBuf {
        self.dir.join(entry_file_name(kind, key))
    }

    /// Scan the directory: load valid entries, quarantine everything
    /// else (`.tmp` orphans, torn frames, alien files, key mismatches).
    fn warm_scan(&self) -> Vec<(String, Bytes)> {
        let files = match self.io.read_dir(&self.dir) {
            Ok(files) => files,
            Err(_) => {
                self.mark_degraded();
                return Vec::new();
            }
        };
        let mut warm = Vec::new();
        for path in files {
            let name = match path.file_name().and_then(|n| n.to_str()) {
                Some(name) => name.to_string(),
                None => {
                    self.quarantine(&path);
                    continue;
                }
            };
            let expected = match parse_file_name(&name) {
                Some(expected) if !name.ends_with(".tmp") => expected,
                _ => {
                    // `.tmp` orphans from a crash mid-write, and files
                    // the store never wrote.
                    self.quarantine(&path);
                    continue;
                }
            };
            let raw = match self.io.read(&path) {
                Ok(raw) => raw,
                Err(_) => {
                    self.quarantine(&path);
                    continue;
                }
            };
            match decode_frame(&raw) {
                Ok((kind, key, payload)) if (kind, key.as_str()) == expected => {
                    self.entries.fetch_add(1, Ordering::SeqCst);
                    self.bytes.fetch_add(raw.len() as u64, Ordering::SeqCst);
                    self.loaded.fetch_add(1, Ordering::SeqCst);
                    match kind {
                        EntryKind::Profile => warm.push((key, payload)),
                        EntryKind::PsgTrace => {
                            self.traces.lock().unwrap().insert(key, payload);
                        }
                    }
                }
                // Decoded fine but filed under the wrong name: treat
                // exactly like `CorruptKind::KeyMismatch`.
                Ok(_) | Err(_) => self.quarantine(&path),
            }
        }
        warm
    }

    /// Move a bad file to `quarantine/`, falling back to deletion; if
    /// both fail the file is left for the next scan. Never panics.
    fn quarantine(&self, path: &Path) {
        let dest = match path.file_name() {
            Some(name) => self.quarantine_dir().join(name),
            None => return,
        };
        if self.io.rename(path, &dest).is_ok() || self.io.remove(path).is_ok() {
            self.quarantined.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Queue an entry for durable write-behind persistence (or write
    /// synchronously when no writer thread is running).
    pub fn save(&self, kind: EntryKind, key: &str, payload: Bytes) {
        let sender = self.writer.lock().unwrap().clone();
        let req = WriteReq {
            kind,
            key: key.to_string(),
            payload,
        };
        match sender {
            Some(tx) => {
                if let Err(mpsc::SendError(req)) = tx.send(req) {
                    self.persist(req.kind, &req.key, &req.payload);
                }
            }
            None => {
                self.persist(req.kind, &req.key, &req.payload);
            }
        }
    }

    /// Convenience wrappers for the two entry kinds.
    pub fn save_profile(&self, key: &str, image: Bytes) {
        self.save(EntryKind::Profile, key, image);
    }

    /// Persist a PSG discovery trace (also retained in memory for
    /// replay without touching disk again).
    pub fn save_psg_trace(&self, key: &str, trace: Bytes) {
        self.traces
            .lock()
            .unwrap()
            .insert(key.to_string(), trace.clone());
        self.save(EntryKind::PsgTrace, key, trace);
    }

    /// Read-through for a profile image the in-memory cache evicted or
    /// never saw. Corrupt files are quarantined and `None` returned.
    pub fn read_profile(&self, key: &str) -> Option<Bytes> {
        self.read_entry(EntryKind::Profile, key)
    }

    /// A PSG discovery trace, from the warm side map or disk.
    pub fn psg_trace(&self, key: &str) -> Option<Bytes> {
        if let Some(trace) = self.traces.lock().unwrap().get(key).cloned() {
            return Some(trace);
        }
        let trace = self.read_entry(EntryKind::PsgTrace, key)?;
        self.traces
            .lock()
            .unwrap()
            .insert(key.to_string(), trace.clone());
        Some(trace)
    }

    fn read_entry(&self, kind: EntryKind, key: &str) -> Option<Bytes> {
        let path = self.entry_path(kind, key);
        let raw = self.io.read(&path).ok()?;
        match decode_frame(&raw) {
            Ok((k, embedded, payload)) if k == kind && embedded == key => {
                self.loaded.fetch_add(1, Ordering::SeqCst);
                Some(payload)
            }
            _ => {
                self.quarantine(&path);
                self.entries
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |e| {
                        Some(e.saturating_sub(1))
                    })
                    .ok();
                self.bytes
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| {
                        Some(b.saturating_sub(raw.len() as u64))
                    })
                    .ok();
                None
            }
        }
    }

    /// Spawn the write-behind thread. Queued writes drain in order;
    /// [`DiskStore::stop_writer`] plus joining the returned handle
    /// flushes everything pending (graceful-shutdown contract).
    pub fn start_writer(self: &Arc<Self>) -> std::thread::JoinHandle<()> {
        let (tx, rx) = mpsc::channel::<WriteReq>();
        *self.writer.lock().unwrap() = Some(tx);
        let store = Arc::clone(self);
        std::thread::Builder::new()
            .name("store-writer".to_string())
            .spawn(move || {
                for req in rx {
                    store.persist(req.kind, &req.key, &req.payload);
                }
            })
            .expect("spawn store-writer thread")
    }

    /// Drop the writer sender: the thread drains its queue and exits,
    /// and later [`DiskStore::save`] calls persist synchronously.
    pub fn stop_writer(&self) {
        self.writer.lock().unwrap().take();
    }

    fn mark_degraded(&self) {
        self.degraded.store(1, Ordering::SeqCst);
    }

    /// Whether the breaker currently has the store in memory-only mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst) == 1
    }

    /// One durable write through the breaker and the atomic protocol.
    /// Returns whether the entry reached disk.
    fn persist(&self, kind: EntryKind, key: &str, payload: &[u8]) -> bool {
        let now = Instant::now();
        if !self.breaker.lock().unwrap().admit(now) {
            self.skipped.fetch_add(1, Ordering::SeqCst);
            return false;
        }
        match self.write_entry(kind, key, payload) {
            Ok(()) => {
                let mut breaker = self.breaker.lock().unwrap();
                breaker.on_success();
                drop(breaker);
                self.degraded.store(0, Ordering::SeqCst);
                self.writes.fetch_add(1, Ordering::SeqCst);
                if self.quota > 0 && self.bytes.load(Ordering::SeqCst) > self.quota {
                    self.sweep();
                }
                true
            }
            Err(_) => {
                self.write_errors.fetch_add(1, Ordering::SeqCst);
                let mut breaker = self.breaker.lock().unwrap();
                breaker.on_failure(Instant::now());
                let open = breaker.is_open();
                drop(breaker);
                if open {
                    self.mark_degraded();
                }
                false
            }
        }
    }

    /// The atomic write protocol: frame, write `.tmp`, fsync, rename
    /// into place, fsync the directory. A failure before the rename
    /// leaves at most a quarantinable `.tmp`; after the rename the
    /// entry is complete and valid even if the directory fsync fails.
    fn write_entry(&self, kind: EntryKind, key: &str, payload: &[u8]) -> io::Result<()> {
        let frame = encode_frame(kind, key, payload);
        let final_path = self.entry_path(kind, key);
        let tmp_path = self.dir.join(format!("{}.tmp", entry_file_name(kind, key)));
        let previous_len = self.io.metadata(&final_path).map(|(len, _)| len).ok();

        let staged = self
            .io
            .write(&tmp_path, &frame)
            .and_then(|()| self.io.sync_file(&tmp_path))
            .and_then(|()| self.io.rename(&tmp_path, &final_path));
        if let Err(e) = staged {
            let _ = self.io.remove(&tmp_path);
            return Err(e);
        }

        // Book-keeping before the directory fsync: the entry is already
        // complete and readable, so even a failed dir fsync (counted as
        // a write error by the caller) must not untrack it.
        let generation = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        self.write_gens
            .lock()
            .unwrap()
            .insert(entry_file_name(kind, key), generation);
        match previous_len {
            Some(old) => {
                self.bytes.fetch_add(frame.len() as u64, Ordering::SeqCst);
                self.bytes
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| {
                        Some(b.saturating_sub(old))
                    })
                    .ok();
            }
            None => {
                self.entries.fetch_add(1, Ordering::SeqCst);
                self.bytes.fetch_add(frame.len() as u64, Ordering::SeqCst);
            }
        }
        self.io.sync_dir(&self.dir)
    }

    /// LRU sweep: delete oldest entries (by mtime, name-tie-broken)
    /// until the store fits the quota. Entries written after the sweep
    /// started (their write generation exceeds the snapshot) are never
    /// victims. No locks are held across IO calls.
    pub fn sweep(&self) -> SweepReport {
        let snapshot_gen = self.generation.load(Ordering::SeqCst);
        if self.quota == 0 {
            return SweepReport::default();
        }
        let files = match self.io.read_dir(&self.dir) {
            Ok(files) => files,
            Err(_) => return SweepReport::default(),
        };
        let mut candidates: Vec<(u64, String, PathBuf, u64)> = Vec::new();
        let mut total: u64 = 0;
        for path in files {
            let name = match path.file_name().and_then(|n| n.to_str()) {
                Some(name) if parse_file_name(name).is_some() && !name.ends_with(".tmp") => {
                    name.to_string()
                }
                _ => continue,
            };
            if let Ok((len, mtime)) = self.io.metadata(&path) {
                total += len;
                candidates.push((mtime, name, path, len));
            }
        }
        candidates.sort_by(|a, b| (a.0, &a.1).cmp(&(b.0, &b.1)));

        let mut report = SweepReport::default();
        for (_, name, path, len) in candidates {
            if total <= self.quota {
                break;
            }
            let fresh = self
                .write_gens
                .lock()
                .unwrap()
                .get(&name)
                .is_some_and(|g| *g > snapshot_gen);
            if fresh {
                continue;
            }
            if self.io.remove(&path).is_ok() {
                total -= len;
                report.evicted += 1;
                report.freed_bytes += len;
                if let Some((EntryKind::PsgTrace, key)) = parse_file_name(&name) {
                    self.traces.lock().unwrap().remove(key);
                }
                self.evicted.fetch_add(1, Ordering::SeqCst);
                self.entries
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |e| {
                        Some(e.saturating_sub(1))
                    })
                    .ok();
                self.bytes
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| {
                        Some(b.saturating_sub(len))
                    })
                    .ok();
            }
        }
        report
    }

    /// List live entries as `(file name, bytes)`, name-sorted.
    pub fn list(&self) -> Vec<(String, u64)> {
        let files = match self.io.read_dir(&self.dir) {
            Ok(files) => files,
            Err(_) => return Vec::new(),
        };
        let mut out = Vec::new();
        for path in files {
            if let Some(name) = path.file_name().and_then(|n| n.to_str()) {
                if parse_file_name(name).is_some() && !name.ends_with(".tmp") {
                    if let Ok((len, _)) = self.io.metadata(&path) {
                        out.push((name.to_string(), len));
                    }
                }
            }
        }
        out.sort();
        out
    }

    /// Counter snapshot.
    pub fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot {
            writes: self.writes.load(Ordering::SeqCst),
            write_errors: self.write_errors.load(Ordering::SeqCst),
            skipped: self.skipped.load(Ordering::SeqCst),
            quarantined: self.quarantined.load(Ordering::SeqCst),
            loaded: self.loaded.load(Ordering::SeqCst),
            evicted: self.evicted.load(Ordering::SeqCst),
            entries: self.entries.load(Ordering::SeqCst),
            bytes: self.bytes.load(Ordering::SeqCst),
            degraded: self.degraded.load(Ordering::SeqCst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "scalana-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn frame_round_trips() {
        let frame = encode_frame(EntryKind::Profile, "abcd1234abcd1234", b"payload bytes");
        let (kind, key, payload) = decode_frame(&frame).unwrap();
        assert_eq!(kind, EntryKind::Profile);
        assert_eq!(key, "abcd1234abcd1234");
        assert_eq!(&payload[..], b"payload bytes");
    }

    #[test]
    fn frame_corruption_reasons_are_typed() {
        let frame = encode_frame(EntryKind::PsgTrace, "k", b"data");
        assert!(matches!(decode_frame(b""), Err(CorruptKind::Truncated)));
        assert!(matches!(
            decode_frame(b"not a store frame at all"),
            Err(CorruptKind::BadMagic)
        ));
        // Every possible byte cut is Truncated — the torn-write space.
        for cut in 0..frame.len() {
            assert!(
                matches!(decode_frame(&frame[..cut]), Err(CorruptKind::Truncated)),
                "cut at {cut}"
            );
        }
        // Any single corrupted payload byte is a checksum mismatch.
        let mut flipped = frame.to_vec();
        let i = frame.len() - TRAILER_BYTES - 1;
        flipped[i] ^= 0xff;
        assert!(matches!(
            decode_frame(&flipped),
            Err(CorruptKind::BadChecksum)
        ));
        let mut versioned = frame.to_vec();
        versioned[4] = 9;
        assert!(matches!(
            decode_frame(&versioned),
            Err(CorruptKind::BadVersion(9))
        ));
        let mut kinded = frame.to_vec();
        kinded[6] = 7;
        assert!(matches!(
            decode_frame(&kinded),
            Err(CorruptKind::BadKind(7))
        ));
    }

    #[test]
    fn trace_codec_round_trips_and_rejects_hostile_counts() {
        let trace: Vec<DiscoveryRound> = vec![
            vec![(0, 3, "work".to_string()), (1, 9, "inner".to_string())],
            vec![],
            vec![(2, 4, "f".to_string())],
        ];
        assert_eq!(decode_trace(encode_trace(&trace)).unwrap(), trace);
        let mut hostile = BytesMut::new();
        hostile.put_u64_le(u64::MAX);
        assert!(decode_trace(hostile.freeze()).is_none());
        let mut inner_hostile = BytesMut::new();
        inner_hostile.put_u64_le(1);
        inner_hostile.put_u64_le(u64::MAX);
        assert!(decode_trace(inner_hostile.freeze()).is_none());
        // Trailing garbage is rejected, not silently ignored.
        let mut padded = BytesMut::from(&encode_trace(&trace)[..]);
        padded.put_u8(0);
        assert!(decode_trace(padded.freeze()).is_none());
    }

    #[test]
    fn fault_plan_is_deterministic_per_seed() {
        let a = FaultPlan::seeded(42, 300);
        let b = FaultPlan::seeded(42, 300);
        let c = FaultPlan::seeded(43, 300);
        let fire = |p: &FaultPlan| (0..200).map(|i| p.fault_for(i)).collect::<Vec<_>>();
        assert_eq!(fire(&a), fire(&b));
        assert_ne!(fire(&a), fire(&c), "different seeds, different schedules");
        assert!(
            fire(&a).iter().any(|f| f.is_some()),
            "a 30% plan must fire within 200 ops"
        );
    }

    #[test]
    fn write_read_warm_cycle() {
        let dir = temp_dir("cycle");
        let (store, warm) = DiskStore::open(Arc::new(RealIo), &dir, 0);
        assert!(warm.is_empty());
        store.save_profile("aaaa", Bytes::from_static(b"image-a"));
        store.save_psg_trace("bbbb", encode_trace(&[vec![(0, 1, "f".to_string())]]));
        assert_eq!(store.snapshot().writes, 2);
        assert_eq!(store.snapshot().entries, 2);
        assert_eq!(&store.read_profile("aaaa").unwrap()[..], b"image-a");
        assert!(store.read_profile("missing").is_none());

        // A second store over the same directory warms from disk.
        let (reopened, warm) = DiskStore::open(Arc::new(RealIo), &dir, 0);
        assert_eq!(
            warm,
            vec![("aaaa".to_string(), Bytes::from_static(b"image-a"))]
        );
        assert_eq!(
            decode_trace(reopened.psg_trace("bbbb").unwrap()).unwrap(),
            vec![vec![(0, 1, "f".to_string())]]
        );
        assert_eq!(reopened.snapshot().quarantined, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_and_alien_files_are_quarantined_at_warm_scan() {
        let dir = temp_dir("quarantine");
        {
            let (store, _) = DiskStore::open(Arc::new(RealIo), &dir, 0);
            store.save_profile("good", Bytes::from_static(b"ok"));
        }
        // Torn frame, alien file, orphan tmp, key mismatch.
        let torn = encode_frame(EntryKind::Profile, "torn", b"payload");
        std::fs::write(dir.join("profile-torn.img"), &torn[..torn.len() / 2]).unwrap();
        std::fs::write(dir.join("notes.txt"), b"alien").unwrap();
        std::fs::write(dir.join("profile-x.img.tmp"), b"orphan").unwrap();
        let misfiled = encode_frame(EntryKind::Profile, "real", b"p");
        std::fs::write(dir.join("profile-other.img"), &misfiled).unwrap();

        let (store, warm) = DiskStore::open(Arc::new(RealIo), &dir, 0);
        assert_eq!(warm.len(), 1, "only the good entry survives");
        let snap = store.snapshot();
        assert_eq!(snap.quarantined, 4);
        assert_eq!(snap.entries, 1);
        for bad in [
            "profile-torn.img",
            "notes.txt",
            "profile-x.img.tmp",
            "profile-other.img",
        ] {
            assert!(
                dir.join("quarantine").join(bad).exists(),
                "{bad} must be quarantined"
            );
            assert!(!dir.join(bad).exists(), "{bad} must leave the data dir");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn breaker_trips_to_memory_only_and_recovers_half_open() {
        let dir = temp_dir("breaker");
        // Each failing persist consumes two mutating ops (the faulted
        // tmp write, then the faulted cleanup remove); fault exactly
        // the first three persists' ops so the later probe succeeds.
        let faults: Vec<(u64, FaultKind)> = (0..6).map(|i| (i, FaultKind::Enospc)).collect();
        let io = Arc::new(FaultIo::new(FaultPlan::scripted(faults)));
        let (store, _) = DiskStore::open(io, &dir, 0);
        for i in 0..BREAKER_TRIP {
            store.save_profile(&format!("k{i}"), Bytes::from_static(b"x"));
        }
        let snap = store.snapshot();
        assert_eq!(snap.write_errors, u64::from(BREAKER_TRIP));
        assert_eq!(snap.degraded, 1, "breaker must trip open");

        // While open, writes are skipped, not attempted.
        store.save_profile("skipped", Bytes::from_static(b"x"));
        assert_eq!(store.snapshot().skipped, 1);
        assert!(!dir.join("profile-skipped.img").exists());

        // After the backoff a half-open probe goes through; the plan's
        // faults for early ops no longer match the op counter, so the
        // probe succeeds and closes the breaker.
        std::thread::sleep(BREAKER_BASE_BACKOFF + Duration::from_millis(50));
        store.save_profile("probe", Bytes::from_static(b"x"));
        let snap = store.snapshot();
        assert_eq!(snap.degraded, 0, "successful probe closes the breaker");
        assert_eq!(snap.writes, 1);
        assert!(dir.join("profile-probe.img").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A `StoreIo` that fires a one-shot hook after the sweep's
    /// directory listing, simulating a concurrent write landing between
    /// the listing and the removals.
    struct HookIo {
        inner: RealIo,
        hook: Mutex<Option<Box<dyn FnOnce() + Send>>>,
    }

    impl std::fmt::Debug for HookIo {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("HookIo")
        }
    }

    impl StoreIo for HookIo {
        fn create_dir_all(&self, path: &Path) -> io::Result<()> {
            self.inner.create_dir_all(path)
        }
        fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
            self.inner.write(path, bytes)
        }
        fn sync_file(&self, path: &Path) -> io::Result<()> {
            self.inner.sync_file(path)
        }
        fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
            self.inner.rename(from, to)
        }
        fn sync_dir(&self, path: &Path) -> io::Result<()> {
            self.inner.sync_dir(path)
        }
        fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
            self.inner.read(path)
        }
        fn read_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
            let listing = self.inner.read_dir(path);
            if let Some(hook) = self.hook.lock().unwrap().take() {
                hook();
            }
            listing
        }
        fn remove(&self, path: &Path) -> io::Result<()> {
            self.inner.remove(path)
        }
        fn metadata(&self, path: &Path) -> io::Result<(u64, u64)> {
            self.inner.metadata(path)
        }
    }

    #[test]
    fn sweep_never_deletes_an_entry_written_during_the_sweep() {
        let dir = temp_dir("sweep-race");
        // Two entries, `old` backdated so it sorts as the LRU victim.
        {
            let (setup, _) = DiskStore::open(Arc::new(RealIo), &dir, 0);
            setup.persist(EntryKind::Profile, "old", b"stale bytes");
            setup.persist(EntryKind::Profile, "young", b"newer bytes");
        }
        let backdate = std::time::SystemTime::now() - Duration::from_secs(3600);
        let file = std::fs::File::options()
            .write(true)
            .open(dir.join("profile-old.img"))
            .unwrap();
        file.set_times(std::fs::FileTimes::new().set_modified(backdate))
            .unwrap();

        // Tiny quota: everything is over it, so without the generation
        // guard the sweep would delete every listed file.
        let io = Arc::new(HookIo {
            inner: RealIo,
            hook: Mutex::new(None),
        });
        let (store, _) = DiskStore::open(io.clone() as Arc<dyn StoreIo>, &dir, 1);
        let store = Arc::new(store);

        // The hook fires after the sweep lists the directory and before
        // any removal: `old` is rewritten mid-sweep.
        let racer = Arc::clone(&store);
        *io.hook.lock().unwrap() = Some(Box::new(move || {
            racer
                .write_entry(EntryKind::Profile, "old", b"fresh bytes")
                .unwrap();
        }));

        let report = store.sweep();
        assert!(
            dir.join("profile-old.img").exists(),
            "entry rewritten during the sweep must survive"
        );
        assert_eq!(
            &store.read_profile("old").unwrap()[..],
            b"fresh bytes",
            "the surviving entry is the fresh write"
        );
        // The sweep still made progress on stale entries.
        assert_eq!(report.evicted, 1);
        assert!(!dir.join("profile-young.img").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quota_sweep_evicts_oldest_first() {
        let dir = temp_dir("quota");
        let (store, _) = DiskStore::open(Arc::new(RealIo), &dir, 0);
        store.persist(EntryKind::Profile, "a", &[0u8; 100]);
        store.persist(EntryKind::Profile, "b", &[0u8; 100]);
        store.persist(EntryKind::Profile, "c", &[0u8; 100]);
        let frame_len = store.snapshot().bytes / 3;
        for (name, age) in [
            ("profile-a.img", 300),
            ("profile-b.img", 200),
            ("profile-c.img", 100),
        ] {
            let t = std::time::SystemTime::now() - Duration::from_secs(age);
            std::fs::File::options()
                .write(true)
                .open(dir.join(name))
                .unwrap()
                .set_times(std::fs::FileTimes::new().set_modified(t))
                .unwrap();
        }
        // Re-open with a quota that fits exactly one entry.
        let (store, _) = DiskStore::open(Arc::new(RealIo), &dir, frame_len + 10);
        let report = store.sweep();
        assert_eq!(report.evicted, 2);
        assert!(!dir.join("profile-a.img").exists(), "oldest evicted first");
        assert!(!dir.join("profile-b.img").exists());
        assert!(dir.join("profile-c.img").exists(), "newest survives");
        assert_eq!(store.snapshot().entries, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn writer_thread_flushes_pending_writes_on_stop() {
        let dir = temp_dir("writer");
        let (store, _) = DiskStore::open(Arc::new(RealIo), &dir, 0);
        let store = Arc::new(store);
        let handle = store.start_writer();
        for i in 0..25 {
            store.save_profile(&format!("k{i:02}"), Bytes::from(vec![i as u8; 64]));
        }
        store.stop_writer();
        handle.join().unwrap();
        assert_eq!(store.snapshot().writes, 25, "every queued write flushed");
        assert_eq!(store.list().len(), 25);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
