//! N-way sharded, FIFO-bounded concurrent string-keyed maps.
//!
//! The daemon's hot maps (job registry, per-scale profile cache, refined
//! PSG cache, program index) are all keyed by content addresses and hit
//! from many connection/worker threads at once. A single `Mutex<HashMap>`
//! serializes every one of those touches; sharding by key hash bounds
//! contention to 1/N of the traffic per lock while keeping the plain
//! `std::sync` building blocks.
//!
//! Keys are already uniform FNV-1a content hashes, so the shard index is
//! just another FNV pass reduced mod N.

use crate::hash::StableHasher;
use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

/// Shard index of `key` among `count` shards.
pub fn shard_index(key: &str, count: usize) -> usize {
    let mut h = StableHasher::new();
    h.write_bytes(key.as_bytes());
    (h.finish() % count as u64) as usize
}

struct Shard<V> {
    map: HashMap<String, V>,
    /// Insertion order — the FIFO eviction candidates.
    order: VecDeque<String>,
}

/// What one [`ShardedMap::insert`] did to the shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertOutcome {
    /// The key was new (false = an existing value was replaced).
    pub added: bool,
    /// Old entries evicted to respect the capacity bound.
    pub evicted: usize,
}

/// A sharded map with per-shard FIFO eviction.
///
/// The capacity bound is enforced per shard (`ceil(capacity / shards)`),
/// so the whole map holds at most ~`capacity` entries without any
/// cross-shard coordination on the insert path.
pub struct ShardedMap<V> {
    shards: Box<[Mutex<Shard<V>>]>,
    per_shard_capacity: usize,
}

impl<V> std::fmt::Debug for ShardedMap<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let len: usize = self
            .shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum();
        f.debug_struct("ShardedMap")
            .field("shards", &self.shards.len())
            .field("per_shard_capacity", &self.per_shard_capacity)
            .field("len", &len)
            .finish()
    }
}

impl<V: Clone> ShardedMap<V> {
    /// Map with `shards` shards holding at most ~`capacity` entries in
    /// total (0 = unbounded).
    pub fn new(shards: usize, capacity: usize) -> ShardedMap<V> {
        let shards = shards.max(1);
        let per_shard_capacity = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(shards).max(1)
        };
        ShardedMap {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        order: VecDeque::new(),
                    })
                })
                .collect(),
            per_shard_capacity,
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard<V>> {
        &self.shards[shard_index(key, self.shards.len())]
    }

    /// Clone of the value under `key`, if present.
    pub fn get(&self, key: &str) -> Option<V> {
        self.shard(key).lock().unwrap().map.get(key).cloned()
    }

    /// Insert (or replace) `key`; reports whether the key was new and
    /// how many old entries were evicted to respect the capacity bound,
    /// so callers can maintain lock-free entry counters.
    pub fn insert(&self, key: String, value: V) -> InsertOutcome {
        let mut shard = self.shard(&key).lock().unwrap();
        let added = shard.map.insert(key.clone(), value).is_none();
        if added {
            shard.order.push_back(key);
        }
        let mut evicted = 0;
        while self.per_shard_capacity > 0 && shard.map.len() > self.per_shard_capacity {
            let Some(oldest) = shard.order.pop_front() else {
                break;
            };
            if shard.map.remove(&oldest).is_some() {
                evicted += 1;
            }
        }
        InsertOutcome { added, evicted }
    }

    /// Drop `key`; returns whether it was present.
    pub fn remove(&self, key: &str) -> bool {
        // The stale `order` entry is skipped at eviction time.
        self.shard(key).lock().unwrap().map.remove(key).is_some()
    }

    /// Total entries across every shard (takes each shard lock briefly).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    /// No entries at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let map: ShardedMap<u32> = ShardedMap::new(4, 0);
        assert!(map.is_empty());
        assert_eq!(
            map.insert("a".into(), 1),
            InsertOutcome {
                added: true,
                evicted: 0
            }
        );
        assert!(map.insert("b".into(), 2).added);
        assert_eq!(map.get("a"), Some(1));
        assert_eq!(map.get("missing"), None);
        // Replacement keeps one entry.
        assert_eq!(
            map.insert("a".into(), 3),
            InsertOutcome {
                added: false,
                evicted: 0
            }
        );
        assert_eq!(map.get("a"), Some(3));
        assert_eq!(map.len(), 2);
        assert!(map.remove("a"));
        assert!(!map.remove("a"));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn capacity_evicts_fifo_per_shard() {
        // One shard makes the FIFO order observable.
        let map: ShardedMap<u32> = ShardedMap::new(1, 2);
        map.insert("a".into(), 1);
        map.insert("b".into(), 2);
        assert_eq!(
            map.insert("c".into(), 3),
            InsertOutcome {
                added: true,
                evicted: 1
            }
        );
        assert_eq!(map.get("a"), None, "oldest evicted");
        assert_eq!(map.get("b"), Some(2));
        assert_eq!(map.get("c"), Some(3));
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn keys_spread_over_shards() {
        let map: ShardedMap<usize> = ShardedMap::new(8, 0);
        for i in 0..256 {
            map.insert(format!("key-{i}"), i);
        }
        assert_eq!(map.len(), 256);
        let hit_shards: std::collections::HashSet<usize> = (0..256)
            .map(|i| shard_index(&format!("key-{i}"), 8))
            .collect();
        assert!(hit_shards.len() > 1, "content hashes must spread");
    }

    #[test]
    fn concurrent_access_is_safe() {
        let map: std::sync::Arc<ShardedMap<usize>> = std::sync::Arc::new(ShardedMap::new(8, 64));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let map = std::sync::Arc::clone(&map);
                scope.spawn(move || {
                    for i in 0..128 {
                        map.insert(format!("t{t}-{i}"), i);
                        let _ = map.get(&format!("t{t}-{i}"));
                    }
                });
            }
        });
        assert!(map.len() <= 64 + 8, "capacity respected (per-shard ceil)");
    }
}
