//! Thin wrappers over the Linux readiness primitives the event loop
//! needs: `epoll` for scalable readiness notification and `eventfd` for
//! cross-thread wakeups (worker → event loop, shutdown → acceptor).
//!
//! The workspace vendors every dependency, so these are hand-rolled
//! libc bindings rather than a crate: exactly the four syscalls the
//! reactor uses, each wrapped in a safe RAII type that owns its file
//! descriptor. This is the only module in the workspace that needs
//! `unsafe` (the workspace-level lint stays `deny`; the FFI is confined
//! here and every call site checks the return value and surfaces
//! `io::Error::last_os_error()`).
//!
//! Everything is `#[cfg(target_os = "linux")]`; on other unixes the
//! daemon falls back to the portable thread-per-connection path in
//! [`crate::server`].
#![allow(unsafe_code)]

#[cfg(target_os = "linux")]
pub use linux::{raise_nofile_limit, Epoll, Event, Interest, WakeFd};

#[cfg(target_os = "linux")]
mod linux {
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    // Values from the Linux UAPI headers (stable ABI).
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    /// `struct epoll_event` — packed on x86/x86_64 (the kernel ABI),
    /// naturally aligned elsewhere, exactly as the libc crate defines it.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    /// Which readiness directions a registration asks for. Registrations
    /// are level-triggered and always include error/hangup (the kernel
    /// reports those regardless).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Interest {
        /// Wake when the fd is readable (or the peer half-closed).
        pub readable: bool,
        /// Wake when the fd is writable.
        pub writable: bool,
    }

    impl Interest {
        /// Readable only — the steady state of an idle connection.
        pub const READ: Interest = Interest {
            readable: true,
            writable: false,
        };

        /// Neither direction: the fd stays registered (errors/hangups
        /// still surface) but produces no readiness events — used to
        /// pause reads from a connection parked on a long-poll.
        pub const NONE: Interest = Interest {
            readable: false,
            writable: false,
        };

        fn bits(self) -> u32 {
            let mut bits = EPOLLRDHUP;
            if self.readable {
                bits |= EPOLLIN;
            }
            if self.writable {
                bits |= EPOLLOUT;
            }
            bits
        }
    }

    /// One delivered readiness event.
    #[derive(Debug, Clone, Copy)]
    pub struct Event {
        /// The `token` the fd was registered with.
        pub token: u64,
        /// Readable (includes peer half-close).
        pub readable: bool,
        /// Writable.
        pub writable: bool,
        /// Error or hangup — the connection is dead either way.
        pub broken: bool,
    }

    /// An owned epoll instance.
    #[derive(Debug)]
    pub struct Epoll {
        fd: RawFd,
    }

    impl Epoll {
        /// Fresh epoll instance (close-on-exec).
        pub fn new() -> io::Result<Epoll> {
            // SAFETY: no pointers; the return value is checked.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll { fd })
        }

        fn ctl(&self, op: i32, fd: RawFd, event: Option<&mut EpollEvent>) -> io::Result<()> {
            let ptr = event.map_or(std::ptr::null_mut(), |e| e as *mut EpollEvent);
            // SAFETY: `ptr` is null (DEL) or points at a live EpollEvent;
            // the return value is checked.
            if unsafe { epoll_ctl(self.fd, op, fd, ptr) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Register `fd` under `token` with level-triggered `interest`.
        pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut event = EpollEvent {
                events: interest.bits(),
                data: token,
            };
            self.ctl(EPOLL_CTL_ADD, fd, Some(&mut event))
        }

        /// Change an existing registration's interest set.
        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut event = EpollEvent {
                events: interest.bits(),
                data: token,
            };
            self.ctl(EPOLL_CTL_MOD, fd, Some(&mut event))
        }

        /// Remove a registration (closing the fd does this implicitly;
        /// the explicit form is for pausing the listener).
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        /// Wait for readiness. `timeout` of `None` blocks indefinitely.
        /// Returns the delivered events (at most 256 per call — the
        /// loop drains the rest on its next turn; level-triggered
        /// registrations re-report anything still ready).
        pub fn wait(&self, timeout: Option<Duration>, out: &mut Vec<Event>) -> io::Result<()> {
            out.clear();
            let timeout_ms: i32 = match timeout {
                None => -1,
                // Round *up* so a 100µs deadline does not spin at 0ms.
                Some(t) => t
                    .as_millis()
                    .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
                    .min(i32::MAX as u128) as i32,
            };
            let mut events = [EpollEvent { events: 0, data: 0 }; 256];
            // SAFETY: the buffer outlives the call and its length is
            // passed as maxevents; the return value is checked.
            let n = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for event in &events[..n as usize] {
                out.push(Event {
                    token: event.data,
                    readable: event.events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: event.events & EPOLLOUT != 0,
                    broken: event.events & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: `fd` is owned and closed exactly once.
            unsafe { close(self.fd) };
        }
    }

    /// A nonblocking eventfd: any thread [`wake`](WakeFd::wake)s it, the
    /// event loop sees the fd readable and [`drain`](WakeFd::drain)s it.
    /// One fd replaces both the old shutdown self-connect hack and a
    /// per-waiter condvar signal.
    #[derive(Debug)]
    pub struct WakeFd {
        fd: RawFd,
    }

    impl WakeFd {
        /// Fresh eventfd (nonblocking, close-on-exec).
        pub fn new() -> io::Result<WakeFd> {
            // SAFETY: no pointers; the return value is checked.
            let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(WakeFd { fd })
        }

        /// The raw fd, for epoll registration.
        pub fn as_raw_fd(&self) -> RawFd {
            self.fd
        }

        /// Make the fd readable. Failure modes are benign: `EAGAIN`
        /// means the counter is already saturated — the loop is awake.
        pub fn wake(&self) {
            let one: u64 = 1;
            // SAFETY: writes exactly 8 bytes from a live u64.
            unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
        }

        /// Reset the counter so the level-triggered registration goes
        /// quiet until the next wake.
        pub fn drain(&self) {
            let mut counter: u64 = 0;
            // SAFETY: reads exactly 8 bytes into a live u64.
            unsafe { read(self.fd, (&mut counter as *mut u64).cast(), 8) };
        }
    }

    impl Drop for WakeFd {
        fn drop(&mut self) {
            // SAFETY: `fd` is owned and closed exactly once.
            unsafe { close(self.fd) };
        }
    }

    // SAFETY: both types are plain fd owners; every operation is a
    // thread-safe syscall.
    unsafe impl Send for Epoll {}
    unsafe impl Sync for Epoll {}
    unsafe impl Send for WakeFd {}
    unsafe impl Sync for WakeFd {}

    /// `struct rlimit` (64-bit fields on every Linux target we build).
    #[repr(C)]
    struct Rlimit {
        rlim_cur: u64,
        rlim_max: u64,
    }

    const RLIMIT_NOFILE: i32 = 7;

    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }

    /// Raise `RLIMIT_NOFILE` so this process can hold at least `want`
    /// file descriptors, returning the resulting soft limit. Used by the
    /// wait-fan-out benchmark, where the daemon and its thousands of
    /// long-poll clients share one process (two fds per waiter). Only
    /// privileged processes may raise the hard limit; unprivileged ones
    /// get the soft limit raised to the hard cap and the caller scales
    /// down to whatever comes back.
    pub fn raise_nofile_limit(want: u64) -> io::Result<u64> {
        let mut limit = Rlimit {
            rlim_cur: 0,
            rlim_max: 0,
        };
        // SAFETY: writes into a live struct; return value checked.
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut limit) } != 0 {
            return Err(io::Error::last_os_error());
        }
        if limit.rlim_cur >= want {
            return Ok(limit.rlim_cur);
        }
        let raised = Rlimit {
            rlim_cur: want.max(limit.rlim_cur),
            rlim_max: want.max(limit.rlim_max),
        };
        // SAFETY: passes a live struct by const pointer.
        if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
            return Ok(raised.rlim_cur);
        }
        // Raising the hard limit needs privilege; fall back to lifting
        // the soft limit to the existing hard cap.
        let best_effort = Rlimit {
            rlim_cur: limit.rlim_max,
            rlim_max: limit.rlim_max,
        };
        // SAFETY: same as above.
        if unsafe { setrlimit(RLIMIT_NOFILE, &best_effort) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(best_effort.rlim_cur)
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::io::{Read as _, Write as _};
        use std::net::{TcpListener, TcpStream};
        use std::os::unix::io::AsRawFd;

        #[test]
        fn epoll_reports_readability_and_wakefd_round_trips() {
            let epoll = Epoll::new().unwrap();
            let wake = WakeFd::new().unwrap();
            epoll.add(wake.as_raw_fd(), 7, Interest::READ).unwrap();

            // Nothing ready: a zero timeout returns empty.
            let mut events = Vec::new();
            epoll.wait(Some(Duration::ZERO), &mut events).unwrap();
            assert!(events.is_empty());

            // A wake from another thread surfaces as token 7 readable.
            let waker = std::thread::spawn({
                let fd = wake.as_raw_fd();
                move || {
                    // WakeFd is Sync; a raw-fd clone stands in for the
                    // Arc the daemon uses.
                    let wake = WakeFd { fd };
                    wake.wake();
                    std::mem::forget(wake);
                }
            });
            epoll
                .wait(Some(Duration::from_secs(5)), &mut events)
                .unwrap();
            waker.join().unwrap();
            assert!(events.iter().any(|e| e.token == 7 && e.readable));
            wake.drain();
            epoll.wait(Some(Duration::ZERO), &mut events).unwrap();
            assert!(events.is_empty(), "drained wakefd goes quiet");
        }

        #[test]
        fn socket_interest_modification_pauses_and_resumes_events() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();

            let epoll = Epoll::new().unwrap();
            epoll.add(server.as_raw_fd(), 1, Interest::READ).unwrap();
            client.write_all(b"hi").unwrap();

            let mut events = Vec::new();
            epoll
                .wait(Some(Duration::from_secs(5)), &mut events)
                .unwrap();
            assert!(events.iter().any(|e| e.token == 1 && e.readable));

            // Interest::NONE silences the (level-triggered) readiness…
            epoll.modify(server.as_raw_fd(), 1, Interest::NONE).unwrap();
            epoll.wait(Some(Duration::ZERO), &mut events).unwrap();
            assert!(events.is_empty(), "paused fd must not report");

            // …and restoring it reports the still-buffered bytes again.
            epoll.modify(server.as_raw_fd(), 1, Interest::READ).unwrap();
            epoll
                .wait(Some(Duration::from_secs(5)), &mut events)
                .unwrap();
            assert!(events.iter().any(|e| e.token == 1 && e.readable));
            let mut buf = [0u8; 2];
            (&server).read_exact(&mut buf).unwrap();
            assert_eq!(&buf, b"hi");
        }
    }
}
