//! # scalana-service — the concurrent analysis daemon
//!
//! The paper's workflow decouples `ScalAna-prof` from `ScalAna-detect`
//! so detection runs post-mortem over persisted profiles; this crate
//! adds the serving layer on top: a long-lived daemon that accepts many
//! analysis requests concurrently, reuses work across them, and exposes
//! machine-readable results.
//!
//! Pieces:
//!
//! - [`json`] — hand-rolled JSON value model with canonical (byte-stable)
//!   serialization, plus a parser for requests;
//! - [`jsonify`] — JSON views of [`scalana_core`]'s analysis types,
//!   shared with `scalana analyze --json`;
//! - [`hash`] — process-independent FNV-1a hashing for content addresses;
//! - [`job`] — job specs, their content-addressed keys, and execution
//!   (profiles are persisted via `scalana_profile::store`, the way the
//!   real tool hands images from its profiler to its detector);
//! - [`queue`] / [`cache`] — bounded job queue and the content-addressed
//!   registry/result cache with hit/miss counters;
//! - [`http`] / [`server`] / [`client`] — minimal HTTP/1.1 framing over
//!   `std::net`, the daemon itself, and the blocking client the CLI and
//!   tests use.
//!
//! The `scalana` binary lives here too: the classic `static`/`analyze`/
//! `apps` one-shot commands plus `serve`, `submit`, `status`, `result`,
//! and `shutdown`.
//!
//! ```no_run
//! use scalana_service::{client, Server, ServiceConfig};
//!
//! let server = Server::bind(&ServiceConfig {
//!     addr: "127.0.0.1:0".to_string(),
//!     ..ServiceConfig::default()
//! })
//! .unwrap();
//! let addr = server.local_addr().to_string();
//! std::thread::spawn(move || server.run());
//!
//! let response =
//!     client::request_json(&addr, "POST", "/jobs", r#"{"app":"CG","scales":[2,4]}"#).unwrap();
//! println!("job {}", response.get("job").unwrap());
//! ```

pub mod cache;
pub mod client;
pub mod hash;
pub mod http;
pub mod job;
pub mod json;
pub mod jsonify;
pub mod queue;
pub mod server;

pub use cache::{JobStatus, Registry, StatsSnapshot};
pub use job::{JobProgram, JobSpec};
pub use json::Json;
pub use jsonify::{analysis_to_json, report_to_json};
pub use queue::JobQueue;
pub use server::{Server, ServiceConfig};
