//! # scalana-service — the concurrent analysis daemon
//!
//! The paper's workflow decouples `ScalAna-prof` from `ScalAna-detect`
//! so detection runs post-mortem over persisted profiles; this crate
//! adds the serving layer on top: a long-lived daemon that accepts many
//! analysis requests concurrently, reuses work across them, and exposes
//! machine-readable results.
//!
//! Pieces:
//!
//! - [`scalana_api`] (re-exported as [`api`] and [`json`]) — the
//!   versioned wire contract: `/v1` paths, request/response DTOs,
//!   structured errors, and the canonical JSON layer, shared by the
//!   server, the client, and the CLI;
//! - [`jsonify`] — JSON views of [`scalana_core`]'s analysis types,
//!   shared with `scalana analyze --json`;
//! - [`hash`] — process-independent FNV-1a hashing for content addresses;
//! - [`job`] — job specs, their content-addressed keys (whole-job and
//!   per-scale), and execution (profiles are persisted via
//!   `scalana_profile::store`, the way the real tool hands images from
//!   its profiler to its detector);
//! - [`sharded`] — N-way sharded FIFO-bounded maps, the concurrency
//!   substrate under every cache below;
//! - [`queue`] / [`cache`] — bounded two-lane task queue and the
//!   sharded content-addressed registry/result cache with hit/miss
//!   counters;
//! - [`profile_cache`] / [`exec`] — the per-scale profile image cache,
//!   refined-PSG cache, and program index, plus the per-scale job
//!   execution that fans simulation misses out across the worker pool;
//! - [`store`] — the durable on-disk tier under the caches: crash-safe
//!   content-addressed persistence of profile images and PSG discovery
//!   traces (atomic temp+rename+fsync writes, checksum framing,
//!   quarantine), warm restarts, an injectable [`StoreIo`] with a
//!   deterministic fault plan, a write-failure circuit breaker into
//!   memory-only mode, and an LRU quota sweep;
//! - [`metrics`] — the daemon observing itself: one
//!   [`scalana_obs`]-backed [`ServiceMetrics`] per server (stage
//!   latency histograms, long-poll and simulator counters) behind
//!   `GET /v1/metrics`, with per-job span timelines served from the
//!   registry at `GET /v1/jobs/<id>/trace`;
//! - [`http`] / [`net`] / [`server`] / [`client`] — HTTP/1.1 framing
//!   with keep-alive over `std::net` (both the blocking reader and the
//!   incremental [`http::RequestBuffer`]), the epoll/eventfd readiness
//!   primitives behind the daemon's event loop, the daemon itself, and
//!   the blocking client ([`client::Conn`] reuses one connection per
//!   interaction). On Linux every connection is served by one epoll
//!   readiness loop and long-polls park as registry subscriptions, so
//!   thousands of concurrent waiters cost fds, not threads.
//!
//! The `scalana` binary lives here too: the classic `static`/`analyze`/
//! `apps` one-shot commands plus `serve`, `submit`, `status`, `result`,
//! and `shutdown`.
//!
//! ```no_run
//! use scalana_service::{client, Server, ServiceConfig};
//!
//! let server = Server::bind(&ServiceConfig {
//!     addr: "127.0.0.1:0".to_string(),
//!     ..ServiceConfig::default()
//! })
//! .unwrap();
//! let addr = server.local_addr().to_string();
//! std::thread::spawn(move || server.run());
//!
//! let response =
//!     client::request_json(&addr, "POST", "/jobs", r#"{"app":"CG","scales":[2,4]}"#).unwrap();
//! println!("job {}", response.get("job").unwrap());
//! ```

pub mod cache;
pub mod client;
pub mod exec;
pub mod federation;
pub mod hash;
pub mod http;
pub mod job;
pub mod jsonify;
pub mod metrics;
pub mod net;
pub mod profile_cache;
pub mod queue;
#[cfg(target_os = "linux")]
pub(crate) mod reactor;
pub mod server;
pub mod sharded;
pub mod store;

/// The canonical JSON layer now lives in [`scalana_api`]; re-exported
/// here so `scalana_service::json::{parse, Json}` keeps working.
pub use scalana_api::json;

pub use cache::{JobStatus, Registry, StatsSnapshot};
pub use federation::{Federation, PeerClient, PeerMetrics, Ring};
pub use job::{JobProgram, JobSpec};
pub use json::Json;
pub use jsonify::{analysis_to_json, report_to_json};
pub use metrics::ServiceMetrics;
pub use profile_cache::{ProfileCache, ProgramIndex, PsgCache};
pub use queue::JobQueue;
pub use scalana_api as api;
pub use server::{Server, ServiceConfig};
pub use store::{DiskStore, FaultIo, FaultPlan, RealIo, StoreIo, StoreSnapshot};
