//! The daemon's self-observation surface: one [`ServiceMetrics`] per
//! server instance, owning the [`scalana_obs`] registry plus cached
//! handles and interned ring labels for every instrumented stage.
//!
//! Handles are registered once at server construction; the hot paths
//! (request handling, workers, the simulator hook) only touch the
//! `Arc`-backed atomics behind them. Metrics that already exist as
//! counters elsewhere (the registry/profile/PSG cache tiers, queue
//! depth) are *mirrored* into the `/v1/metrics` exposition at render
//! time from the same atomics `/stats` reads, so the two endpoints can
//! never disagree about a cache tier.

use scalana_obs::{label, Counter, Family, Gauge, Histogram, LabelId, MetricsRegistry};

/// Per-server observability state: registry + pre-registered handles.
#[derive(Debug)]
pub struct ServiceMetrics {
    /// The exposition registry behind `GET /v1/metrics`.
    pub registry: MetricsRegistry,

    /// Requests served (all endpoints, all methods).
    pub http_requests: Counter,
    /// Reading + framing one request off the socket (on a keep-alive
    /// connection this includes idle time between requests).
    pub http_read_ns: Histogram,
    /// Parsing a submission body into a [`crate::job::JobSpec`].
    pub parse_ns: Histogram,
    /// Fresh job registered → claimed by a worker.
    pub queue_wait_ns: Histogram,
    /// Worker claim → terminal transition (whole pipeline).
    pub job_ns: Histogram,
    /// Program resolution + refined-PSG lookup/build + cache probes.
    pub resolve_ns: Histogram,
    /// One per-scale simulation (the dominant stage on a miss).
    pub simulate_ns: Histogram,
    /// `ScalAna-detect` + result-document rendering.
    pub assemble_ns: Histogram,
    /// Routing one request through its handler and rendering the
    /// response body. Long-poll handlers do *not* park in here: the
    /// event loop suspends them as registry subscriptions, so parked
    /// time shows up in `scalana_longpoll_parked`, not this histogram.
    pub render_ns: Histogram,
    /// Writing a response to the socket.
    pub write_ns: Histogram,

    /// Accept-loop failures (EMFILE and friends); each one also arms
    /// the bounded accept backoff.
    pub accept_errors: Counter,
    /// File descriptors registered with the event loop right now
    /// (listener + wake eventfd + connections).
    pub epoll_fds: Gauge,
    /// One readiness round of the event loop: epoll wake-up → all due
    /// reads, handlers, and writes dispatched. Only rounds that carried
    /// events are recorded (idle timer ticks would drown the signal).
    pub round_ns: Histogram,

    /// Long-poll waiters that actually parked (condvar or subscription).
    pub longpoll_parks: Counter,
    /// Parked waiters woken by a terminal transition (vs. timing out).
    pub longpoll_wakes: Counter,
    /// Long-poll subscriptions currently parked in the registry.
    pub longpoll_parked: Gauge,

    /// Peer fetches actually put on the wire by the federation layer.
    pub peer_requests: Counter,
    /// Peer fetches answered with a decodable cache entry.
    pub peer_hits: Counter,
    /// Wall time of one remote peer fetch round trip.
    pub peer_fetch_ns: Histogram,

    /// Simulator runs observed through the hook layer.
    pub sim_runs: Counter,
    /// Simulator events (comp/MPI/dep/indirect) across all runs.
    pub sim_events: Counter,
    /// Wall time of one simulator run.
    pub sim_run_ns: Histogram,
    /// High-water mark of in-flight MPI operations (entered, not yet
    /// exited) — the hook-layer proxy for mailbox-slab occupancy.
    pub sim_inflight_peak: Gauge,

    /// Interned ring labels for the span timeline.
    pub lbl_http: LabelId,
    pub lbl_parse: LabelId,
    pub lbl_resolve: LabelId,
    pub lbl_simulate: LabelId,
    pub lbl_assemble: LabelId,
    pub lbl_render: LabelId,
    pub lbl_write: LabelId,
    pub lbl_evict: LabelId,
}

impl Default for ServiceMetrics {
    fn default() -> ServiceMetrics {
        ServiceMetrics::new()
    }
}

impl ServiceMetrics {
    pub fn new() -> ServiceMetrics {
        let registry = MetricsRegistry::new();
        ServiceMetrics {
            http_requests: registry.counter("scalana_http_requests_total"),
            http_read_ns: registry.histogram("scalana_stage_http_read_ns"),
            parse_ns: registry.histogram("scalana_stage_parse_ns"),
            queue_wait_ns: registry.histogram("scalana_stage_queue_wait_ns"),
            job_ns: registry.histogram("scalana_job_ns"),
            resolve_ns: registry.histogram("scalana_stage_resolve_ns"),
            simulate_ns: registry.histogram("scalana_stage_simulate_ns"),
            assemble_ns: registry.histogram("scalana_stage_assemble_ns"),
            render_ns: registry.histogram("scalana_stage_render_ns"),
            write_ns: registry.histogram("scalana_stage_write_ns"),
            accept_errors: registry.counter("scalana_accept_errors_total"),
            epoll_fds: registry.gauge("scalana_epoll_registered_fds"),
            round_ns: registry.histogram("scalana_readiness_round_ns"),
            longpoll_parks: registry.counter("scalana_longpoll_parks_total"),
            longpoll_wakes: registry.counter("scalana_longpoll_wakes_total"),
            longpoll_parked: registry.gauge("scalana_longpoll_parked"),
            peer_requests: registry.counter("scalana_peer_requests_total"),
            peer_hits: registry.counter("scalana_peer_hits_total"),
            peer_fetch_ns: registry.histogram("scalana_peer_fetch_ns"),
            sim_runs: registry.counter("scalana_sim_runs_total"),
            sim_events: registry.counter("scalana_sim_events_total"),
            sim_run_ns: registry.histogram("scalana_sim_run_ns"),
            sim_inflight_peak: registry.gauge("scalana_sim_inflight_ops_peak"),
            lbl_http: label("http"),
            lbl_parse: label("parse"),
            lbl_resolve: label("resolve"),
            lbl_simulate: label("simulate"),
            lbl_assemble: label("assemble"),
            lbl_render: label("render"),
            lbl_write: label("write"),
            lbl_evict: label("result_evict"),
            registry,
        }
    }

    /// Render the full exposition: every registered metric plus the
    /// caller's mirrored families (cache tiers, gauges), sorted by
    /// name. The output is byte-deterministic for a given set of
    /// values — the golden test pins its shape.
    pub fn render(&self, mirrored: Vec<Family>) -> String {
        self.registry.render(mirrored)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_metrics_render_every_family_in_sorted_order() {
        let metrics = ServiceMetrics::new();
        let text = metrics.render(vec![Family::gauge("scalana_queue_depth", 0)]);
        let families: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("# TYPE "))
            .map(|l| l.split_whitespace().nth(2).unwrap())
            .collect();
        let mut sorted = families.clone();
        sorted.sort();
        assert_eq!(families, sorted, "families must render in sorted order");
        assert!(families.contains(&"scalana_stage_simulate_ns"));
        assert!(families.contains(&"scalana_queue_depth"));
        // Two instances render identically when idle.
        assert_eq!(
            text,
            ServiceMetrics::new().render(vec![Family::gauge("scalana_queue_depth", 0)])
        );
    }
}
