//! Stable content hashing for the job cache.
//!
//! Job identity is *content-addressed*: the key is a hash of everything
//! that determines the analysis output — the program (app name or inline
//! source), the scales, and the full [`ScalAnaConfig`]. Rust's
//! `DefaultHasher` is seeded per process, so this module carries its own
//! fixed-parameter FNV-1a implementation: the same job hashes to the
//! same key across daemon restarts and client machines.

use scalana_core::ScalAnaConfig;
use scalana_mpisim::CoreSpeed;

/// Incremental 64-bit FNV-1a with length-prefixed field framing.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    /// Standard FNV-1a offset basis.
    pub fn new() -> StableHasher {
        StableHasher {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Feed raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Feed one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Feed a 64-bit integer (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feed a `usize` (as 64-bit).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feed a signed 64-bit integer.
    pub fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feed a float by bit pattern (canonicalizing -0.0 and NaN).
    pub fn write_f64(&mut self, v: f64) {
        let canonical = if v == 0.0 {
            0.0f64
        } else if v.is_nan() {
            f64::NAN
        } else {
            v
        };
        self.write_u64(canonical.to_bits());
    }

    /// Feed a bool.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Feed a string, length-prefixed so `("ab","c")` ≠ `("a","bc")`.
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// Final hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// Final hash as 16 lowercase hex digits.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.state)
    }
}

/// Hash every analysis-relevant field of a [`ScalAnaConfig`] in a fixed
/// order. Adding a config field without extending this function keeps the
/// cache *correct* only if the field does not affect results — extend it
/// whenever the pipeline grows a knob.
pub fn hash_config(h: &mut StableHasher, config: &ScalAnaConfig) {
    hash_profile_config(h, config);
    // Detection.
    let d = &config.detect;
    h.write_f64(d.abnorm_thd);
    hash_aggregation(h, &d.aggregation);
    h.write_usize(d.top_k);
    h.write_f64(d.min_time_fraction);
    h.write_f64(d.slope_threshold);
    h.write_f64(d.wait_prune);
    h.write_usize(d.max_path_len);
}

/// Hash only the fields that influence a *collected profile*: PSG
/// options, profiler knobs, the machine model, and program-parameter
/// overrides — everything of [`hash_config`] except detection, which
/// runs post-mortem over already-collected profiles. This is the config
/// part of the per-scale profile-cache key: two jobs that differ only in
/// detection knobs share every cached profile.
pub fn hash_profile_config(h: &mut StableHasher, config: &ScalAnaConfig) {
    // PSG options.
    h.write_u64(u64::from(config.psg.max_loop_depth));
    h.write_bool(config.psg.contract);
    // Profiler.
    let p = &config.profiler;
    h.write_f64(p.sampling_hz);
    h.write_f64(p.sample_cost);
    h.write_f64(p.mpi_event_cost);
    h.write_f64(p.comm_record_cost);
    h.write_f64(p.comm_check_probability);
    h.write_bool(p.graph_compression);
    h.write_bool(p.exact_attribution);
    h.write_u64(p.seed);
    // Machine model.
    let m = &config.machine;
    h.write_f64(m.freq_hz);
    match &m.core_speed {
        CoreSpeed::Uniform => h.write_u8(0),
        CoreSpeed::PerRank(factors) => {
            h.write_u8(1);
            h.write_usize(factors.len());
            for f in factors {
                h.write_f64(*f);
            }
        }
    }
    h.write_f64(m.net_latency);
    h.write_f64(m.net_bandwidth);
    h.write_f64(m.mpi_overhead);
    h.write_u64(m.eager_threshold);
    h.write_f64(m.miss_penalty_cycles);
    h.write_f64(m.noise.amplitude);
    h.write_u64(m.noise.seed);
    // Parameter overrides, in sorted order (HashMap iteration order is
    // process-local).
    let mut params: Vec<(&String, &i64)> = config.params.iter().collect();
    params.sort();
    h.write_usize(params.len());
    for (name, value) in params {
        h.write_str(name);
        h.write_i64(*value);
    }
}

fn hash_aggregation(h: &mut StableHasher, agg: &scalana_detect::Aggregation) {
    use scalana_detect::Aggregation;
    match agg {
        Aggregation::SingleRank(r) => {
            h.write_u8(0);
            h.write_usize(*r);
        }
        Aggregation::Mean => h.write_u8(1),
        Aggregation::Median => h.write_u8(2),
        Aggregation::Max => h.write_u8(3),
        Aggregation::Clustered { k } => {
            h.write_u8(4);
            h.write_usize(*k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vectors() {
        // FNV-1a("") = offset basis; FNV-1a("a") = 0xaf63dc4c8601ec8c.
        assert_eq!(StableHasher::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = StableHasher::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn field_framing_distinguishes_splits() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn config_hash_is_stable_and_sensitive() {
        let base = ScalAnaConfig::default();
        let hash = |c: &ScalAnaConfig| {
            let mut h = StableHasher::new();
            hash_config(&mut h, c);
            h.finish()
        };
        assert_eq!(hash(&base), hash(&base.clone()));

        let mut tweaked = base.clone();
        tweaked.detect.abnorm_thd += 0.1;
        assert_ne!(hash(&base), hash(&tweaked));

        let mut with_param = base.clone();
        with_param.params.insert("N".to_string(), 7);
        assert_ne!(hash(&base), hash(&with_param));

        // Param insertion order must not matter.
        let mut ab = base.clone();
        ab.params.insert("A".to_string(), 1);
        ab.params.insert("B".to_string(), 2);
        let mut ba = base.clone();
        ba.params.insert("B".to_string(), 2);
        ba.params.insert("A".to_string(), 1);
        assert_eq!(hash(&ab), hash(&ba));
    }
}
