//! The daemon's epoll readiness loop (Linux).
//!
//! One thread serves every connection: sockets are nonblocking, reads
//! feed the incremental [`RequestBuffer`] (same head/body budgets and
//! error strings as the blocking reader), routing happens inline, and
//! responses are batched into a per-connection output buffer that is
//! flushed once per readiness round. The change that motivates all of
//! this is how long-polls wait: `GET /v1/jobs/<id>/wait` (and both
//! sides of `POST /v1/diff`) park as registry *subscriptions*
//! ([`Registry::subscribe`]) — a completing worker pushes the
//! connection's token onto the loop's ready list and signals an
//! eventfd, and the loop writes the response on its next round. A
//! parked waiter therefore costs one fd plus a small state machine,
//! not an OS thread, which is what lets one daemon hold tens of
//! thousands of concurrent waiters without starving new submissions
//! (the old thread-per-connection cap was 256).
//!
//! Deliberate properties, pinned by `tests/keepalive.rs`,
//! `tests/errors.rs`, and `tests/eventloop.rs`:
//!
//! - wire behavior is byte-identical to the threaded path (same
//!   [`route`], same renderers, same error strings);
//! - pipelined requests answer strictly in order; a parked long-poll
//!   blocks later requests *on that connection only*;
//! - overload shedding drains a bounded request head before writing
//!   the `503`, so the client reads a structured error instead of a
//!   kernel RST over its unread bytes;
//! - transient accept failures (EMFILE) pause the listener with
//!   bounded backoff instead of busy-looping;
//! - `POST /v1/shutdown` wakes the loop through the eventfd, so an
//!   otherwise idle daemon exits immediately.

use crate::cache::{JobStatus, SubscribeOutcome, WaitOutcome, WaitWaker};
use crate::http::{render_response_into, RequestBuffer, MAX_BODY, MAX_HEAD};
use crate::net::{Epoll, Event, Interest, WakeFd};
use crate::server::{
    self, diff_side, malformed_response, render_diff, shed_response, wait_outcome_response, Action,
    Response, Routed, State,
};
use scalana_obs as obs;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Epoll token of the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// Epoll token of the wake eventfd.
const TOKEN_WAKE: u64 = 1;
/// First connection token (monotonic, never reused).
const TOKEN_FIRST_CONN: u64 = 2;

// Idle keep-alive connections are closed after `State::idle_timeout`
// (`--idle-timeout`, default 30 s) without traffic — the same budget
// the blocking path enforced via its socket read timeout. Parked
// long-polls are exempt (their wait deadline bounds them instead).
/// How often the idle sweep runs.
const IDLE_SWEEP_EVERY: Duration = Duration::from_secs(1);

/// Connections admitted *beyond* `max_connections` purely to be shed
/// politely (drain + `503`). Beyond these, new sockets are dropped
/// outright — under that much pressure the polite answer is itself a
/// resource.
const SHED_SLOTS: usize = 64;
/// How long a shed connection gets to finish sending its request
/// before the `503` is written regardless.
const SHED_DRAIN_TIMEOUT: Duration = Duration::from_secs(2);

/// Stop reading from a connection once this much unparsed input is
/// buffered (enough for any legal request plus pipeline slack); the
/// kernel socket buffer takes over as backpressure, exactly as it did
/// for the blocking reader.
const READ_BUFFER_CAP: usize = MAX_HEAD + MAX_BODY + (16 << 10);
/// Stop reading new requests while this much output is waiting to
/// flush — a slow reader must not grow the daemon's buffers without
/// bound.
const OUT_SOFT_CAP: usize = 256 << 10;

/// Accept-error backoff bounds (doubles from min to max, resets on the
/// next successful accept).
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(10);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(1280);

/// The [`WaitWaker`] workers call at terminal transitions: push the
/// parked connection's token, signal the eventfd. Called with a
/// registry shard lock held, so it must stay this small.
#[derive(Debug)]
struct LoopWaker {
    ready: Mutex<Vec<u64>>,
    wake: Arc<WakeFd>,
}

impl WaitWaker for LoopWaker {
    fn wake(&self, token: u64) {
        self.ready.lock().unwrap().push(token);
        self.wake.wake();
    }
}

impl LoopWaker {
    fn take_ready(&self) -> Vec<u64> {
        std::mem::take(&mut *self.ready.lock().unwrap())
    }
}

/// What a connection is parked on, if anything.
enum Wait {
    /// `GET /v1/jobs/<id>/wait`.
    Long {
        key: String,
        deadline: Instant,
        keep_alive: bool,
    },
    /// `POST /v1/diff` — resolved when *both* sides settle.
    Diff {
        a: String,
        b: String,
        deadline: Instant,
        keep_alive: bool,
    },
}

impl Wait {
    fn deadline(&self) -> Instant {
        match self {
            Wait::Long { deadline, .. } | Wait::Diff { deadline, .. } => *deadline,
        }
    }
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    parser: RequestBuffer,
    /// Rendered-but-unflushed response bytes.
    out: Vec<u8>,
    out_pos: usize,
    wait: Option<Wait>,
    /// `Some(deadline)` — admitted over the cap purely to be shed.
    shed: Option<Instant>,
    /// Interest currently registered with epoll (MOD only on change,
    /// or level-triggered readiness would spin while parked).
    interest: Interest,
    last_activity: Instant,
    /// `obs` stamp when the first byte of the next request arrived.
    read_started: Option<u64>,
    close_after_flush: bool,
    eof: bool,
    dead: bool,
}

struct Reactor<'a> {
    state: &'a Arc<State>,
    epoll: Epoll,
    waker: Arc<LoopWaker>,
    listener: TcpListener,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Connections currently served (excludes shed slots).
    live: usize,
    /// Shed slots currently draining.
    shedding: usize,
    /// Wait and shed deadlines, lazily validated on pop (stale entries
    /// from an earlier wait on the same connection are skipped).
    deadlines: BinaryHeap<Reverse<(Instant, u64)>>,
    next_sweep: Instant,
    /// While `Some`, the listener is deregistered after an accept error
    /// and resumes at the instant.
    accept_resume: Option<Instant>,
    accept_backoff: Duration,
}

/// Serve connections on `listener` until shutdown. Entry point used by
/// [`crate::server::Server::run`] on Linux.
pub(crate) fn serve(listener: TcpListener, state: &Arc<State>) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    let wake = Arc::new(WakeFd::new()?);
    // Install the wake handle before serving so `trigger_shutdown` can
    // interrupt an idle `epoll_wait` (the throwaway-connection fallback
    // covers the sliver of time before this line).
    let _ = state.wake.set(Arc::clone(&wake));
    epoll.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
    epoll.add(wake.as_raw_fd(), TOKEN_WAKE, Interest::READ)?;
    let waker = Arc::new(LoopWaker {
        ready: Mutex::new(Vec::new()),
        wake,
    });

    let mut reactor = Reactor {
        state,
        epoll,
        waker,
        listener,
        conns: HashMap::new(),
        next_token: TOKEN_FIRST_CONN,
        live: 0,
        shedding: 0,
        deadlines: BinaryHeap::new(),
        next_sweep: Instant::now() + IDLE_SWEEP_EVERY,
        accept_resume: None,
        accept_backoff: ACCEPT_BACKOFF_MIN,
    };

    let mut events: Vec<Event> = Vec::new();
    while !state.shutdown.load(Ordering::SeqCst) {
        let timeout = reactor.next_timeout();
        reactor.epoll.wait(Some(timeout), &mut events)?;
        let round_started = obs::now_ns();

        let mut accept_ready = false;
        for event in events.clone() {
            match event.token {
                TOKEN_LISTENER => accept_ready = true,
                TOKEN_WAKE => reactor.waker.wake.drain(),
                _ => reactor.conn_event(event),
            }
        }
        for token in reactor.waker.take_ready() {
            reactor.resolve_wait(token, false);
        }
        if accept_ready && reactor.accept_resume.is_none() {
            reactor.accept_all();
        }
        reactor.fire_timers(Instant::now());

        if !events.is_empty() {
            state
                .metrics
                .round_ns
                .record(obs::now_ns().saturating_sub(round_started));
        }
        reactor.publish_gauges();
    }
    reactor.drain_on_shutdown();
    Ok(())
}

impl Reactor<'_> {
    /// How long the next `epoll_wait` may sleep: until the nearest
    /// deadline (wait timeout, shed drain, accept resume, idle sweep).
    fn next_timeout(&self) -> Duration {
        let mut nearest = self.next_sweep;
        if let Some(Reverse((when, _))) = self.deadlines.peek() {
            nearest = nearest.min(*when);
        }
        if let Some(resume) = self.accept_resume {
            nearest = nearest.min(resume);
        }
        nearest.saturating_duration_since(Instant::now())
    }

    fn publish_gauges(&self) {
        self.state.connections.store(self.live, Ordering::SeqCst);
        self.state
            .metrics
            .epoll_fds
            .set(2 + self.conns.len() as u64);
    }

    // -- accepting -------------------------------------------------------

    fn accept_all(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.accept_backoff = ACCEPT_BACKOFF_MIN;
                    self.register(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::ConnectionAborted | io::ErrorKind::Interrupted
                    ) =>
                {
                    continue;
                }
                Err(_) => {
                    // EMFILE/ENFILE and friends: with a level-triggered
                    // listener registration this would re-fire every
                    // round — a 100% CPU busy-loop. Deregister and
                    // retry after a bounded, growing backoff.
                    self.state.metrics.accept_errors.inc();
                    let _ = self.epoll.delete(self.listener.as_raw_fd());
                    self.accept_resume = Some(Instant::now() + self.accept_backoff);
                    self.accept_backoff = (self.accept_backoff * 2).min(ACCEPT_BACKOFF_MAX);
                    break;
                }
            }
        }
    }

    fn resume_accepting(&mut self) {
        self.accept_resume = None;
        if self
            .epoll
            .add(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
            .is_err()
        {
            // Could not re-register (fd pressure again): retry later
            // rather than going deaf forever.
            self.accept_resume = Some(Instant::now() + self.accept_backoff);
            self.accept_backoff = (self.accept_backoff * 2).min(ACCEPT_BACKOFF_MAX);
            return;
        }
        self.accept_all();
    }

    fn register(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        // Keep-alive exchanges are small request/response pairs; Nagle
        // batching would add delayed-ACK latency to every one of them.
        let _ = stream.set_nodelay(true);
        let shed = if self.live >= self.state.max_connections {
            if self.shedding >= SHED_SLOTS {
                // Too overloaded even to shed politely.
                return;
            }
            Some(Instant::now() + SHED_DRAIN_TIMEOUT)
        } else {
            None
        };
        let token = self.next_token;
        self.next_token += 1;
        if self
            .epoll
            .add(stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            return;
        }
        if let Some(deadline) = shed {
            self.shedding += 1;
            self.deadlines.push(Reverse((deadline, token)));
        } else {
            self.live += 1;
        }
        self.conns.insert(
            token,
            Conn {
                stream,
                parser: RequestBuffer::new(),
                out: Vec::new(),
                out_pos: 0,
                wait: None,
                shed,
                interest: Interest::READ,
                last_activity: Instant::now(),
                read_started: None,
                close_after_flush: false,
                eof: false,
                dead: false,
            },
        );
    }

    // -- per-connection events -------------------------------------------

    fn conn_event(&mut self, event: Event) {
        let token = event.token;
        if event.broken {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.dead = true;
            }
        } else if event.readable {
            self.read_some(token);
        }
        self.advance(token);
    }

    /// Drain the socket into the parser until `WouldBlock`, EOF, or the
    /// buffer cap.
    fn read_some(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.last_activity = Instant::now();
        let started = obs::now_ns();
        let mut buf = [0u8; 16 * 1024];
        while conn.parser.buffered() <= READ_BUFFER_CAP {
            match (&conn.stream).read(&mut buf) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    if conn.read_started.is_none() {
                        conn.read_started = Some(started);
                    }
                    conn.parser.feed(&buf[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
    }

    /// Drive a connection as far as it can go right now: parse and
    /// route buffered requests (unless parked), flush output, update
    /// epoll interest, close when finished.
    fn advance(&mut self, token: u64) {
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        if conn.dead {
            self.close(token);
            return;
        }
        if conn.shed.is_some() {
            self.advance_shed(token, false);
        } else {
            self.process_requests(token);
        }
        self.flush(token);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.dead {
            self.close(token);
            return;
        }
        let flushed = conn.out_pos >= conn.out.len();
        if flushed && conn.close_after_flush {
            self.close(token);
            return;
        }
        // A clean EOF with nothing buffered, parked, or pending is the
        // normal end of a keep-alive connection. EOF mid-request is
        // protocol garbage; EOF behind a parked wait closes after the
        // wait resolves (close_after_flush is set at resolution).
        if conn.eof && conn.wait.is_none() && !conn.close_after_flush {
            if conn.parser.is_empty() {
                if flushed {
                    self.close(token);
                    return;
                }
                conn.close_after_flush = true;
            } else {
                let response = malformed_response(&io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-request",
                ));
                push_response(conn, &response, false);
                conn.close_after_flush = true;
                self.flush(token);
                let Some(conn) = self.conns.get(&token) else {
                    return;
                };
                if conn.out_pos >= conn.out.len() {
                    self.close(token);
                    return;
                }
            }
        }
        self.update_interest(token);
    }

    /// Parse and route every complete buffered request, in order,
    /// stopping at a parked wait (strict per-connection ordering) or a
    /// connection-fatal condition.
    fn process_requests(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.wait.is_some() || conn.close_after_flush || conn.dead {
                return;
            }
            let request = match conn.parser.try_next() {
                Ok(Some(request)) => request,
                Ok(None) => return,
                Err(e) => {
                    let response = malformed_response(&e);
                    push_response(conn, &response, false);
                    conn.close_after_flush = true;
                    return;
                }
            };
            let now = obs::now_ns();
            self.state
                .metrics
                .http_read_ns
                .record(now.saturating_sub(conn.read_started.take().unwrap_or(now)));
            self.state.metrics.http_requests.inc();

            let route_guard =
                obs::span_timed(self.state.metrics.lbl_render, &self.state.metrics.render_ns);
            let (routed, action) = server::route(&request, self.state);
            drop(route_guard);

            let keep_alive = request.keep_alive
                && action != Action::Shutdown
                && !self.state.shutdown.load(Ordering::SeqCst);
            let conn = self.conns.get_mut(&token).expect("conn exists");
            match routed {
                Routed::Done(response) => {
                    push_response(conn, &response, keep_alive);
                    if !keep_alive {
                        conn.close_after_flush = true;
                    }
                }
                Routed::Wait { key, timeout } => {
                    let waker: Arc<dyn WaitWaker> = self.waker.clone();
                    match self.state.registry.subscribe(&key, token, waker) {
                        SubscribeOutcome::Unknown => {
                            let response = wait_outcome_response(WaitOutcome::Unknown);
                            push_response(conn, &response, keep_alive);
                            if !keep_alive {
                                conn.close_after_flush = true;
                            }
                        }
                        SubscribeOutcome::Terminal(view) => {
                            let response = wait_outcome_response(WaitOutcome::Terminal(view));
                            push_response(conn, &response, keep_alive);
                            if !keep_alive {
                                conn.close_after_flush = true;
                            }
                        }
                        SubscribeOutcome::Parked => {
                            let deadline = Instant::now() + timeout;
                            conn.wait = Some(Wait::Long {
                                key,
                                deadline,
                                keep_alive: request.keep_alive,
                            });
                            self.deadlines.push(Reverse((deadline, token)));
                        }
                    }
                }
                Routed::Diff { a, b } => {
                    let deadline = Instant::now() + server::DIFF_WAIT;
                    // Subscribe to both sides; either may already be
                    // settled (terminal, or evicted → Unknown), which
                    // try_finish_diff resolves inline below.
                    let _ = self.state.registry.subscribe(
                        &a,
                        token,
                        self.waker.clone() as Arc<dyn WaitWaker>,
                    );
                    let _ = self.state.registry.subscribe(
                        &b,
                        token,
                        self.waker.clone() as Arc<dyn WaitWaker>,
                    );
                    let conn = self.conns.get_mut(&token).expect("conn exists");
                    conn.wait = Some(Wait::Diff {
                        a,
                        b,
                        deadline,
                        keep_alive: request.keep_alive,
                    });
                    self.deadlines.push(Reverse((deadline, token)));
                    self.try_finish_diff(token, false);
                }
            }
            if action == Action::Shutdown {
                self.state.trigger_shutdown();
            }
        }
    }

    /// A shed connection: drain a bounded head so the peer's request
    /// bytes are consumed (writing the 503 over unread bytes makes the
    /// kernel RST the connection and the client never sees the
    /// structured error), then answer and close.
    fn advance_shed(&mut self, token: u64, deadline_hit: bool) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.close_after_flush {
            return;
        }
        let drained = match conn.parser.try_next() {
            // One complete request arrived — its bytes are consumed.
            Ok(Some(_)) => true,
            // Still incomplete: keep draining until EOF, the budget,
            // or the drain deadline.
            Ok(None) => conn.eof || conn.parser.buffered() > MAX_HEAD,
            // Oversized or malformed: it gets the 503 all the same
            // (admission, not parsing, is what failed here).
            Err(_) => true,
        };
        if drained || deadline_hit {
            let response = shed_response();
            push_response(conn, &response, false);
            conn.close_after_flush = true;
        }
    }

    /// A parked wait became ready (worker wake), timed out, or is being
    /// re-checked. `timed_out` answers with the still-pending status.
    fn resolve_wait(&mut self, token: u64, timed_out: bool) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match &conn.wait {
            None => (),
            Some(Wait::Long {
                key, keep_alive, ..
            }) => {
                let outcome = match self.state.registry.status(key) {
                    None => WaitOutcome::Unknown,
                    Some(view) if matches!(view.status, JobStatus::Done | JobStatus::Failed) => {
                        WaitOutcome::Terminal(view)
                    }
                    Some(view) => {
                        if !timed_out {
                            // Spurious (stale ready token after an
                            // earlier resolution): stay parked.
                            return;
                        }
                        WaitOutcome::Pending(view)
                    }
                };
                let key = key.clone();
                let keep_alive = *keep_alive;
                if timed_out {
                    // Gave up before the wake: withdraw the
                    // subscription (a concurrent wake is harmless — the
                    // stale token resolves to no parked wait).
                    let _ = self.state.registry.unsubscribe(&key, token);
                }
                let keep_alive = keep_alive && !self.state.shutdown.load(Ordering::SeqCst);
                let response = wait_outcome_response(outcome);
                let conn = self.conns.get_mut(&token).expect("conn exists");
                conn.wait = None;
                conn.last_activity = Instant::now();
                push_response(conn, &response, keep_alive);
                if !keep_alive {
                    conn.close_after_flush = true;
                }
                // Pipelined requests buffered behind the wait resume
                // now — nothing will re-trigger epoll for them.
                self.advance(token);
            }
            // Not a match guard: the guard would need `&mut self`
            // while the scrutinee still borrows `self.conns`.
            #[allow(clippy::collapsible_match)]
            Some(Wait::Diff { .. }) => {
                if self.try_finish_diff(token, timed_out) {
                    self.advance(token);
                }
            }
        }
    }

    /// Resolve a parked diff if both sides have settled (terminal or
    /// evicted; on `timed_out`, still-pending sides settle as
    /// `Pending`). Returns whether the response was produced.
    fn try_finish_diff(&mut self, token: u64, timed_out: bool) -> bool {
        let Some(conn) = self.conns.get(&token) else {
            return false;
        };
        let Some(Wait::Diff {
            a, b, keep_alive, ..
        }) = &conn.wait
        else {
            return false;
        };
        let settle = |key: &str| -> Option<WaitOutcome> {
            match self.state.registry.status(key) {
                None => Some(WaitOutcome::Unknown),
                Some(view) if matches!(view.status, JobStatus::Done | JobStatus::Failed) => {
                    Some(WaitOutcome::Terminal(view))
                }
                Some(view) if timed_out => Some(WaitOutcome::Pending(view)),
                Some(_) => None,
            }
        };
        let (Some(outcome_a), Some(outcome_b)) = (settle(a), settle(b)) else {
            return false;
        };
        let (a, b, keep_alive) = (a.clone(), b.clone(), *keep_alive);
        let _ = self.state.registry.unsubscribe(&a, token);
        let _ = self.state.registry.unsubscribe(&b, token);
        let response = render_diff(diff_side("a", &a, outcome_a), diff_side("b", &b, outcome_b));
        let keep_alive = keep_alive && !self.state.shutdown.load(Ordering::SeqCst);
        let conn = self.conns.get_mut(&token).expect("conn exists");
        conn.wait = None;
        conn.last_activity = Instant::now();
        push_response(conn, &response, keep_alive);
        if !keep_alive {
            conn.close_after_flush = true;
        }
        true
    }

    // -- output ----------------------------------------------------------

    /// Write as much pending output as the socket accepts.
    fn flush(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.out_pos >= conn.out.len() {
            return;
        }
        let write_guard =
            obs::span_timed(self.state.metrics.lbl_write, &self.state.metrics.write_ns);
        while conn.out_pos < conn.out.len() {
            match (&conn.stream).write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => {
                    conn.out_pos += n;
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        drop(write_guard);
        if conn.out_pos >= conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
        }
    }

    /// Re-register epoll interest when it changed. Readability is
    /// dropped while parked (a level-triggered fd with buffered
    /// pipelined bytes would wake every round for a connection that
    /// cannot make progress) and while buffers are saturated.
    fn update_interest(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let readable = !conn.eof
            && !conn.close_after_flush
            && conn.wait.is_none()
            && conn.parser.buffered() <= READ_BUFFER_CAP
            && conn.out.len() - conn.out_pos <= OUT_SOFT_CAP;
        let desired = Interest {
            readable,
            writable: conn.out_pos < conn.out.len(),
        };
        if desired != conn.interest
            && self
                .epoll
                .modify(conn.stream.as_raw_fd(), token, desired)
                .is_ok()
        {
            conn.interest = desired;
        }
    }

    // -- timers ----------------------------------------------------------

    fn fire_timers(&mut self, now: Instant) {
        if self.accept_resume.is_some_and(|at| at <= now) {
            self.resume_accepting();
        }
        while let Some(Reverse((when, token))) = self.deadlines.peek().copied() {
            if when > now {
                break;
            }
            self.deadlines.pop();
            let Some(conn) = self.conns.get(&token) else {
                continue;
            };
            if let Some(deadline) = conn.shed {
                if deadline <= now {
                    self.advance_shed(token, true);
                    self.flush(token);
                    // Close immediately if flushed; a partial write
                    // finishes via EPOLLOUT.
                    self.advance(token);
                }
                continue;
            }
            // A heap entry from an earlier wait on this connection is
            // stale once the deadline it recorded no longer matches.
            if conn.wait.as_ref().is_some_and(|w| w.deadline() <= now) {
                self.resolve_wait(token, true);
            }
        }
        if now >= self.next_sweep {
            self.next_sweep = now + IDLE_SWEEP_EVERY;
            let idle: Vec<u64> = self
                .conns
                .iter()
                .filter(|(_, conn)| {
                    conn.wait.is_none()
                        && conn.shed.is_none()
                        && now.saturating_duration_since(conn.last_activity)
                            > self.state.idle_timeout
                })
                .map(|(token, _)| *token)
                .collect();
            for token in idle {
                // Silent close, matching the blocking path's read
                // timeout behavior for idle keep-alive connections.
                self.close(token);
            }
        }
    }

    // -- teardown --------------------------------------------------------

    fn close(&mut self, token: u64) {
        let Some(conn) = self.conns.remove(&token) else {
            return;
        };
        if let Some(wait) = &conn.wait {
            match wait {
                Wait::Long { key, .. } => {
                    let _ = self.state.registry.unsubscribe(key, token);
                }
                Wait::Diff { a, b, .. } => {
                    let _ = self.state.registry.unsubscribe(a, token);
                    let _ = self.state.registry.unsubscribe(b, token);
                }
            }
        }
        if conn.shed.is_some() {
            self.shedding -= 1;
        } else {
            self.live -= 1;
        }
        // Dropping the stream closes the fd, which also removes its
        // epoll registration.
    }

    /// Shutdown: answer every parked wait with its current (usually
    /// still-pending) status, flush what can be flushed within a small
    /// budget, and drop everything. Workers drain the already-accepted
    /// queue after this returns.
    fn drain_on_shutdown(mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.resolve_wait(token, true);
        }
        for (_, conn) in self.conns.drain() {
            if conn.shed.is_some() || conn.out_pos >= conn.out.len() {
                continue;
            }
            let _ = conn.stream.set_nonblocking(false);
            let _ = conn.stream.set_write_timeout(Some(Duration::from_secs(1)));
            let _ = (&conn.stream).write_all(&conn.out[conn.out_pos..]);
        }
    }
}

/// Render `response` into the connection's output buffer (one
/// contiguous write per readiness round, same bytes as the blocking
/// writer).
fn push_response(conn: &mut Conn, response: &Response, keep_alive: bool) {
    render_response_into(
        &mut conn.out,
        response.code,
        &response.content_type,
        &response.headers,
        &response.body,
        keep_alive,
    );
}
