//! Per-scale job execution over the worker pool.
//!
//! PR 2's workers executed one *whole job* each: every requested scale
//! simulated inside a single `JobSpec::execute` call, even when another
//! job had already profiled most of those scales. This module breaks a
//! job into its per-scale units so that
//!
//! 1. each requested scale is first resolved against the
//!    content-addressed [`ProfileCache`] and only the misses are
//!    simulated, and
//! 2. the misses are fanned out across the *whole worker pool* as
//!    [`Task::Scale`] items instead of binding one worker per job — a
//!    single large submission saturates every worker, and a job with one
//!    cold scale occupies one.
//!
//! The worker that finishes a job's last outstanding scale assembles the
//! report (`ScalAna-detect`) inline and completes the job; a job whose
//! scales all hit the cache never touches the queue again. Outputs are
//! byte-identical to a cold run: `scalana_core::profile_one_scale` is a
//! pure function of (program, refined PSG, profile config, scale), and
//! cached profiles round-trip losslessly through
//! `scalana_profile::store`.

use crate::cache::Registry;
use crate::federation::Federation;
use crate::job::JobOutput;
use crate::json::Json;
use crate::jsonify::{report_to_json, run_summary_to_json};
use crate::metrics::ServiceMetrics;
use crate::profile_cache::{ProfileCache, PsgCache};
use crate::queue::JobQueue;
use crate::store::{self, DiskStore};
use bytes::Bytes;
use scalana_api::trace::TraceSpan;
use scalana_core::{
    assemble, profile_one_scale_observed, refined_psg_traced, replay_refined_psg, ProfiledRuns,
    ScalAnaConfig,
};
use scalana_graph::Psg;
use scalana_lang::Program;
use scalana_mpisim::{
    CommDepEvent, CompEvent, Hook, IndirectCallEvent, MpiEnterEvent, MpiExitEvent,
};
use scalana_obs as obs;
use scalana_profile::ProfileData;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One unit of worker-pool work.
pub enum Task {
    /// A freshly accepted job: resolve its scales against the profile
    /// cache, then fan the misses out.
    Job(String),
    /// Simulate one scale of an in-flight job.
    Scale {
        /// The job's shared in-flight state.
        work: Arc<JobWork>,
        /// Index into `work.scales`.
        index: usize,
    },
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Task::Job(key) => write!(f, "Task::Job({key})"),
            Task::Scale { work, index } => {
                write!(
                    f,
                    "Task::Scale({}, scale {})",
                    work.key, work.scales[*index]
                )
            }
        }
    }
}

/// Everything task execution touches; the server owns the fields and
/// hands workers this view.
pub struct ExecCtx<'a> {
    /// Job registry / result cache.
    pub registry: &'a Registry,
    /// The worker-pool queue (scale tasks go to its priority lane).
    pub queue: &'a JobQueue<Task>,
    /// Per-scale profile image cache.
    pub profiles: &'a ProfileCache,
    /// Refined-PSG cache.
    pub psgs: &'a PsgCache,
    /// Durable on-disk tier under the caches, when `--store-dir` is
    /// configured: profile images write through to it, per-scale misses
    /// read through it, and PSG misses replay its discovery traces.
    pub store: Option<&'a DiskStore>,
    /// Fleet tier under the store: on a miss in both local tiers the
    /// key's ring owner is consulted before simulating, and fresh
    /// entries are offered back to their owners asynchronously. `None`
    /// on a standalone executor (tests, benches without a server).
    pub federation: Option<&'a Federation>,
    /// Observability handles (stage histograms, simulator counters).
    pub metrics: &'a ServiceMetrics,
}

/// Shared state of one in-flight job, owned jointly by its scale tasks.
pub struct JobWork {
    /// Job key ([`crate::job::JobSpec::key`]).
    pub key: String,
    /// Registry generation of the execution this work belongs to —
    /// echoed to `complete`/`fail` so a late task from this attempt can
    /// never clobber a record a resubmission has since replaced.
    pub generation: u64,
    /// The resolved program.
    pub program: Arc<Program>,
    /// The refined PSG every scale profiles over.
    pub psg: Arc<Psg>,
    /// The resolved config (app machine model substituted).
    pub config: ScalAnaConfig,
    /// Requested scales, ascending.
    pub scales: Vec<usize>,
    /// Per-scale profile-cache keys, parallel to `scales`.
    pub profile_keys: Vec<String>,
    /// Collected per-scale profiles plus their persisted images —
    /// cache hits pre-filled at resolution, fresh runs as they finish.
    slots: Mutex<Vec<Option<(ProfileData, Bytes)>>>,
    /// Scales still outstanding; the worker that decrements it to zero
    /// assembles and completes the job.
    remaining: AtomicUsize,
    /// Set on the first scale failure; later scale tasks skip their
    /// simulation (the job is already Failed).
    failed: AtomicBool,
    /// Execution child spans (`resolve`, per-`scale`, `assemble`),
    /// collected across the workers that touch this job and attached
    /// to the registry record just before the terminal transition.
    /// Offsets are epoch nanoseconds; the registry rebases them.
    trace_spans: Mutex<Vec<TraceSpan>>,
}

impl JobWork {
    fn push_span(&self, span: TraceSpan) {
        self.trace_spans.lock().unwrap().push(span);
    }
}

/// The simulator observer chained after the profiler: counts events,
/// tracks the high-water of in-flight MPI operations (the hook-layer
/// proxy for mailbox-slab occupancy), and times the run — publishing
/// everything to [`ServiceMetrics`] at `on_run_end`. Every callback
/// returns `0.0` virtual cost, so observed runs stay byte-identical
/// to unobserved ones.
struct ObsSimHook<'a> {
    metrics: &'a ServiceMetrics,
    events: u64,
    inflight: u64,
    inflight_peak: u64,
    started: Instant,
}

impl<'a> ObsSimHook<'a> {
    fn new(metrics: &'a ServiceMetrics) -> ObsSimHook<'a> {
        ObsSimHook {
            metrics,
            events: 0,
            inflight: 0,
            inflight_peak: 0,
            started: Instant::now(),
        }
    }
}

impl Hook for ObsSimHook<'_> {
    fn on_run_start(&mut self, _nprocs: usize) {
        self.started = Instant::now();
    }
    fn on_comp(&mut self, _ev: &CompEvent) -> f64 {
        self.events += 1;
        0.0
    }
    fn on_mpi_enter(&mut self, _ev: &MpiEnterEvent) -> f64 {
        self.events += 1;
        self.inflight += 1;
        self.inflight_peak = self.inflight_peak.max(self.inflight);
        0.0
    }
    fn on_mpi_exit(&mut self, _ev: &MpiExitEvent) -> f64 {
        self.events += 1;
        self.inflight = self.inflight.saturating_sub(1);
        0.0
    }
    fn on_comm_dep(&mut self, _ev: &CommDepEvent) -> f64 {
        self.events += 1;
        0.0
    }
    fn on_indirect_call(&mut self, _ev: &IndirectCallEvent) -> f64 {
        self.events += 1;
        0.0
    }
    fn on_run_end(&mut self, _rank_elapsed: &[f64]) {
        self.metrics.sim_runs.inc();
        self.metrics.sim_events.add(self.events);
        self.metrics.sim_inflight_peak.raise(self.inflight_peak);
        self.metrics
            .sim_run_ns
            .record(self.started.elapsed().as_nanos() as u64);
        self.events = 0;
        self.inflight = 0;
        self.inflight_peak = 0;
    }
}

/// One per-scale simulation exactly as a worker runs it: a `simulate`
/// stage span feeding the stage histogram, the `ObsSimHook` observer
/// chained after the profiler, and the panic guard — returning the
/// profile (or the failure message) plus the finished trace span.
///
/// Public so the `obs` bench suite can measure this *production*
/// instrumented path against the stripped
/// [`profile_one_scale`](scalana_core::profile_one_scale) it wraps; the
/// gap between the two is the always-on observability overhead the
/// perfgate bounds.
pub fn profile_one_scale_instrumented(
    metrics: &ServiceMetrics,
    program: &Program,
    psg: &Psg,
    config: &ScalAnaConfig,
    nprocs: usize,
) -> (Result<ProfileData, String>, TraceSpan) {
    let stage = obs::span_timed(metrics.lbl_simulate, &metrics.simulate_ns);
    let result = guarded(|| {
        let mut observer = ObsSimHook::new(metrics);
        profile_one_scale_observed(program, psg, config, nprocs, &mut observer)
            .map_err(|e| e.to_string())
    });
    let span = TraceSpan::new("scale", stage.start_ns(), stage.elapsed_ns())
        .with_tag("nprocs", &nprocs.to_string())
        .with_tag("cache", "miss");
    (result, span)
}

/// Execute one task. Called by the worker loop; never panics outward
/// (pipeline stages over client-supplied programs run under
/// `catch_unwind`, and a panic fails the job, not the worker).
pub fn run_task(ctx: &ExecCtx<'_>, task: Task) {
    match task {
        Task::Job(key) => run_job(ctx, &key),
        Task::Scale { work, index } => run_scale(ctx, &work, index),
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    panic
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| panic.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("unknown panic")
}

/// Run `f` with panics converted into `Err` (client programs drive the
/// parser/simulator/detector; an escaped panic would kill the worker
/// thread for good and strand the record in `Running`).
fn guarded<T>(f: impl FnOnce() -> Result<T, String>) -> Result<T, String> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(panic) => Err(format!("job panicked: {}", panic_message(&panic))),
    }
}

/// Claim a queued job, resolve its scales against the profile cache,
/// and fan out the misses.
fn run_job(ctx: &ExecCtx<'_>, key: &str) {
    let Some((spec, generation)) = ctx.registry.start(key) else {
        return;
    };

    let prepared = guarded(|| {
        let stage = obs::span_timed(ctx.metrics.lbl_resolve, &ctx.metrics.resolve_ns);
        let (program, config) = spec.resolve()?;

        // Refined PSG: program + PSG options + discovery scale. A hit
        // skips ScalAna-static *and* the indirect-call discovery run.
        let psg_key = spec.psg_key(&config);
        let (psg, psg_verdict) = match ctx.psgs.lookup(&psg_key) {
            Some(psg) => (psg, "hit"),
            None => {
                // Warm restart: a persisted discovery trace rebuilds
                // the identical refined PSG with zero simulation. Next
                // tier: the trace's ring owner elsewhere in the fleet —
                // replaying a fetched trace is exact the same way.
                let replayed = ctx
                    .store
                    .and_then(|store| {
                        let trace = store::decode_trace(store.psg_trace(&psg_key)?)?;
                        Some((replay_refined_psg(&program, &config, &trace), "replay"))
                    })
                    .or_else(|| {
                        let federation = ctx.federation?;
                        let trace = store::decode_trace(federation.fetch_psg_trace(&psg_key)?)?;
                        Some((replay_refined_psg(&program, &config, &trace), "peer"))
                    });
                match replayed {
                    Some((psg, verdict)) => {
                        let psg = Arc::new(psg);
                        ctx.psgs.store(psg_key, Arc::clone(&psg));
                        (psg, verdict)
                    }
                    None => {
                        let (psg, trace) =
                            refined_psg_traced(&program, &config, spec.discovery_scale())
                                .map_err(|e| e.to_string())?;
                        let encoded = store::encode_trace(&trace);
                        if let Some(store) = ctx.store {
                            store.save_psg_trace(&psg_key, encoded.clone());
                        }
                        if let Some(federation) = ctx.federation {
                            federation.publish_psg_trace(&psg_key, &encoded);
                        }
                        let psg = Arc::new(psg);
                        ctx.psgs.store(psg_key, Arc::clone(&psg));
                        (psg, "miss")
                    }
                }
            }
        };
        let mut spans = vec![
            TraceSpan::new("resolve", stage.start_ns(), stage.elapsed_ns())
                .with_tag("psg", psg_verdict),
        ];
        drop(stage);

        // Resolve each requested scale; a hit reloads the persisted
        // image (the exact bytes `ScalAna-prof` would leave on disk).
        let profile_keys: Vec<String> = spec
            .scales
            .iter()
            .map(|&nprocs| spec.profile_key(&config, nprocs))
            .collect();
        let mut slots: Vec<Option<(ProfileData, Bytes)>> = Vec::with_capacity(spec.scales.len());
        for (pk, &nprocs) in profile_keys.iter().zip(&spec.scales) {
            let probe_start = obs::now_ns();
            let tier = std::cell::Cell::new("hit");
            let slot = ctx
                .profiles
                .lookup(pk)
                .and_then(|image| {
                    match scalana_profile::store::load(image.clone()) {
                        Ok(data) => Some((data, image)),
                        Err(_) => {
                            // A corrupt image must not poison the job —
                            // drop it and re-simulate the scale.
                            ctx.profiles.invalidate(pk);
                            None
                        }
                    }
                })
                .or_else(|| {
                    // Memory miss: the durable tier may still have the
                    // image (evicted, or written by a previous process
                    // and not warm-loaded). Corrupt frames were already
                    // quarantined inside `read_profile`.
                    let image = ctx.store?.read_profile(pk)?;
                    let data = scalana_profile::store::load(image.clone()).ok()?;
                    ctx.profiles.store(pk.clone(), image.clone());
                    Some((data, image))
                })
                .or_else(|| {
                    // Fleet tier: ask the key's ring owner. A decodable
                    // answer counts as a hit — no simulation ran — so
                    // the recorded miss is redeemed. The image is *not*
                    // admitted to the local cache: the owner already
                    // retains it, and admitting remote keys here would
                    // let a hot fleet working set evict this daemon's
                    // own shard — collapsing the fleet's aggregate
                    // capacity back to one daemon's. Re-reading a hot
                    // remote key costs one local round trip, not a
                    // simulator run. Every failure shape (we own the
                    // key, a dead peer, a bad payload) just falls
                    // through to simulation.
                    let federation = ctx.federation?;
                    let image = federation.fetch_profile(pk)?;
                    let data = scalana_profile::store::load(image.clone()).ok()?;
                    ctx.profiles.redeem_miss();
                    tier.set("peer");
                    Some((data, image))
                });
            if slot.is_some() {
                // Cache-hit scales are answered right here; misses get
                // their (simulating) span in `run_scale`.
                spans.push(
                    TraceSpan::new(
                        "scale",
                        probe_start,
                        obs::now_ns().saturating_sub(probe_start),
                    )
                    .with_tag("nprocs", &nprocs.to_string())
                    .with_tag("cache", tier.get()),
                );
            }
            slots.push(slot);
        }

        Ok((program, config, psg, profile_keys, slots, spans))
    });
    let (program, config, psg, profile_keys, slots, spans) = match prepared {
        Ok(prepared) => prepared,
        Err(error) => {
            ctx.registry.fail(key, generation, error);
            return;
        }
    };

    let misses: Vec<usize> = (0..slots.len()).filter(|&i| slots[i].is_none()).collect();
    let work = Arc::new(JobWork {
        key: key.to_string(),
        generation,
        program: Arc::new(program),
        psg,
        config,
        scales: spec.scales.clone(),
        profile_keys,
        slots: Mutex::new(slots),
        remaining: AtomicUsize::new(misses.len()),
        failed: AtomicBool::new(false),
        trace_spans: Mutex::new(spans),
    });

    match misses.split_first() {
        // Every scale was cached: assemble right here — the queue is
        // never touched again and no second worker wakes up.
        None => assemble_and_complete(ctx, &work),
        Some((&first, rest)) => {
            // Hand the other misses to the pool *before* simulating one
            // inline, so peers start immediately.
            for &index in rest {
                ctx.queue.push_priority(Task::Scale {
                    work: Arc::clone(&work),
                    index,
                });
            }
            run_scale(ctx, &work, first);
        }
    }
}

/// Simulate one scale; the worker that finishes the job's last
/// outstanding scale assembles and completes it.
fn run_scale(ctx: &ExecCtx<'_>, work: &Arc<JobWork>, index: usize) {
    // A sibling scale already failed the job — skip the simulation but
    // still participate in the countdown so the job's state winds down.
    if !work.failed.load(Ordering::Acquire) {
        let nprocs = work.scales[index];
        let (result, span) = profile_one_scale_instrumented(
            ctx.metrics,
            &work.program,
            &work.psg,
            &work.config,
            nprocs,
        );
        work.push_span(span);
        match result {
            Ok(data) => {
                let key = &work.profile_keys[index];
                let image = scalana_profile::store::save(&data);
                // Admission policy: local memory holds the daemon's own
                // ring shard. A key owned elsewhere is written through
                // to its owner instead of admitted here — caching it
                // locally would evict owned entries and collapse the
                // fleet's aggregate capacity toward one daemon's. On a
                // standalone daemon (no federation, or a single-member
                // ring) every key is owned.
                let owned = ctx.federation.is_none_or(|f| f.owns(key));
                if owned {
                    ctx.profiles.store(key.clone(), image.clone());
                }
                if let Some(store) = ctx.store {
                    store.save_profile(key, image.clone());
                }
                // Write-behind to the scale's ring owner, so the next
                // daemon to miss on this key finds it fleet-side.
                if let Some(federation) = ctx.federation {
                    federation.offer_profile(key, &image);
                }
                work.slots.lock().unwrap()[index] = Some((data, image));
            }
            Err(error) => {
                work.failed.store(true, Ordering::Release);
                attach_spans(ctx, work);
                ctx.registry.fail(
                    &work.key,
                    work.generation,
                    format!("scale {nprocs}: {error}"),
                );
            }
        }
    }
    if work.remaining.fetch_sub(1, Ordering::AcqRel) == 1 && !work.failed.load(Ordering::Acquire) {
        assemble_and_complete(ctx, work);
    }
}

/// Hand the job's collected execution spans to the registry record.
/// Must run *before* the terminal transition — the registry refuses
/// attachments once the record leaves `Running`.
fn attach_spans(ctx: &ExecCtx<'_>, work: &Arc<JobWork>) {
    let spans = std::mem::take(&mut *work.trace_spans.lock().unwrap());
    ctx.registry
        .attach_run_spans(&work.key, work.generation, spans);
}

/// `ScalAna-detect` over the collected profiles, then publish the
/// result. Profile images are reused as collected/cached — byte-stable,
/// refcounted, never re-serialized.
///
/// The terminal `complete`/`fail` inside does double duty: it wakes
/// threads blocked on the shard condvar *and* fires any event-loop
/// subscriptions ([`crate::cache::Registry::subscribe`]) parked by
/// long-poll connections, so worker threads never interact with
/// connection state directly.
fn assemble_and_complete(ctx: &ExecCtx<'_>, work: &Arc<JobWork>) {
    let filled = std::mem::take(&mut *work.slots.lock().unwrap());
    let mut profiles = Vec::with_capacity(filled.len());
    let mut images = Vec::with_capacity(filled.len());
    for (slot, &nprocs) in filled.into_iter().zip(&work.scales) {
        let Some((data, image)) = slot else {
            // Unreachable by construction (every miss filled its slot or
            // failed the job); guard against stranding `Running` anyway.
            attach_spans(ctx, work);
            ctx.registry.fail(
                &work.key,
                work.generation,
                format!("scale {nprocs} produced no profile"),
            );
            return;
        };
        profiles.push(data);
        images.push((nprocs, image));
    }

    let stage = obs::span_timed(ctx.metrics.lbl_assemble, &ctx.metrics.assemble_ns);
    let result = guarded(|| {
        let runs = ProfiledRuns {
            psg: Arc::clone(&work.psg),
            scales: work.scales.clone(),
            profiles,
        };
        let analysis = assemble(runs, &work.config);
        Ok(JobOutput {
            report_json: report_to_json(&analysis.report).render(),
            runs_json: Json::Arr(analysis.runs.iter().map(run_summary_to_json).collect()).render(),
            detect_seconds: analysis.detect_seconds,
            profiles: images,
        })
    });
    work.push_span(TraceSpan::new(
        "assemble",
        stage.start_ns(),
        stage.elapsed_ns(),
    ));
    drop(stage);
    attach_spans(ctx, work);
    match result {
        Ok(output) => ctx.registry.complete(&work.key, work.generation, output),
        Err(error) => ctx.registry.fail(&work.key, work.generation, error),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::JobStatus;
    use crate::job::{JobProgram, JobSpec};

    fn ctx_parts() -> (
        Registry,
        JobQueue<Task>,
        ProfileCache,
        PsgCache,
        ServiceMetrics,
    ) {
        (
            Registry::new(),
            JobQueue::new(16),
            ProfileCache::new(0),
            PsgCache::new(0),
            ServiceMetrics::new(),
        )
    }

    fn spec(scales: &[usize], top_k: usize) -> JobSpec {
        let mut config = ScalAnaConfig::default();
        config.detect.top_k = top_k;
        JobSpec {
            program: JobProgram::Source {
                name: "exec.mmpi".to_string(),
                text: "fn main() { for i in 0 .. 3 { comp(cycles = 50_000 / nprocs); \
                       barrier(); } allreduce(bytes = 8); }"
                    .to_string(),
            },
            scales: scales.to_vec(),
            config,
        }
    }

    /// Drain the queue single-threadedly until empty.
    fn drain(ctx: &ExecCtx<'_>) {
        while let Some(task) = ctx.queue.try_pop() {
            run_task(ctx, task);
        }
    }

    fn submit_and_run(ctx: &ExecCtx<'_>, spec: JobSpec) -> String {
        let key = match ctx.registry.submit(spec, |_| true) {
            crate::cache::SubmitOutcome::Fresh(key) => key,
            crate::cache::SubmitOutcome::Existing(view) => return view.key,
            other => panic!("unexpected outcome {other:?}"),
        };
        run_task(ctx, Task::Job(key.clone()));
        drain(ctx);
        key
    }

    #[test]
    fn overlapping_scale_sets_simulate_only_the_new_scale() {
        let (registry, queue, profiles, psgs, metrics) = ctx_parts();
        let ctx = ExecCtx {
            registry: &registry,
            queue: &queue,
            profiles: &profiles,
            psgs: &psgs,
            store: None,
            federation: None,
            metrics: &metrics,
        };

        // Cold job over [2, 4]: both scales miss.
        let key1 = submit_and_run(&ctx, spec(&[2, 4], 3));
        assert_eq!(registry.status(&key1).unwrap().status, JobStatus::Done);
        let stats = profiles.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 2);

        // Overlapping job over [2, 4, 8]: exactly one new simulation.
        let key2 = submit_and_run(&ctx, spec(&[2, 4, 8], 3));
        assert_ne!(key1, key2);
        assert_eq!(registry.status(&key2).unwrap().status, JobStatus::Done);
        let stats = profiles.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.entries, 3);

        // Same scales, different detection knob: all three scales hit —
        // detection does not influence the profile key.
        let key3 = submit_and_run(&ctx, spec(&[2, 4, 8], 1));
        assert_ne!(key2, key3);
        assert_eq!(registry.status(&key3).unwrap().status, JobStatus::Done);
        let stats = profiles.stats();
        assert_eq!(stats.hits, 5);
        assert_eq!(stats.misses, 3, "fully overlapped job simulated nothing");

        // And the fully cached job's report is byte-identical to a cold
        // (direct-execute) run of the same spec.
        let direct = spec(&[2, 4, 8], 1).execute().unwrap();
        let served = registry.status(&key3).unwrap().result.unwrap();
        assert_eq!(served.report_json, direct.report_json);
        assert_eq!(served.runs_json, direct.runs_json);
    }

    #[test]
    fn failing_scale_fails_the_job_without_stranding_it() {
        let (registry, queue, profiles, psgs, metrics) = ctx_parts();
        let ctx = ExecCtx {
            registry: &registry,
            queue: &queue,
            profiles: &profiles,
            psgs: &psgs,
            store: None,
            federation: None,
            metrics: &metrics,
        };
        // Deadlocks at every scale: rank 0 waits on a recv nobody sends.
        let bad = JobSpec {
            program: JobProgram::Source {
                name: "bad.mmpi".to_string(),
                text: "fn main() { if rank == 0 { recv(src = 1, tag = 9); } barrier(); }"
                    .to_string(),
            },
            scales: vec![2, 4],
            config: ScalAnaConfig::default(),
        };
        let key = submit_and_run(&ctx, bad);
        let view = registry.status(&key).unwrap();
        assert_eq!(view.status, JobStatus::Failed);
        assert!(view.error.is_some());
    }
}
