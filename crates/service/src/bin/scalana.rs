//! `scalana` — the command-line front-end (paper §V workflow plus the
//! serving layer).
//!
//! ```text
//! scalana static   <file.mmpi> [--max-loop-depth N] [--no-contract] [--dot]
//! scalana analyze  <file.mmpi> [--scales 4,8,16,32] [--abnorm-thd X] [--top K]
//!                              [--param NAME=V]... [--json]
//! scalana apps     [--list | --run NAME [--scales ...]]
//! scalana serve    [--addr 127.0.0.1:7878] [--workers N] [--queue-capacity N]
//!                  [--store-dir DIR] [--store-quota BYTES]
//!                  [--peer ADDR]... [--self-addr ADDR] [--idle-timeout SECS]
//! scalana submit   (<file.mmpi> | --app NAME | --program-hash HASH) [--addr A]
//!                  [--scales ...] [--abnorm-thd X] [--top K]
//!                  [--param NAME=V]... [--wait]
//! scalana status   [--addr A] [JOB]
//! scalana result   [--addr A] JOB
//! scalana trace    [--addr A] [--json] JOB
//! scalana top      [--addr A] [--raw] [--interval SECS] [--count N]
//! scalana store    (ls [--after NAME] [--limit N] | gc) [--addr A]
//! scalana diff     <a.mmpi> <b.mmpi> [--addr A] [--scales ...] [--scales-b ...]
//! scalana shutdown [--addr A]
//! ```
//!
//! `static` corresponds to `ScalAna-static` (PSG construction + stats),
//! `analyze` chains `ScalAna-prof` and `ScalAna-detect` over the given
//! scales (through [`scalana_core`]'s `AnalysisBuilder`) and renders the
//! `ScalAna-viewer` report with code snippets (or, with `--json`, the
//! machine-readable document the service also serves). `serve` starts
//! the analysis daemon; `submit`/`status`/`result`/`diff` are its
//! client, speaking the `/v1` protocol from [`scalana_api`] and printing
//! the daemon's JSON responses. `submit --wait` and `diff` use the
//! server-side long-poll, so completions are observed at the
//! transition.
//!
//! Every submit response carries a `program_hash`; later submissions of
//! the same program (new scales, new thresholds) can pass `--program-hash
//! HASH` instead of re-sending the source — the daemon resolves it
//! against its program index and answers 404 if it has been evicted.

use scalana_api::{paths, DiffRequest, ProgramRef, SubmitRequest};
use scalana_core::{viewer, Analysis, ScalAnaConfig};
use scalana_graph::{build_psg, PsgOptions};
use scalana_lang::parse_program;
use scalana_service::json::Json;
use scalana_service::{client, jsonify, Server, ServiceConfig};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  scalana static   <file.mmpi> [--max-loop-depth N] [--no-contract] [--dot]
  scalana analyze  <file.mmpi> [--scales 4,8,16,32] [--abnorm-thd X]
                               [--top K] [--param NAME=VALUE]... [--json]
  scalana apps     [--list | --run NAME [--scales 4,8,16,32]]
  scalana serve    [--addr 127.0.0.1:7878] [--workers N] [--queue-capacity N]
                   [--store-dir DIR] [--store-quota BYTES]
                   [--peer ADDR]... [--self-addr ADDR] [--idle-timeout SECS]
  scalana submit   (<file.mmpi> | --app NAME | --program-hash HASH)
                   [--addr ADDR] [--scales ...] [--abnorm-thd X] [--top K]
                   [--param NAME=VALUE]... [--wait]
  scalana status   [--addr ADDR] [JOB]
  scalana result   [--addr ADDR] JOB
  scalana trace    [--addr ADDR] [--json] JOB
  scalana top      [--addr ADDR] [--raw] [--interval SECS] [--count N]
  scalana store    (ls [--after NAME] [--limit N] | gc) [--addr ADDR]
  scalana diff     <a.mmpi> <b.mmpi> [--addr ADDR] [--scales 4,8,16,32]
                   [--scales-b ...]
  scalana shutdown [--addr ADDR]";

const DEFAULT_ADDR: &str = "127.0.0.1:7878";

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("static") => cmd_static(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("apps") => cmd_apps(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("status") => cmd_status(&args[1..]),
        Some("result") => cmd_result(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("store") => cmd_store(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("shutdown") => cmd_shutdown(&args[1..]),
        Some(other) => Err(format!("unknown command `{other}`")),
        None => Err("missing command".to_string()),
    }
}

fn parse_scales(spec: &str) -> Result<Vec<usize>, String> {
    let scales: Result<Vec<usize>, _> = spec.split(',').map(|s| s.trim().parse()).collect();
    let scales = scales.map_err(|e| format!("bad --scales `{spec}`: {e}"))?;
    if scales.is_empty() || scales.windows(2).any(|w| w[0] >= w[1]) {
        return Err("--scales must be a strictly ascending list".to_string());
    }
    if scales[0] == 0 {
        return Err("--scales: process counts must be positive".to_string());
    }
    Ok(scales)
}

fn load_program(path: &str) -> Result<scalana_lang::Program, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_program(path, &source).map_err(|e| e.to_string())
}

fn cmd_static(args: &[String]) -> Result<(), String> {
    let file = args.first().ok_or("static: missing <file.mmpi>")?;
    let mut opts = PsgOptions::default();
    let mut dot = false;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--max-loop-depth" => {
                let v = it.next().ok_or("--max-loop-depth needs a value")?;
                opts.max_loop_depth = v
                    .parse()
                    .map_err(|e| format!("bad --max-loop-depth: {e}"))?;
            }
            "--no-contract" => opts.contract = false,
            "--dot" => dot = true,
            other => return Err(format!("static: unknown flag `{other}`")),
        }
    }
    let program = load_program(file)?;
    let psg = build_psg(&program, &opts);
    println!("{file}: {}", psg.stats);
    println!(
        "contraction reduction {:.0}%, Comp+MPI fraction {:.0}%",
        psg.stats.reduction() * 100.0,
        psg.stats.comp_mpi_fraction() * 100.0
    );
    if dot {
        println!("\n{}", scalana_graph::dot::psg_to_dot(&psg));
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let file = args.first().ok_or("analyze: missing <file.mmpi>")?;
    let mut scales = vec![4, 8, 16, 32];
    let mut config = ScalAnaConfig::default();
    let mut json = false;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scales" => {
                let v = it.next().ok_or("--scales needs a value")?;
                scales = parse_scales(v)?;
            }
            "--abnorm-thd" => {
                let v = it.next().ok_or("--abnorm-thd needs a value")?;
                config.detect.abnorm_thd =
                    v.parse().map_err(|e| format!("bad --abnorm-thd: {e}"))?;
            }
            "--top" => {
                let v = it.next().ok_or("--top needs a value")?;
                config.detect.top_k = v.parse().map_err(|e| format!("bad --top: {e}"))?;
            }
            "--param" => {
                let v = it.next().ok_or("--param needs NAME=VALUE")?;
                let (name, value) = v
                    .split_once('=')
                    .ok_or_else(|| format!("bad --param `{v}`"))?;
                let value: i64 = value
                    .parse()
                    .map_err(|e| format!("bad --param value: {e}"))?;
                config.params.insert(name.to_string(), value);
            }
            "--json" => json = true,
            other => return Err(format!("analyze: unknown flag `{other}`")),
        }
    }
    let program = load_program(file)?;
    let analysis = Analysis::builder(&program)
        .config(config)
        .scales(scales.iter().copied())
        .run()
        .map_err(|e| e.to_string())?;
    if json {
        println!("{}", jsonify::analysis_to_json(&analysis).render());
        return Ok(());
    }
    println!("PSG: {}", analysis.psg.stats);
    for run in &analysis.runs {
        println!(
            "run @ {:>4} ranks: {:.4}s virtual, {} profile bytes, {} dep edges",
            run.nprocs, run.total_time, run.storage_bytes, run.comm_edges
        );
    }
    println!("detection took {:.2} ms\n", analysis.detect_seconds * 1e3);
    print!("{}", render_speedup_table(&analysis.runs));
    println!(
        "{}",
        viewer::render_with_snippets(&program, &analysis.report, 3)
    );
    Ok(())
}

/// Speedup of each run against the smallest scale, with the ideal linear
/// speedup and the resulting parallel efficiency alongside (the math
/// lives in `scalana_detect::summarize`, shared with the scaling report).
fn render_speedup_table(runs: &[scalana_core::RunSummary]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let Some(base) = runs.first() else {
        return out;
    };
    let measurements: Vec<(usize, f64)> = runs.iter().map(|r| (r.nprocs, r.total_time)).collect();
    let summary = scalana_detect::summarize(&measurements);
    writeln!(out, "-- Speedup (baseline {} ranks) --", base.nprocs).unwrap();
    for point in &summary.points {
        let ideal = point.nprocs as f64 / base.nprocs as f64;
        writeln!(
            out,
            "  {:>5} ranks  x{:<8.2} (ideal x{:<8.2} efficiency {:>5.1}%)",
            point.nprocs,
            point.speedup,
            ideal,
            100.0 * point.efficiency
        )
        .unwrap();
    }
    if let Some(serial) = summary.serial_fraction {
        writeln!(
            out,
            "  est. serial fraction {:.1}% (Amdahl)",
            100.0 * serial
        )
        .unwrap();
    }
    out.push('\n');
    out
}

fn cmd_apps(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("--list") | None => {
            for app in scalana_apps::all_apps() {
                println!("{:<6} {}", app.name, app.description);
            }
            Ok(())
        }
        Some("--run") => {
            let name = args.get(1).ok_or("apps --run: missing NAME")?;
            let app = scalana_apps::by_name(name)
                .ok_or_else(|| format!("unknown app `{name}` (see --list)"))?;
            let mut scales = vec![4, 8, 16, 32];
            if let Some(pos) = args.iter().position(|a| a == "--scales") {
                let v = args.get(pos + 1).ok_or("--scales needs a value")?;
                scales = parse_scales(v)?;
            }
            let analysis = Analysis::builder(&app)
                .scales(scales.iter().copied())
                .run()
                .map_err(|e| e.to_string())?;
            println!("{}", analysis.report.render());
            if let Some(expected) = &app.expected_root_cause {
                let verdict = if analysis.report.found_at(expected) {
                    "FOUND"
                } else {
                    "MISSED"
                };
                println!("known root cause {expected}: {verdict}");
            }
            Ok(())
        }
        Some(other) => Err(format!("apps: unknown flag `{other}`")),
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut config = ServiceConfig {
        addr: DEFAULT_ADDR.to_string(),
        ..ServiceConfig::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => {
                config.addr = it.next().ok_or("--addr needs a value")?.clone();
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                config.workers = v.parse().map_err(|e| format!("bad --workers: {e}"))?;
                if config.workers == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
            }
            "--queue-capacity" => {
                let v = it.next().ok_or("--queue-capacity needs a value")?;
                config.queue_capacity = v
                    .parse()
                    .map_err(|e| format!("bad --queue-capacity: {e}"))?;
            }
            "--store-dir" => {
                config.store_dir = Some(it.next().ok_or("--store-dir needs a DIR")?.clone());
            }
            "--store-quota" => {
                let v = it.next().ok_or("--store-quota needs BYTES")?;
                config.store_quota = v.parse().map_err(|e| format!("bad --store-quota: {e}"))?;
            }
            "--peer" => {
                let v = it.next().ok_or("--peer needs an ADDR")?;
                v.parse::<std::net::SocketAddr>()
                    .map_err(|e| format!("bad --peer `{v}`: {e}"))?;
                config.peers.push(v.clone());
            }
            "--self-addr" => {
                let v = it.next().ok_or("--self-addr needs an ADDR")?;
                v.parse::<std::net::SocketAddr>()
                    .map_err(|e| format!("bad --self-addr `{v}`: {e}"))?;
                config.self_addr = Some(v.clone());
            }
            "--idle-timeout" => {
                let v = it.next().ok_or("--idle-timeout needs SECS")?;
                let secs: u64 = v.parse().map_err(|e| format!("bad --idle-timeout: {e}"))?;
                if secs == 0 {
                    return Err("--idle-timeout must be at least 1 second".to_string());
                }
                config.idle_timeout = Duration::from_secs(secs);
            }
            other => return Err(format!("serve: unknown flag `{other}`")),
        }
    }
    if config.store_quota > 0 && config.store_dir.is_none() {
        return Err("--store-quota needs --store-dir".to_string());
    }
    let server = Server::bind(&config).map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    println!(
        "scalana-service listening on {} ({} workers, queue capacity {})",
        server.local_addr(),
        config.workers,
        config.queue_capacity
    );
    if let Some(dir) = &config.store_dir {
        println!(
            "durable store at {dir} (quota {} bytes)",
            config.store_quota
        );
    }
    if !config.peers.is_empty() {
        println!(
            "federated as {} with {} seed peer(s): {}",
            config
                .self_addr
                .clone()
                .unwrap_or_else(|| server.local_addr().to_string()),
            config.peers.len(),
            config.peers.join(", ")
        );
    }
    // The smoke script and tests scrape the address from this line; make
    // sure it is out before the (long-lived) accept loop starts.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run().map_err(|e| format!("server failed: {e}"))
}

/// Split client args into `(addr, rest)`.
fn take_addr(args: &[String]) -> Result<(String, Vec<String>), String> {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut rest = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--addr" {
            addr = it.next().ok_or("--addr needs a value")?.clone();
        } else {
            rest.push(arg.clone());
        }
    }
    Ok((addr, rest))
}

/// Load a program file into a [`ProgramRef::Source`] (the basename
/// becomes the `file:line` prefix in reports).
fn source_ref(path: &str) -> Result<ProgramRef, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let name = std::path::Path::new(path)
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("inline.mmpi");
    Ok(ProgramRef::Source {
        name: name.to_string(),
        text,
    })
}

fn cmd_submit(args: &[String]) -> Result<(), String> {
    let (addr, rest) = take_addr(args)?;
    let mut file: Option<String> = None;
    let mut app: Option<String> = None;
    let mut hash: Option<String> = None;
    let mut scales: Option<Vec<usize>> = None;
    let mut abnorm_thd: Option<f64> = None;
    let mut top: Option<usize> = None;
    let mut params: Vec<(String, i64)> = Vec::new();
    let mut wait = false;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--app" => app = Some(it.next().ok_or("--app needs a NAME")?.clone()),
            "--program-hash" => {
                hash = Some(it.next().ok_or("--program-hash needs a HASH")?.clone());
            }
            "--scales" => {
                let v = it.next().ok_or("--scales needs a value")?;
                scales = Some(parse_scales(v)?);
            }
            "--abnorm-thd" => {
                let v = it.next().ok_or("--abnorm-thd needs a value")?;
                abnorm_thd = Some(v.parse().map_err(|e| format!("bad --abnorm-thd: {e}"))?);
            }
            "--top" => {
                let v = it.next().ok_or("--top needs a value")?;
                top = Some(v.parse().map_err(|e| format!("bad --top: {e}"))?);
            }
            "--param" => {
                let v = it.next().ok_or("--param needs NAME=VALUE")?;
                let (name, value) = v
                    .split_once('=')
                    .ok_or_else(|| format!("bad --param `{v}`"))?;
                let value: i64 = value
                    .parse()
                    .map_err(|e| format!("bad --param value: {e}"))?;
                params.push((name.to_string(), value));
            }
            "--wait" => wait = true,
            other if other.starts_with("--") => {
                return Err(format!("submit: unknown flag `{other}`"));
            }
            path => {
                if file.replace(path.to_string()).is_some() {
                    return Err("submit: more than one <file.mmpi>".to_string());
                }
            }
        }
    }
    let program = match (file, app, hash) {
        (Some(path), None, None) => source_ref(&path)?,
        (None, Some(name), None) => ProgramRef::App(name),
        (None, None, Some(hash)) => ProgramRef::Hash(hash),
        _ => {
            return Err(
                "submit: need exactly one of <file.mmpi>, --app NAME, or --program-hash HASH"
                    .to_string(),
            )
        }
    };
    let request = SubmitRequest {
        program,
        scales,
        abnorm_thd,
        top,
        max_loop_depth: None,
        params,
    };
    let response = client::request_json(&addr, "POST", paths::JOBS, &request.to_json().render())?;
    println!("{}", response.render());
    if wait {
        let key = response
            .get("job")
            .and_then(Json::as_str)
            .ok_or("submit response missing `job`")?;
        let last = client::wait_for_job(&addr, key, Duration::from_secs(600))?;
        println!("{}", last.render());
        if last.get("status").and_then(Json::as_str) == Some("failed") {
            return Err(last
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("job failed")
                .to_string());
        }
    }
    Ok(())
}

/// `scalana diff a.mmpi b.mmpi`: run (or reuse) both analyses server-side
/// and print the structured comparison from `POST /v1/diff`.
fn cmd_diff(args: &[String]) -> Result<(), String> {
    let (addr, rest) = take_addr(args)?;
    let mut files: Vec<String> = Vec::new();
    let mut scales: Option<Vec<usize>> = None;
    let mut scales_b: Option<Vec<usize>> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scales" => {
                let v = it.next().ok_or("--scales needs a value")?;
                scales = Some(parse_scales(v)?);
            }
            "--scales-b" => {
                let v = it.next().ok_or("--scales-b needs a value")?;
                scales_b = Some(parse_scales(v)?);
            }
            other if other.starts_with("--") => {
                return Err(format!("diff: unknown flag `{other}`"));
            }
            path => files.push(path.to_string()),
        }
    }
    let [file_a, file_b] = files.as_slice() else {
        return Err("diff: need exactly two program files <a.mmpi> <b.mmpi>".to_string());
    };
    let side = |path: &str, scales: Option<Vec<usize>>| -> Result<SubmitRequest, String> {
        Ok(SubmitRequest {
            program: source_ref(path)?,
            scales,
            abnorm_thd: None,
            top: None,
            max_loop_depth: None,
            params: Vec::new(),
        })
    };
    let request = DiffRequest {
        a: side(file_a, scales.clone())?,
        b: side(file_b, scales_b.or(scales))?,
    };
    let response = client::request_json(&addr, "POST", paths::DIFF, &request.to_json().render())?;
    println!("{}", response.render());
    Ok(())
}

fn cmd_status(args: &[String]) -> Result<(), String> {
    let (addr, rest) = take_addr(args)?;
    let path = match rest.as_slice() {
        [] => paths::STATS.to_string(),
        [job] => paths::job(job),
        _ => return Err("status: at most one JOB".to_string()),
    };
    let response = client::request_json(&addr, "GET", &path, "")?;
    println!("{}", response.render());
    Ok(())
}

fn cmd_result(args: &[String]) -> Result<(), String> {
    let (addr, rest) = take_addr(args)?;
    let [job] = rest.as_slice() else {
        return Err("result: need exactly one JOB".to_string());
    };
    let response = client::request_json(&addr, "GET", &paths::job_result(job), "")?;
    println!("{}", response.render());
    Ok(())
}

/// `scalana trace JOB`: fetch the job's span timeline from
/// `GET /v1/jobs/<id>/trace` and render it as an indented tree (or, with
/// `--json`, print the wire document verbatim).
fn cmd_trace(args: &[String]) -> Result<(), String> {
    let (addr, rest) = take_addr(args)?;
    let mut json_out = false;
    let mut job: Option<String> = None;
    for arg in &rest {
        match arg.as_str() {
            "--json" => json_out = true,
            other if other.starts_with("--") => {
                return Err(format!("trace: unknown flag `{other}`"));
            }
            key => {
                if job.replace(key.to_string()).is_some() {
                    return Err("trace: need exactly one JOB".to_string());
                }
            }
        }
    }
    let job = job.ok_or("trace: need exactly one JOB")?;
    let response = client::request_json(&addr, "GET", &paths::job_trace(&job), "")?;
    if json_out {
        println!("{}", response.render());
        return Ok(());
    }
    let trace = scalana_api::TraceResponse::from_json(&response)
        .ok_or("trace: server answered a document that is not a trace")?;
    println!(
        "job {}  total {:.3} ms ({} top-level spans)",
        trace.job,
        trace.total_ns as f64 / 1e6,
        trace.spans.len()
    );
    fn render(span: &scalana_api::TraceSpan, depth: usize) {
        let tags: Vec<String> = span.tags.iter().map(|(k, v)| format!("{k}={v}")).collect();
        println!(
            "{:indent$}{:<12} {:>10.3} ms  @ {:>10.3} ms  {}",
            "",
            span.name,
            span.duration_ns as f64 / 1e6,
            span.start_ns as f64 / 1e6,
            tags.join(" "),
            indent = depth * 2
        );
        for child in &span.children {
            render(child, depth + 1);
        }
    }
    for span in &trace.spans {
        render(span, 1);
    }
    Ok(())
}

/// `scalana top`: scrape `GET /v1/metrics`. `--raw` prints the
/// exposition verbatim (one scrape — what scripts pipe into grep);
/// the default renders a compact digest, repeated `--count` times at
/// `--interval`-second cadence.
fn cmd_top(args: &[String]) -> Result<(), String> {
    let (addr, rest) = take_addr(args)?;
    let mut raw = false;
    let mut interval = Duration::from_secs(2);
    let mut count: u32 = 1;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--raw" => raw = true,
            "--interval" => {
                let v = it.next().ok_or("--interval needs SECS")?;
                let secs: u64 = v.parse().map_err(|e| format!("bad --interval: {e}"))?;
                interval = Duration::from_secs(secs.max(1));
            }
            "--count" => {
                let v = it.next().ok_or("--count needs N")?;
                count = v.parse().map_err(|e| format!("bad --count: {e}"))?;
                if count == 0 {
                    return Err("--count must be at least 1".to_string());
                }
            }
            other => return Err(format!("top: unknown flag `{other}`")),
        }
    }
    for round in 0..count {
        if round > 0 {
            std::thread::sleep(interval);
            println!();
        }
        let (code, text) = client::request(&addr, "GET", paths::METRICS, "")?;
        if code != 200 {
            return Err(format!("GET {}: {code} {text}", paths::METRICS));
        }
        if raw {
            print!("{text}");
            continue;
        }
        print_metrics_digest(&text);
    }
    Ok(())
}

/// `scalana store ls|gc`: inspect or sweep the daemon's durable store.
/// `ls` prints one page of `GET /v1/store` (directory totals + a file
/// list capped at 256 entries by default); `--after NAME`/`--limit N`
/// drive the keyset pagination, and a non-null `next_after` in the
/// response is the cursor for the following page. `gc` runs one LRU
/// quota sweep via `POST /v1/store/gc`.
fn cmd_store(args: &[String]) -> Result<(), String> {
    let (addr, rest) = take_addr(args)?;
    let response = match rest.split_first().map(|(sub, flags)| (sub.as_str(), flags)) {
        Some(("ls", flags)) => {
            let mut query: Vec<String> = Vec::new();
            let mut it = flags.iter();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--after" => {
                        let v = it.next().ok_or("--after needs a NAME")?;
                        query.push(format!("after={v}"));
                    }
                    "--limit" => {
                        let v = it.next().ok_or("--limit needs N")?;
                        let n: usize = v.parse().map_err(|e| format!("bad --limit: {e}"))?;
                        query.push(format!("limit={n}"));
                    }
                    other => return Err(format!("store ls: unknown flag `{other}`")),
                }
            }
            let path = if query.is_empty() {
                paths::STORE.to_string()
            } else {
                format!("{}?{}", paths::STORE, query.join("&"))
            };
            client::request_json(&addr, "GET", &path, "")?
        }
        Some(("gc", [])) => client::request_json(&addr, "POST", paths::STORE_GC, "")?,
        _ => return Err("store: need exactly one subcommand, `ls` or `gc`".to_string()),
    };
    println!("{}", response.render());
    Ok(())
}

/// Compact one-screen rendering of the exposition: plain counters and
/// gauges as `name value` lines, summaries as `p50/p99/max/count`.
fn print_metrics_digest(text: &str) {
    let mut values: Vec<(&str, u64)> = Vec::new();
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let Some((name, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(value) = value.parse::<u64>() else {
            continue;
        };
        values.push((name, value));
    }
    let get = |name: &str| values.iter().find(|(n, _)| *n == name).map(|&(_, v)| v);
    let quantiles = |family: &str| {
        let p50 = get(&format!("{family}{{quantile=\"0.5\"}}"));
        let p99 = get(&format!("{family}{{quantile=\"0.99\"}}"));
        let max = get(&format!("{family}_max"));
        let count = get(&format!("{family}_count"));
        (p50, p99, max, count)
    };
    for (label, sample) in [
        ("uptime_ms", "scalana_uptime_ms"),
        ("requests", "scalana_http_requests_total"),
        ("queue_depth", "scalana_queue_depth"),
        ("jobs submitted", "scalana_jobs_submitted_total"),
        ("jobs completed", "scalana_jobs_completed_total"),
        ("jobs failed", "scalana_jobs_failed_total"),
        ("result hits/misses", "scalana_cache_result_hits_total"),
        ("scale hits/misses", "scalana_cache_scale_hits_total"),
        ("psg hits/misses", "scalana_cache_psg_hits_total"),
        ("sim runs", "scalana_sim_runs_total"),
        ("sim events", "scalana_sim_events_total"),
        ("sim inflight peak", "scalana_sim_inflight_ops_peak"),
        ("longpoll parks/wakes", "scalana_longpoll_parks_total"),
    ] {
        let Some(value) = get(sample) else { continue };
        // Paired families render as `hits/misses` on one line.
        let partner = sample
            .strip_suffix("hits_total")
            .map(|prefix| format!("{prefix}misses_total"))
            .or_else(|| {
                sample
                    .strip_suffix("parks_total")
                    .map(|prefix| format!("{prefix}wakes_total"))
            })
            .and_then(|name| get(&name));
        match partner {
            Some(other) => println!("{label:<22} {value}/{other}"),
            None => println!("{label:<22} {value}"),
        }
    }
    println!();
    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>8}",
        "stage (ns)", "p50", "p99", "max", "count"
    );
    for family in [
        "scalana_stage_http_read_ns",
        "scalana_stage_parse_ns",
        "scalana_stage_queue_wait_ns",
        "scalana_stage_resolve_ns",
        "scalana_stage_simulate_ns",
        "scalana_stage_assemble_ns",
        "scalana_stage_render_ns",
        "scalana_stage_write_ns",
        "scalana_job_ns",
        "scalana_sim_run_ns",
    ] {
        let (p50, p99, max, count) = quantiles(family);
        if count.unwrap_or(0) == 0 {
            continue;
        }
        let short = family
            .strip_prefix("scalana_stage_")
            .unwrap_or_else(|| family.strip_prefix("scalana_").unwrap_or(family));
        println!(
            "{short:<28} {:>10} {:>10} {:>10} {:>8}",
            p50.unwrap_or(0),
            p99.unwrap_or(0),
            max.unwrap_or(0),
            count.unwrap_or(0)
        );
    }
}

fn cmd_shutdown(args: &[String]) -> Result<(), String> {
    let (addr, rest) = take_addr(args)?;
    if !rest.is_empty() {
        return Err("shutdown: unexpected arguments".to_string());
    }
    let response = client::request_json(&addr, "POST", paths::SHUTDOWN, "")?;
    println!("{}", response.render());
    Ok(())
}
