//! Bounded multi-producer multi-consumer task queue with a priority
//! lane.
//!
//! Connection handlers push *job* items into the bounded lane; worker
//! threads block on [`pop`] until work or shutdown. The bounded lane is
//! deliberately *non-blocking on push*: when full, the submitter gets
//! [`QueueFull`] and the server answers `503` — backpressure surfaces to
//! clients instead of tying up connection threads.
//!
//! The second, unbounded *priority* lane carries internally generated
//! work: per-scale simulation tasks a worker fans out while executing a
//! job. [`pop`] drains it first, so in-flight jobs finish before new
//! ones start, and — crucially — a worker can always hand scale tasks to
//! its peers without blocking or failing, which makes the fan-out
//! deadlock-free by construction. It stays bounded in practice because
//! only accepted jobs (themselves bounded by the job lane) generate
//! priority items.
//!
//! [`pop`]: JobQueue::pop

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Push rejection: the bounded lane is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

struct Inner<T> {
    items: VecDeque<T>,
    priority: VecDeque<T>,
    shutdown: bool,
}

/// The two-lane queue.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    capacity: usize,
    /// Bounded-lane length, mirrored atomically so `/stats` reads the
    /// queue depth without touching the queue lock.
    depth: AtomicUsize,
}

impl<T> std::fmt::Debug for JobQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobQueue")
            .field("capacity", &self.capacity)
            .field("depth", &self.depth())
            .finish()
    }
}

impl<T> JobQueue<T> {
    /// Queue holding at most `capacity` pending items in the bounded
    /// lane (the priority lane is unbounded).
    pub fn new(capacity: usize) -> JobQueue<T> {
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                priority: VecDeque::new(),
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
            depth: AtomicUsize::new(0),
        }
    }

    /// Enqueue into the bounded lane; fails fast when full or shut down.
    pub fn push(&self, item: T) -> Result<(), QueueFull> {
        let mut inner = self.inner.lock().unwrap();
        if inner.shutdown || inner.items.len() >= self.capacity {
            return Err(QueueFull);
        }
        inner.items.push_back(item);
        self.depth.store(inner.items.len(), Ordering::Relaxed);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueue into the priority lane. Never fails — it is accepted even
    /// after [`shutdown`](JobQueue::shutdown), because priority items
    /// belong to jobs the daemon already acknowledged and graceful
    /// shutdown drains those to completion.
    pub fn push_priority(&self, item: T) {
        let mut inner = self.inner.lock().unwrap();
        inner.priority.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
    }

    /// Block until an item is available (priority lane first); `None`
    /// once shut down and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.priority.pop_front() {
                return Some(item);
            }
            if let Some(item) = inner.items.pop_front() {
                self.depth.store(inner.items.len(), Ordering::Relaxed);
                return Some(item);
            }
            if inner.shutdown {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Non-blocking [`pop`](JobQueue::pop): `None` when both lanes are
    /// empty right now, regardless of shutdown.
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        if let Some(item) = inner.priority.pop_front() {
            return Some(item);
        }
        let item = inner.items.pop_front();
        if item.is_some() {
            self.depth.store(inner.items.len(), Ordering::Relaxed);
        }
        item
    }

    /// Pending bounded-lane items (lock-free; `/stats` reads this on
    /// every request).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Stop accepting bounded-lane pushes and wake every blocked worker.
    /// Already accepted items — both lanes — are still drained.
    pub fn shutdown(&self) {
        self.inner.lock().unwrap().shutdown = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity() {
        let q: JobQueue<String> = JobQueue::new(2);
        q.push("a".into()).unwrap();
        q.push("b".into()).unwrap();
        assert_eq!(q.push("c".into()), Err(QueueFull));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop().as_deref(), Some("a"));
        assert_eq!(q.pop().as_deref(), Some("b"));
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn priority_lane_preempts_and_survives_shutdown() {
        let q: JobQueue<&'static str> = JobQueue::new(4);
        q.push("job").unwrap();
        q.push_priority("scale-1");
        q.push_priority("scale-2");
        assert_eq!(q.pop(), Some("scale-1"), "priority first");
        q.shutdown();
        assert_eq!(q.push("late"), Err(QueueFull));
        // Internal work is still accepted and drained after shutdown.
        q.push_priority("scale-3");
        assert_eq!(q.pop(), Some("scale-2"));
        assert_eq!(q.pop(), Some("scale-3"));
        assert_eq!(q.pop(), Some("job"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn shutdown_wakes_blocked_workers_and_drains() {
        let q: Arc<JobQueue<String>> = Arc::new(JobQueue::new(4));
        q.push("last".into()).unwrap();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Give workers a moment to block, then shut down.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.shutdown();
        let results: Vec<Option<String>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Exactly one worker got the queued job; the rest observed shutdown.
        assert_eq!(results.iter().filter(|r| r.is_some()).count(), 1);
        assert_eq!(q.push("late".into()), Err(QueueFull));
        assert_eq!(q.pop(), None);
    }
}
