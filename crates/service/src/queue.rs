//! Bounded multi-producer multi-consumer job queue.
//!
//! Connection handlers push job keys; worker threads block on [`pop`]
//! until work or shutdown. The queue is deliberately *non-blocking on
//! push*: when full, the submitter gets [`QueueFull`] and the server
//! answers `503` — backpressure surfaces to clients instead of tying up
//! connection threads.
//!
//! [`pop`]: JobQueue::pop

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Push rejection: the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

struct Inner {
    items: VecDeque<String>,
    shutdown: bool,
}

/// The bounded queue.
pub struct JobQueue {
    inner: Mutex<Inner>,
    not_empty: Condvar,
    capacity: usize,
}

impl std::fmt::Debug for JobQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobQueue")
            .field("capacity", &self.capacity)
            .field("depth", &self.depth())
            .finish()
    }
}

impl JobQueue {
    /// Queue holding at most `capacity` pending jobs.
    pub fn new(capacity: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                shutdown: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue a job key; fails fast when full or shut down.
    pub fn push(&self, key: String) -> Result<(), QueueFull> {
        let mut inner = self.inner.lock().unwrap();
        if inner.shutdown || inner.items.len() >= self.capacity {
            return Err(QueueFull);
        }
        inner.items.push_back(key);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Block until a job is available; `None` once shut down and drained.
    pub fn pop(&self) -> Option<String> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(key) = inner.items.pop_front() {
                return Some(key);
            }
            if inner.shutdown {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Pending jobs.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Stop accepting pushes and wake every blocked worker. Already
    /// queued jobs are still drained.
    pub fn shutdown(&self) {
        self.inner.lock().unwrap().shutdown = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity() {
        let q = JobQueue::new(2);
        q.push("a".into()).unwrap();
        q.push("b".into()).unwrap();
        assert_eq!(q.push("c".into()), Err(QueueFull));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop().as_deref(), Some("a"));
        assert_eq!(q.pop().as_deref(), Some("b"));
    }

    #[test]
    fn shutdown_wakes_blocked_workers_and_drains() {
        let q = Arc::new(JobQueue::new(4));
        q.push("last".into()).unwrap();
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        // Give workers a moment to block, then shut down.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.shutdown();
        let results: Vec<Option<String>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Exactly one worker got the queued job; the rest observed shutdown.
        assert_eq!(results.iter().filter(|r| r.is_some()).count(), 1);
        assert_eq!(q.push("late".into()), Err(QueueFull));
        assert_eq!(q.pop(), None);
    }
}
