//! The generator's intermediate representation.
//!
//! Programs are not generated directly as MiniMPI ASTs: arbitrary ASTs
//! deadlock, and a fuzzer whose inputs hang teaches nothing. Instead the
//! generator emits a [`Spec`] — a tree of [`GStmt`] *templates* that are
//! **matched by construction**: every point-to-point template pairs each
//! send with exactly one receive at every process count ≥ 2, every
//! collective is executed uniformly by all ranks, and rank-dependent
//! control flow encloses computation only. Lowering a spec through
//! [`scalana_lang::builder`] therefore yields a program that must
//! terminate, conserve messages, and simulate deterministically at any
//! scale — so the differential oracles can assert equalities, and any
//! violation is a real bug in the stack under test.
//!
//! Template soundness notes:
//! - each point-to-point template owns a unique tag, so a wildcard
//!   *source* can only match the template's own messages;
//! - wildcard-*tag* receives could steal other templates' messages, so
//!   those templates are barrier-fenced at lowering: once every rank has
//!   entered the barrier, every previously sent message has been consumed
//!   (template receives precede the barrier in program order), leaving
//!   only the fenced template's messages in flight inside the fence;
//! - loop bounds are clamped with `min(_, cap)` (cap ≤ 4) and `while`
//!   loops lower to uniform countdowns, so every loop terminates;
//! - non-blocking rings use distance `min(d, nprocs - 1)` so a rank
//!   never messages itself.

use scalana_lang::ast::{BinOp, Program};
use scalana_lang::builder::{
    self, abs, and, eq, func_ref, gt, int, log2, lt, max, min, ne, nprocs, rank, var,
    ProgramBuilder,
};
use scalana_lang::pretty;

/// An expression template. Lowered against a `LowerCtx`, so references
/// to loop variables or the helper argument degrade to literals when the
/// shrinker moves them out of scope — a shrunk spec always lowers to a
/// checkable program.
#[derive(Debug, Clone, PartialEq)]
pub enum GExpr {
    /// Integer literal.
    Lit(i64),
    /// Program parameter `P0`.
    P0,
    /// Program parameter `P1`.
    P1,
    /// The per-case uniquifier parameter `CASEID`.
    CaseId,
    /// The process count.
    Nprocs,
    /// The executing rank (generated only where rank-dependence is safe:
    /// comp costs and comp-only control flow).
    Rank,
    /// The helper function's argument (`n`); a literal outside `helper`.
    HelperArg,
    /// The `k`-th enclosing loop variable (modulo what is in scope).
    Loop(usize),
    /// Binary operator over two sub-expressions.
    Bin(BinOp, Box<GExpr>, Box<GExpr>),
    /// Two-argument minimum.
    Min(Box<GExpr>, Box<GExpr>),
    /// Two-argument maximum.
    Max(Box<GExpr>, Box<GExpr>),
    /// Absolute value.
    Abs(Box<GExpr>),
    /// Floor log2.
    Log2(Box<GExpr>),
    /// Arithmetic negation.
    Neg(Box<GExpr>),
}

/// Which collective a [`GStmt::Collective`] lowers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollKind {
    /// `barrier();`
    Barrier,
    /// `bcast(root = .., bytes = ..);`
    Bcast,
    /// `reduce(root = .., bytes = ..);`
    Reduce,
    /// `allreduce(bytes = ..);`
    Allreduce,
    /// `alltoall(bytes = ..);`
    Alltoall,
    /// `allgather(bytes = ..);`
    Allgather,
}

/// A statement template. See the module docs for the soundness rules
/// each variant obeys.
#[derive(Debug, Clone, PartialEq)]
pub enum GStmt {
    /// `comp(cycles = .., ..)` — the optional PMU attributes are derived
    /// from the cycle expression at lowering.
    Comp {
        /// Cycle-cost expression (may be rank-dependent).
        cycles: GExpr,
        /// Emit `ins = cycles * 2`.
        ins: bool,
        /// Emit `lst = cycles / 4`.
        lst: bool,
        /// Emit `miss = cycles / 64`.
        miss: bool,
        /// Emit `brmiss = cycles / 100`.
        brmiss: bool,
    },
    /// `let t<n> = <expr>;` — scoping/pretty-printer fuzz.
    LetTemp {
        /// Bound expression.
        expr: GExpr,
    },
    /// `for i<n> in 0 .. min(bound, cap) { .. }` — uniform body.
    For {
        /// Upper-bound expression (uniform).
        bound: GExpr,
        /// Iteration clamp, 1..=4.
        cap: i64,
        /// Loop body.
        body: Vec<GStmt>,
    },
    /// `for g<n> in 0 .. rank % modulus { .. }` — rank-dependent trip
    /// count, so the body is computation-only.
    RankFor {
        /// Trip-count modulus, 2..=4.
        modulus: i64,
        /// Computation-only body.
        body: Vec<GStmt>,
    },
    /// `let w<n> = min(start, cap); while w<n> > 0 { ..; w<n> = w<n> - 1; }`
    While {
        /// Countdown start expression.
        start: GExpr,
        /// Countdown clamp, 1..=4.
        cap: i64,
        /// Loop body.
        body: Vec<GStmt>,
    },
    /// `if <uniform cond> { .. } else { .. }` — both branches uniform,
    /// so collectives and templates inside stay matched.
    IfUniform {
        /// Branch condition (uniform across ranks).
        cond: GExpr,
        /// Taken when the condition is non-zero.
        then_body: Vec<GStmt>,
        /// Taken otherwise; empty means no `else` block.
        else_body: Vec<GStmt>,
    },
    /// `if rank % modulus == 0 { .. }` — rank-divergent, so the body is
    /// computation-only.
    RankIf {
        /// Rank modulus, 2..=4.
        modulus: i64,
        /// Computation-only body.
        body: Vec<GStmt>,
    },
    /// A uniformly executed collective.
    Collective {
        /// Which collective.
        kind: CollKind,
        /// Root expression for rooted collectives; lowered as
        /// `abs(root) % nprocs` so it is always a valid uniform rank.
        root: GExpr,
        /// Payload expression.
        bytes: GExpr,
    },
    /// `sendrecv` around the ring — deadlock-free at any scale because
    /// `sendrecv` is buffered.
    RingSendrecv {
        /// The template's unique tag.
        tag: i64,
        /// Payload expression.
        bytes: GExpr,
    },
    /// Even ranks send to their odd right neighbour, which receives.
    PairedSendRecv {
        /// The template's unique tag.
        tag: i64,
        /// Payload expression.
        bytes: GExpr,
        /// Receive with `src = any` instead of the paired sender.
        wildcard_src: bool,
        /// Receive with `tag = any` (template is barrier-fenced).
        wildcard_tag: bool,
    },
    /// Every non-root rank sends to rank 0, which receives `nprocs - 1`
    /// messages in a loop.
    GatherToRoot {
        /// The template's unique tag.
        tag: i64,
        /// Payload expression.
        bytes: GExpr,
        /// Root receives with `src = any` instead of the loop index.
        wildcard_src: bool,
        /// Root receives with `tag = any` (template is barrier-fenced).
        wildcard_tag: bool,
    },
    /// `irecv` from the left neighbour + `isend` to the right, then
    /// `wait`/`waitall` — the classic non-blocking exchange.
    NonblockingRing {
        /// The template's unique tag.
        tag: i64,
        /// Payload expression.
        bytes: GExpr,
        /// Ring distance before clamping to `nprocs - 1`, 1 or 2.
        dist: i64,
        /// Receive with `src = any`.
        wildcard_src: bool,
        /// `wait(r); wait(s);` instead of `waitall();`.
        wait_each: bool,
    },
    /// Invoke the helper function, directly or through a function value.
    CallHelper {
        /// `let fp<n> = &helper; call fp<n>(arg);` instead of `helper(arg);`.
        indirect: bool,
        /// Argument expression (uniform).
        arg: GExpr,
    },
}

/// A complete generated workload: parameters, the `main` body, and an
/// optional `helper` function body (emitted only when `main` calls it).
#[derive(Debug, Clone, PartialEq)]
pub struct Spec {
    /// Per-case uniquifier baked in as a program parameter, so every
    /// generated program hashes differently in the daemon's caches.
    pub case_id: i64,
    /// Default of program parameter `P0`.
    pub p0: i64,
    /// Default of program parameter `P1`.
    pub p1: i64,
    /// Body of `main`.
    pub main: Vec<GStmt>,
    /// Body of `helper` (uniform context; ignored if never called).
    pub helper: Vec<GStmt>,
    /// End `helper` with an explicit `return;`.
    pub helper_ret: bool,
}

impl Spec {
    /// Lower to a checked MiniMPI [`Program`]. Panics if lowering ever
    /// produces an ill-formed program — that would be a generator bug,
    /// not a finding.
    pub fn lower(&self) -> Program {
        lower(self)
    }

    /// Pretty-printed MiniMPI source of the lowered program.
    pub fn pretty(&self) -> String {
        pretty::print_program(&self.lower())
    }

    /// Number of statement templates (spec-level, pre-lowering).
    pub fn stmt_count(&self) -> usize {
        fn count(stmts: &[GStmt]) -> usize {
            stmts
                .iter()
                .map(|s| {
                    1 + match s {
                        GStmt::For { body, .. }
                        | GStmt::RankFor { body, .. }
                        | GStmt::While { body, .. }
                        | GStmt::RankIf { body, .. } => count(body),
                        GStmt::IfUniform {
                            then_body,
                            else_body,
                            ..
                        } => count(then_body) + count(else_body),
                        _ => 0,
                    }
                })
                .sum()
        }
        count(&self.main)
            + if uses_helper(&self.main) {
                count(&self.helper)
            } else {
                0
            }
    }
}

/// Does any template in `stmts` (recursively) call the helper?
pub fn uses_helper(stmts: &[GStmt]) -> bool {
    stmts.iter().any(|s| match s {
        GStmt::CallHelper { .. } => true,
        GStmt::For { body, .. }
        | GStmt::RankFor { body, .. }
        | GStmt::While { body, .. }
        | GStmt::RankIf { body, .. } => uses_helper(body),
        GStmt::IfUniform {
            then_body,
            else_body,
            ..
        } => uses_helper(then_body) || uses_helper(else_body),
        _ => false,
    })
}

/// Per-function lowering state: loop variables in scope and a counter
/// for unique local names.
struct LowerCtx {
    loop_vars: Vec<String>,
    tmp: usize,
    in_helper: bool,
}

impl LowerCtx {
    fn fresh(&mut self, prefix: &str) -> String {
        let name = format!("{prefix}{}", self.tmp);
        self.tmp += 1;
        name
    }
}

/// Lower a spec to a checked program (see [`Spec::lower`]).
pub fn lower(spec: &Spec) -> Program {
    let mut b = ProgramBuilder::new("wgen.mmpi");
    b.param("CASEID", spec.case_id);
    b.param("P0", spec.p0);
    b.param("P1", spec.p1);
    b.function("main", &[], |f| {
        let mut ctx = LowerCtx {
            loop_vars: Vec::new(),
            tmp: 0,
            in_helper: false,
        };
        lower_block(f, &spec.main, &mut ctx);
    });
    if uses_helper(&spec.main) {
        b.function("helper", &["n"], |f| {
            let mut ctx = LowerCtx {
                loop_vars: Vec::new(),
                tmp: 0,
                in_helper: true,
            };
            lower_block(f, &spec.helper, &mut ctx);
            if spec.helper_ret {
                f.ret();
            }
        });
    }
    b.finish()
        .unwrap_or_else(|e| panic!("wgen lowered an ill-formed program: {e}\nspec: {spec:?}"))
}

fn lower_expr(e: &GExpr, ctx: &LowerCtx) -> scalana_lang::ast::Expr {
    use scalana_lang::ast::Expr;
    match e {
        GExpr::Lit(v) => int(*v),
        GExpr::P0 => var("P0"),
        GExpr::P1 => var("P1"),
        GExpr::CaseId => var("CASEID"),
        GExpr::Nprocs => nprocs(),
        GExpr::Rank => rank(),
        GExpr::HelperArg => {
            if ctx.in_helper {
                var("n")
            } else {
                int(2)
            }
        }
        GExpr::Loop(k) => {
            if ctx.loop_vars.is_empty() {
                int(1)
            } else {
                var(&ctx.loop_vars[k % ctx.loop_vars.len()])
            }
        }
        GExpr::Bin(op, a, b) => Expr::bin(*op, lower_expr(a, ctx), lower_expr(b, ctx)),
        GExpr::Min(a, b) => min(lower_expr(a, ctx), lower_expr(b, ctx)),
        GExpr::Max(a, b) => max(lower_expr(a, ctx), lower_expr(b, ctx)),
        GExpr::Abs(a) => abs(lower_expr(a, ctx)),
        GExpr::Log2(a) => log2(lower_expr(a, ctx)),
        GExpr::Neg(a) => -lower_expr(a, ctx),
    }
}

fn lower_block(f: &mut builder::BlockBuilder<'_>, stmts: &[GStmt], ctx: &mut LowerCtx) {
    for stmt in stmts {
        lower_stmt(f, stmt, ctx);
    }
}

fn lower_stmt(f: &mut builder::BlockBuilder<'_>, stmt: &GStmt, ctx: &mut LowerCtx) {
    match stmt {
        GStmt::Comp {
            cycles,
            ins,
            lst,
            miss,
            brmiss,
        } => {
            let c = lower_expr(cycles, ctx);
            let mut spec = builder::comp_cycles(c.clone());
            if *ins {
                spec = spec.ins(c.clone() * int(2));
            }
            if *lst {
                spec = spec.lst(c.clone() / int(4));
            }
            if *miss {
                spec = spec.miss(c.clone() / int(64));
            }
            if *brmiss {
                spec = spec.brmiss(c / int(100));
            }
            f.comp(spec);
        }
        GStmt::LetTemp { expr } => {
            let name = ctx.fresh("t");
            f.let_(&name, lower_expr(expr, ctx));
        }
        GStmt::For { bound, cap, body } => {
            let name = ctx.fresh("i");
            let end = min(lower_expr(bound, ctx), int(*cap));
            ctx.loop_vars.push(name.clone());
            f.for_(&name, int(0), end, |fb| lower_block(fb, body, ctx));
            ctx.loop_vars.pop();
        }
        GStmt::RankFor { modulus, body } => {
            let name = ctx.fresh("g");
            ctx.loop_vars.push(name.clone());
            f.for_(&name, int(0), rank() % int(*modulus), |fb| {
                lower_block(fb, body, ctx)
            });
            ctx.loop_vars.pop();
        }
        GStmt::While { start, cap, body } => {
            let name = ctx.fresh("w");
            f.let_(&name, min(lower_expr(start, ctx), int(*cap)));
            f.while_(gt(var(&name), int(0)), |fb| {
                lower_block(fb, body, ctx);
                fb.assign(&name, var(&name) - int(1));
            });
        }
        GStmt::IfUniform {
            cond,
            then_body,
            else_body,
        } => {
            let c = lower_expr(cond, ctx);
            if else_body.is_empty() {
                f.if_(c, |fb| lower_block(fb, then_body, ctx));
            } else {
                // Both closures need `ctx` mutably; a RefCell splits the
                // borrow (they run sequentially inside `if_else`).
                let ctx_cell = std::cell::RefCell::new(&mut *ctx);
                f.if_else(
                    c,
                    |fb| lower_block(fb, then_body, &mut ctx_cell.borrow_mut()),
                    |fb| lower_block(fb, else_body, &mut ctx_cell.borrow_mut()),
                );
            }
        }
        GStmt::RankIf { modulus, body } => {
            f.if_(eq(rank() % int(*modulus), int(0)), |fb| {
                lower_block(fb, body, ctx)
            });
        }
        GStmt::Collective { kind, root, bytes } => {
            let bytes_e = lower_expr(bytes, ctx);
            match kind {
                CollKind::Barrier => f.barrier(),
                CollKind::Bcast => {
                    f.bcast(abs(lower_expr(root, ctx)) % nprocs(), bytes_e);
                }
                CollKind::Reduce => {
                    f.reduce(abs(lower_expr(root, ctx)) % nprocs(), bytes_e);
                }
                CollKind::Allreduce => f.allreduce(bytes_e),
                CollKind::Alltoall => f.alltoall(bytes_e),
                CollKind::Allgather => f.allgather(bytes_e),
            }
        }
        GStmt::RingSendrecv { tag, bytes } => {
            f.sendrecv(
                (rank() + int(1)) % nprocs(),
                (rank() + nprocs() - int(1)) % nprocs(),
                int(*tag),
                lower_expr(bytes, ctx),
            );
        }
        GStmt::PairedSendRecv {
            tag,
            bytes,
            wildcard_src,
            wildcard_tag,
        } => {
            if *wildcard_tag {
                f.barrier();
            }
            let bytes_e = lower_expr(bytes, ctx);
            f.if_(
                and(eq(rank() % int(2), int(0)), lt(rank() + int(1), nprocs())),
                |fb| fb.send(rank() + int(1), int(*tag), bytes_e),
            );
            let src = if *wildcard_src {
                builder::any()
            } else {
                rank() - int(1)
            };
            let tag_e = if *wildcard_tag {
                builder::any()
            } else {
                int(*tag)
            };
            f.if_(eq(rank() % int(2), int(1)), |fb| fb.recv(src, tag_e));
            if *wildcard_tag {
                f.barrier();
            }
        }
        GStmt::GatherToRoot {
            tag,
            bytes,
            wildcard_src,
            wildcard_tag,
        } => {
            if *wildcard_tag {
                f.barrier();
            }
            let bytes_e = lower_expr(bytes, ctx);
            let g = ctx.fresh("g");
            let src = if *wildcard_src {
                builder::any()
            } else {
                var(&g)
            };
            let tag_e = if *wildcard_tag {
                builder::any()
            } else {
                int(*tag)
            };
            let send_tag = int(*tag);
            f.if_else(
                ne(rank(), int(0)),
                |fb| fb.send(int(0), send_tag, bytes_e),
                |fb| {
                    fb.for_(&g, int(1), nprocs(), |fb2| fb2.recv(src, tag_e));
                },
            );
            if *wildcard_tag {
                f.barrier();
            }
        }
        GStmt::NonblockingRing {
            tag,
            bytes,
            dist,
            wildcard_src,
            wait_each,
        } => {
            // Clamp the ring distance so a rank never messages itself
            // (distance 2 at nprocs == 2 would).
            let d = || min(int(*dist), nprocs() - int(1));
            let r = ctx.fresh("r");
            let s = ctx.fresh("s");
            let src = if *wildcard_src {
                builder::any()
            } else {
                (rank() + nprocs() - d()) % nprocs()
            };
            f.irecv(&r, src, int(*tag));
            f.isend(
                &s,
                (rank() + d()) % nprocs(),
                int(*tag),
                lower_expr(bytes, ctx),
            );
            if *wait_each {
                f.wait(var(&r));
                f.wait(var(&s));
            } else {
                f.waitall();
            }
        }
        GStmt::CallHelper { indirect, arg } => {
            let arg_e = lower_expr(arg, ctx);
            if *indirect {
                let fp = ctx.fresh("fp");
                f.let_(&fp, func_ref("helper"));
                f.call_indirect(var(&fp), vec![arg_e]);
            } else {
                f.call("helper", vec![arg_e]);
            }
        }
    }
}
