//! The differential oracles.
//!
//! Each oracle takes a lowered program (or its pretty-printed source)
//! and returns `Err(message)` on a violation. Because generated
//! programs are matched by construction (see [`crate::spec`]), every
//! oracle asserts *equalities and invariants*, not "probably fine":
//!
//! 1. **Determinism** — the full analysis pipeline run twice over the
//!    same program yields byte-identical profile images and detection
//!    reports.
//! 2. **Cross-scale invariants** — at every scale the simulation
//!    terminates (no phantom deadlock), conserves messages (every
//!    point-to-point send is matched by exactly one communication
//!    dependence), balances enter/exit events, and keeps per-rank
//!    clocks finite and monotone.
//! 3. **Cache differential** — submitting a strict subset of scales to
//!    a live daemon and then the full set over real TCP `/v1` yields a
//!    report and per-scale profile images byte-identical to a cold
//!    in-process analysis, with `/stats` per-scale hit/miss deltas
//!    predicted exactly (generalizing `crates/service/tests/overlap.rs`
//!    from one hand-written program to the whole generated corpus).
//! 4. **Wire fuzz** — mutations of the canonical submit JSON must get a
//!    complete HTTP answer: a structured `ApiError` (with `error` and
//!    `code`) for rejections, a well-formed ack (and a job that reaches
//!    a terminal state) for accepts, and a healthy daemon afterwards.
//!    The same bar holds for *torn* writes: a valid submit dribbled in
//!    random fragments, with full exchanges on other connections
//!    between the fragments, must answer exactly like the whole request
//!    at once (the event loop's per-connection parser state cannot
//!    leak, reset, or stall across readiness rounds).
//!    The observability surface is held to the same bar: `/v1/metrics`
//!    always serves a complete Prometheus exposition, and
//!    `/v1/jobs/<id>/trace` answers every mutated id with a structured
//!    error or a decodable trace — never a hang, never a torn response.
//!    The federation surface (`/v1/peer/*`) rides the same contract:
//!    mutated cache keys, announce bodies, and write-through blobs get
//!    a structured error or a decodable DTO, the ring view always
//!    decodes, and the daemon still serves `/v1/healthz` afterwards.

use bytes::Bytes;
use proptest::test_runner::TestRng;
use scalana_api::json::{self, Json};
use scalana_api::{paths, RingView, SubmitAck, SubmitRequest, TraceResponse, MAX_SCALE};
use scalana_core::{pipeline, ScalAnaConfig};
use scalana_graph::{build_psg, MpiKind, PsgOptions};
use scalana_lang::Program;
use scalana_mpisim::{CommDepEvent, Hook, MpiEnterEvent, MpiExitEvent, SimConfig, Simulation};
use scalana_service::client::Conn;
use scalana_service::jsonify::report_to_json;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// How long a single daemon job may take before the oracle calls it a
/// hang. Generous: CI machines are slow, the programs are tiny.
const JOB_TIMEOUT: Duration = Duration::from_secs(120);

/// Everything a cold (uncached, in-process) analysis produces that the
/// daemon also serves: the rendered report and one profile image per
/// scale, both in final wire encoding so comparisons are byte-exact.
#[derive(Debug, Clone, PartialEq)]
pub struct Cold {
    /// `report_to_json(..).render()` of the assembled analysis.
    pub report: String,
    /// `store::save` image per scale, ascending scale order.
    pub images: Vec<Bytes>,
}

/// Run the full pipeline in-process and capture its wire artifacts.
pub fn cold_analysis(program: &Program, scales: &[usize]) -> Result<Cold, String> {
    let config = ScalAnaConfig::default();
    let runs = pipeline::profile_runs(program, scales, &config)
        .map_err(|e| format!("cold analysis at scales {scales:?} failed to simulate: {e}"))?;
    let images = runs
        .profiles
        .iter()
        .map(scalana_profile::store::save)
        .collect();
    let report = report_to_json(&pipeline::assemble(runs, &config).report).render();
    Ok(Cold { report, images })
}

/// Oracle 1: the pipeline is deterministic — two cold runs of the same
/// program produce byte-identical artifacts. Returns the artifacts for
/// reuse by the daemon oracle.
pub fn check_determinism(program: &Program, scales: &[usize]) -> Result<Cold, String> {
    let first = cold_analysis(program, scales)?;
    let second = cold_analysis(program, scales)?;
    if first.report != second.report {
        return Err(format!(
            "non-deterministic report at scales {scales:?}:\nfirst:  {}\nsecond: {}",
            first.report, second.report
        ));
    }
    for (i, (a, b)) in first.images.iter().zip(&second.images).enumerate() {
        if a != b {
            return Err(format!(
                "non-deterministic profile image for scale {} ({} vs {} bytes)",
                scales[i],
                a.len(),
                b.len()
            ));
        }
    }
    Ok(first)
}

/// Event auditor: counts and sanity-checks the simulator's hook stream.
#[derive(Debug, Default)]
struct Audit {
    enters: u64,
    exits: u64,
    sends: u64,
    p2p_deps: u64,
    last_exit: Vec<f64>,
    violation: Option<String>,
}

impl Audit {
    fn flag(&mut self, message: String) {
        if self.violation.is_none() {
            self.violation = Some(message);
        }
    }
}

impl Hook for Audit {
    fn on_run_start(&mut self, nprocs: usize) {
        self.last_exit = vec![0.0; nprocs];
    }

    fn on_mpi_enter(&mut self, ev: &MpiEnterEvent) -> f64 {
        self.enters += 1;
        if matches!(ev.kind, MpiKind::Send | MpiKind::Isend | MpiKind::Sendrecv) {
            self.sends += 1;
        }
        if !ev.time.is_finite() || ev.time < 0.0 {
            self.flag(format!(
                "rank {} entered {:?} at bad time {}",
                ev.rank, ev.kind, ev.time
            ));
        }
        0.0
    }

    fn on_mpi_exit(&mut self, ev: &MpiExitEvent) -> f64 {
        self.exits += 1;
        if !ev.time.is_finite() || ev.elapsed < 0.0 || ev.wait_time < -1e-9 {
            self.flag(format!(
                "rank {} exited {:?} with bad clocks: time {} elapsed {} wait {}",
                ev.rank, ev.kind, ev.time, ev.elapsed, ev.wait_time
            ));
        }
        if ev.rank < self.last_exit.len() {
            let last = self.last_exit[ev.rank];
            if ev.time + 1e-9 < last {
                self.flag(format!(
                    "rank {} clock ran backwards: {:?} exited at {} after an exit at {}",
                    ev.rank, ev.kind, ev.time, last
                ));
            }
            self.last_exit[ev.rank] = f64::max(last, ev.time);
        }
        0.0
    }

    fn on_comm_dep(&mut self, ev: &CommDepEvent) -> f64 {
        // Collective dependences carry negative sentinel tags; templates
        // allocate point-to-point tags from 10 upward.
        if ev.tag >= 0 {
            self.p2p_deps += 1;
        }
        if ev.wait_time < -1e-9 || !ev.time.is_finite() {
            self.flag(format!(
                "comm dep {} -> {} (tag {}) with bad clocks: wait {} time {}",
                ev.src_rank, ev.dst_rank, ev.tag, ev.wait_time, ev.time
            ));
        }
        0.0
    }
}

/// Oracle 2: at every scale in `scales`, the program terminates,
/// conserves point-to-point messages, balances MPI enter/exit events,
/// and keeps rank clocks sane.
pub fn check_invariants(program: &Program, scales: &[usize]) -> Result<(), String> {
    let psg = build_psg(program, &PsgOptions::default());
    for &nprocs in scales {
        let mut audit = Audit::default();
        let result = Simulation::new(program, &psg, SimConfig::with_nprocs(nprocs))
            .with_hook(&mut audit)
            .run()
            .map_err(|e| {
                format!("matched-by-construction program failed at {nprocs} procs: {e}")
            })?;
        if let Some(violation) = audit.violation {
            return Err(format!("at {nprocs} procs: {violation}"));
        }
        if audit.sends != audit.p2p_deps {
            return Err(format!(
                "message conservation broken at {nprocs} procs: \
                 {} point-to-point sends but {} matched dependences",
                audit.sends, audit.p2p_deps
            ));
        }
        if audit.enters != audit.exits {
            return Err(format!(
                "unbalanced MPI events at {nprocs} procs: {} enters, {} exits",
                audit.enters, audit.exits
            ));
        }
        for (rank, &t) in result.rank_elapsed.iter().enumerate() {
            if !t.is_finite() || t < 0.0 {
                return Err(format!(
                    "rank {rank} finished with bad elapsed time {t} at {nprocs} procs"
                ));
            }
        }
    }
    Ok(())
}

/// Submit `text` over `/v1` and wait for the job to complete. Fails if
/// the daemon rejects the program or the job ends in `failed`.
fn submit_v1(conn: &mut Conn, text: &str, scales: &[usize]) -> Result<SubmitAck, String> {
    let body = SubmitRequest::source("wgen.mmpi", text)
        .with_scales(scales.to_vec())
        .to_json()
        .render();
    let doc = conn
        .request_json("POST", paths::JOBS, &body)
        .map_err(|e| format!("daemon rejected a generated program: {e}"))?;
    let ack = SubmitAck::from_json(&doc)
        .ok_or_else(|| format!("submit ack is not a SubmitAck: {}", doc.render()))?;
    let status = conn
        .wait_for_job(ack.job(), JOB_TIMEOUT)
        .map_err(|e| format!("job {} never finished: {e}", ack.job()))?;
    match status.get("status").and_then(Json::as_str) {
        Some("done") => Ok(ack),
        other => Err(format!(
            "job {} for a generated program ended as {other:?}: {}",
            ack.job(),
            status.render()
        )),
    }
}

fn scale_stats(conn: &mut Conn) -> Result<(i64, i64), String> {
    let stats = conn.request_json("GET", paths::STATS, "")?;
    let get = |k: &str| {
        stats
            .get(k)
            .and_then(Json::as_i64)
            .ok_or_else(|| format!("/stats missing {k}: {}", stats.render()))
    };
    Ok((get("scale_hits")?, get("scale_misses")?))
}

/// Oracle 3: cache differential against a live daemon.
///
/// Submits `subset` (a strict, non-empty subset of `full`), then `full`,
/// over real TCP `/v1`. Asserts the `/stats` per-scale hit/miss deltas
/// exactly — the first submission of a unique program misses every
/// scale; the second hits exactly the overlap when the discovery scale
/// is unchanged and nothing otherwise — and byte-compares the served
/// report and every profile image against the cold artifacts.
///
/// The caller must guarantee the daemon is otherwise quiescent: the
/// stats deltas account the whole daemon.
pub fn check_daemon(
    addr: &str,
    text: &str,
    subset: &[usize],
    full: &[usize],
    cold: &Cold,
) -> Result<(), String> {
    assert!(
        !subset.is_empty() && subset.len() < full.len(),
        "subset must be strict and non-empty"
    );
    let mut conn = Conn::connect(addr).map_err(|e| format!("connect to daemon: {e}"))?;

    let (h0, m0) = scale_stats(&mut conn)?;
    submit_v1(&mut conn, text, subset)?;
    let (h1, m1) = scale_stats(&mut conn)?;
    if (h1 - h0, m1 - m0) != (0, subset.len() as i64) {
        return Err(format!(
            "first submission of a unique program at {subset:?} must miss every scale, \
             got {} hits / {} misses",
            h1 - h0,
            m1 - m0
        ));
    }

    // A strict subset never triggers the whole-job cache; reuse depends
    // only on whether the discovery (smallest) scale is unchanged.
    let (expected_hits, expected_misses) = if subset[0] == full[0] {
        (subset.len() as i64, (full.len() - subset.len()) as i64)
    } else {
        (0, full.len() as i64)
    };
    let ack = submit_v1(&mut conn, text, full)?;
    let (h2, m2) = scale_stats(&mut conn)?;
    if (h2 - h1, m2 - m1) != (expected_hits, expected_misses) {
        return Err(format!(
            "split {subset:?} ⊂ {full:?} predicted {expected_hits} hits / {expected_misses} \
             misses, daemon counted {} / {}",
            h2 - h1,
            m2 - m1
        ));
    }

    let result = conn
        .request_json("GET", &paths::job_result(ack.job()), "")
        .map_err(|e| format!("fetch result: {e}"))?;
    let served = result
        .get("report")
        .ok_or_else(|| format!("result missing report: {}", result.render()))?
        .render();
    if served != cold.report {
        return Err(format!(
            "assembled-from-cache report diverges from cold run (split {subset:?} ⊂ {full:?})\n\
             served: {served}\ncold:   {}",
            cold.report
        ));
    }
    for (&nprocs, expected) in full.iter().zip(&cold.images) {
        let (code, image) = conn
            .request_raw("GET", &paths::job_profile(ack.job(), nprocs), "")
            .map_err(|e| format!("fetch profile at {nprocs}: {e}"))?;
        if code != 200 {
            return Err(format!("profile at scale {nprocs}: status {code}"));
        }
        if image[..] != expected[..] {
            return Err(format!(
                "profile image at scale {nprocs} diverges from cold run \
                 ({} vs {} bytes)",
                image.len(),
                expected.len()
            ));
        }
    }
    Ok(())
}

/// One raw HTTP request with an arbitrary byte body (possibly invalid
/// UTF-8/JSON) on a fresh `Connection: close` socket. Any transport
/// failure — refused connection, reset, read timeout, truncated
/// response — is a finding: the daemon must always answer.
fn raw_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> Result<(u16, Vec<u8>), String> {
    let mut stream =
        TcpStream::connect(addr).map_err(|e| format!("daemon refused connection: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: wgen\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body))
        .map_err(|e| format!("daemon dropped the request mid-write: {e}"))?;

    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| format!("daemon hung or dropped mid-response: {e}"))?;
    parse_response(&raw)
}

/// Split one raw `Connection: close` HTTP response into status code and
/// body, checking the body against the declared `Content-Length`.
fn parse_response(raw: &[u8]) -> Result<(u16, Vec<u8>), String> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| {
            format!(
                "incomplete HTTP response ({} bytes, no header end)",
                raw.len()
            )
        })?;
    let head_text = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| "response head is not UTF-8".to_string())?;
    let status_line = head_text.lines().next().unwrap_or("");
    let code: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| format!("bad status line: {status_line:?}"))?;
    let content_length = head_text
        .lines()
        .skip(1)
        .filter_map(|line| line.split_once(':'))
        .find(|(name, _)| name.trim().eq_ignore_ascii_case("content-length"))
        .and_then(|(_, value)| value.trim().parse::<usize>().ok());
    let response_body = raw[head_end + 4..].to_vec();
    if let Some(expected) = content_length {
        if response_body.len() != expected {
            return Err(format!(
                "truncated response body: {} of {expected} bytes",
                response_body.len()
            ));
        }
    }
    Ok((code, response_body))
}

/// The readiness loop keeps per-connection parser state across rounds:
/// a valid submit dribbled onto one connection in random fragments,
/// with complete request/response exchanges on *other* connections
/// between the fragments, must produce exactly the answer the whole
/// request gets at once — never a hang, a torn response, or bytes bled
/// across connections.
fn check_interleaved_writes(
    addr: &str,
    canonical: &str,
    rng: &mut TestRng,
    rounds: usize,
) -> Result<(), String> {
    let body = canonical.as_bytes();
    let head = format!(
        "POST {} HTTP/1.1\r\nHost: wgen\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        paths::JOBS,
        body.len()
    );
    let mut request = head.into_bytes();
    request.extend_from_slice(body);

    for round in 0..rounds {
        let mut cuts: Vec<usize> = (0..2 + rng.gen_index(3))
            .map(|_| 1 + rng.gen_index(request.len() - 1))
            .collect();
        cuts.sort_unstable();
        cuts.dedup();

        let context = |what: &str| format!("interleave round {round} (cuts {cuts:?}): {what}");
        let mut slow = TcpStream::connect(addr)
            .map_err(|e| context(&format!("daemon refused connection: {e}")))?;
        slow.set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| e.to_string())?;
        slow.set_write_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| e.to_string())?;
        let mut sent = 0;
        for &cut in &cuts {
            slow.write_all(&request[sent..cut])
                .map_err(|e| context(&format!("daemon dropped a fragment: {e}")))?;
            sent = cut;
            // A full exchange on a fresh connection while the slow
            // request sits half-read.
            let (code, _) =
                raw_request(addr, "GET", paths::HEALTHZ, &[]).map_err(|e| context(&e))?;
            if code != 200 {
                return Err(context(&format!(
                    "daemon unhealthy with a half-written request in flight: healthz {code}"
                )));
            }
        }
        slow.write_all(&request[sent..])
            .map_err(|e| context(&format!("daemon dropped the final fragment: {e}")))?;
        let mut raw = Vec::new();
        slow.read_to_end(&mut raw)
            .map_err(|e| context(&format!("daemon hung or dropped mid-response: {e}")))?;
        let (code, response_body) = parse_response(&raw).map_err(|e| context(&e))?;
        if !(200..300).contains(&code) {
            return Err(context(&format!(
                "valid submit answered {code}: {:?}",
                String::from_utf8_lossy(&response_body)
            )));
        }
        let doc = json::parse(&String::from_utf8_lossy(&response_body))
            .map_err(|e| context(&format!("2xx with a non-JSON body: {e:?}")))?;
        let ack =
            SubmitAck::from_json(&doc).ok_or_else(|| context("2xx body is not a SubmitAck"))?;
        let mut conn = Conn::connect(addr).map_err(|e| context(&e.to_string()))?;
        conn.wait_for_job(ack.job(), JOB_TIMEOUT)
            .map_err(|e| context(&format!("dribbled submit never reached terminal: {e}")))?;
    }
    Ok(())
}

/// Derive one mutant of the canonical submit body. The first arms are
/// structured near-misses (wrong types, missing fields, out-of-range
/// scales, invalid UTF-8); the rest are blind byte-level damage.
fn mutate(rng: &mut TestRng, canonical: &str) -> Vec<u8> {
    let bytes = canonical.as_bytes();
    match rng.gen_index(10) {
        // Missing program: rename the `source` key (same length keeps
        // the JSON well-formed, so this exercises request validation).
        0 => canonical
            .replacen("\"source\"", "\"bounce\"", 1)
            .into_bytes(),
        // Wrong type for scales.
        1 => br#"{"name":"wgen.mmpi","source":"fn main() { }","scales":"two"}"#.to_vec(),
        // Scale of zero.
        2 => br#"{"name":"wgen.mmpi","source":"fn main() { }","scales":[0]}"#.to_vec(),
        // Negative scale.
        3 => br#"{"name":"wgen.mmpi","source":"fn main() { }","scales":[-3]}"#.to_vec(),
        // Scale beyond the documented ceiling.
        4 => format!(
            r#"{{"name":"wgen.mmpi","source":"fn main() {{ }}","scales":[{}]}}"#,
            MAX_SCALE + 1
        )
        .into_bytes(),
        // Empty body.
        5 => Vec::new(),
        // Invalid UTF-8 in the middle of the document.
        6 => {
            let mut damaged = bytes.to_vec();
            let at = 1 + rng.gen_index(damaged.len().saturating_sub(1).max(1));
            damaged.insert(at.min(damaged.len()), 0xFF);
            damaged
        }
        // Leading garbage.
        7 => {
            let mut damaged = b"}{".to_vec();
            damaged.extend_from_slice(bytes);
            damaged
        }
        // Truncation at a random point.
        8 => bytes[..1 + rng.gen_index(bytes.len().saturating_sub(1).max(1))].to_vec(),
        // Single byte flipped to a random printable character.
        _ => {
            let mut damaged = bytes.to_vec();
            let at = rng.gen_index(damaged.len().max(1)).min(damaged.len() - 1);
            damaged[at] = 0x20 + (rng.gen_range(0u32..95) as u8);
            damaged
        }
    }
}

/// Derive one job-id mutant for the trace path. Every arm stays within
/// URL-token characters — request-line framing damage is the HTTP
/// layer's concern, not this oracle's — but together they cover the
/// valid id, empty keys, extra path segments, traversal shapes,
/// percent-damage, oversized ids, and plain garbage.
fn mutate_job_id(rng: &mut TestRng, real: &str) -> String {
    match rng.gen_index(8) {
        // The genuine id: the trace must decode, not just answer.
        0 => real.to_string(),
        1 => format!("{real}junk"),
        2 => String::new(),
        3 => "a".repeat(1024),
        4 => format!("{real}/extra"),
        5 => "../../jobs".to_string(),
        6 => "%00%ff%zz".to_string(),
        _ => {
            const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-._~:@";
            let len = 1 + rng.gen_index(24);
            (0..len)
                .map(|_| ALPHABET[rng.gen_index(ALPHABET.len())] as char)
                .collect()
        }
    }
}

/// Oracle 4: wire fuzz. Sends `rounds` mutants of the canonical submit
/// request; the daemon must answer every one with a complete HTTP
/// response — a structured error for rejections, a valid ack (whose job
/// reaches a terminal state) for accepts. The observability surface
/// rides the same contract: `/v1/metrics` must always serve a complete
/// Prometheus exposition, a freshly completed job's trace must decode
/// as a [`TraceResponse`], `rounds` mutated job ids on the trace path
/// must each get a structured error or a decodable trace, and the
/// daemon must be healthy afterwards.
///
/// Accepted mutants are waited to a terminal state so the daemon is
/// quiescent again before the next case measures `/stats` deltas.
pub fn check_wire(
    addr: &str,
    text: &str,
    scales: &[usize],
    rng: &mut TestRng,
    rounds: usize,
) -> Result<(), String> {
    let canonical = SubmitRequest::source("wgen.mmpi", text)
        .with_scales(scales.to_vec())
        .to_json()
        .render();
    for round in 0..rounds {
        let mutant = mutate(rng, &canonical);
        let (code, body) = raw_request(addr, "POST", paths::JOBS, &mutant)
            .map_err(|e| format!("wire round {round}: {e}"))?;
        let body_text = String::from_utf8(body)
            .map_err(|_| format!("wire round {round}: status {code} with a non-UTF-8 body"))?;
        let doc = json::parse(&body_text).map_err(|e| {
            format!("wire round {round}: status {code} with non-JSON body {body_text:?}: {e}")
        })?;
        if (200..300).contains(&code) {
            let ack = SubmitAck::from_json(&doc).ok_or_else(|| {
                format!("wire round {round}: 2xx body is not a SubmitAck: {body_text}")
            })?;
            let mut conn = Conn::connect(addr).map_err(|e| e.to_string())?;
            conn.wait_for_job(ack.job(), JOB_TIMEOUT).map_err(|e| {
                format!("wire round {round}: accepted mutant never reached a terminal state: {e}")
            })?;
        } else if doc.get("error").is_none() || doc.get("code").is_none() {
            return Err(format!(
                "wire round {round}: status {code} without a structured ApiError: {body_text}"
            ));
        }
    }

    // Half-written requests interleaved with live traffic: the event
    // loop's per-connection parser state must survive readiness rounds
    // that serve other connections in between.
    check_interleaved_writes(addr, &canonical, rng, rounds.min(3))?;

    // The metrics exposition is unconditional: any live daemon serves
    // it, whatever the fuzzing did to its caches and queues.
    let (code, body) = raw_request(addr, "GET", paths::METRICS, &[])
        .map_err(|e| format!("metrics scrape: {e}"))?;
    let metrics_text = String::from_utf8(body)
        .map_err(|_| format!("metrics scrape: status {code} with a non-UTF-8 body"))?;
    if code != 200 || !metrics_text.contains("# TYPE scalana_") {
        return Err(format!(
            "metrics scrape: status {code} without a Prometheus exposition: {metrics_text:?}"
        ));
    }

    // A real terminal job (the canonical program again — cached, so
    // cheap) anchors the trace-path fuzz with a known-good id.
    let mut conn = Conn::connect(addr).map_err(|e| format!("daemon dead after wire fuzz: {e}"))?;
    let ack = submit_v1(&mut conn, text, scales)
        .map_err(|e| format!("canonical resubmission for the trace fuzz: {e}"))?;
    let trace = conn
        .request_json("GET", &paths::job_trace(ack.job()), "")
        .map_err(|e| format!("trace of a completed job: {e}"))?;
    if TraceResponse::from_json(&trace).is_none() {
        return Err(format!(
            "trace of completed job {} does not decode as a TraceResponse: {}",
            ack.job(),
            trace.render()
        ));
    }
    for round in 0..rounds {
        let target = mutate_job_id(rng, ack.job());
        let (code, body) = raw_request(addr, "GET", &paths::job_trace(&target), &[])
            .map_err(|e| format!("trace round {round} (id {target:?}): {e}"))?;
        let body_text = String::from_utf8(body).map_err(|_| {
            format!("trace round {round} (id {target:?}): status {code} with a non-UTF-8 body")
        })?;
        let doc = json::parse(&body_text).map_err(|e| {
            format!(
                "trace round {round} (id {target:?}): status {code} \
                 with non-JSON body {body_text:?}: {e}"
            )
        })?;
        if (200..300).contains(&code) {
            if TraceResponse::from_json(&doc).is_none() {
                return Err(format!(
                    "trace round {round} (id {target:?}): 2xx body is not a TraceResponse: \
                     {body_text}"
                ));
            }
        } else if doc.get("error").is_none() || doc.get("code").is_none() {
            return Err(format!(
                "trace round {round} (id {target:?}): status {code} without a structured \
                 ApiError: {body_text}"
            ));
        }
    }

    // The federation endpoints ride the same bar as the public ones.
    check_peer_wire(addr, rng, rounds)?;

    let (code, _) = conn
        .request_raw("GET", paths::HEALTHZ, "")
        .map_err(|e| format!("healthz after wire fuzz: {e}"))?;
    if code != 200 {
        return Err(format!("daemon unhealthy after wire fuzz: healthz {code}"));
    }
    Ok(())
}

/// Parse one raw response under the wire contract: a 2xx body is handed
/// back for DTO validation; a non-2xx body must be a structured
/// [`scalana_api::ApiError`] (`error` + `code` fields).
fn structured(code: u16, body: Vec<u8>, context: &str) -> Result<Option<Json>, String> {
    let text = String::from_utf8(body)
        .map_err(|_| format!("{context}: status {code} with a non-UTF-8 body"))?;
    let doc = json::parse(&text)
        .map_err(|e| format!("{context}: status {code} with non-JSON body {text:?}: {e}"))?;
    if (200..300).contains(&code) {
        return Ok(Some(doc));
    }
    if doc.get("error").is_none() || doc.get("code").is_none() {
        return Err(format!(
            "{context}: status {code} without a structured ApiError: {text}"
        ));
    }
    Ok(None)
}

/// Derive one peer-key mutant. Peer keys are 16 lowercase hex digits;
/// the arms cover the valid shape, case damage, truncation, oversize,
/// non-hex, traversal, emptiness, and percent-damage.
fn mutate_peer_key(rng: &mut TestRng) -> String {
    const HEX: &[u8] = b"0123456789abcdef";
    let valid: String = (0..16).map(|_| HEX[rng.gen_index(16)] as char).collect();
    match rng.gen_index(8) {
        0 => valid,
        1 => valid.to_uppercase(),
        2 => valid[..8].to_string(),
        3 => format!("{valid}{valid}"),
        4 => "zzzzzzzzzzzzzzzz".to_string(),
        5 => "../../store".to_string(),
        6 => String::new(),
        _ => "%00%ff%zz".to_string(),
    }
}

/// Derive one announce-body mutant. The only *valid* arm announces the
/// daemon's own address — already a member, so the shared daemon's ring
/// is never polluted with unreachable peers.
fn mutate_announce(rng: &mut TestRng, addr: &str) -> Vec<u8> {
    match rng.gen_index(7) {
        0 => format!(r#"{{"addr":"{addr}"}}"#).into_bytes(),
        1 => br#"{"addr":"not-an-address"}"#.to_vec(),
        2 => br#"{"addr":42}"#.to_vec(),
        3 => br#"{"peer":"127.0.0.1:7878"}"#.to_vec(),
        4 => br#"{"addr":"127.0.0.1:7878","extra":true}"#.to_vec(),
        5 => Vec::new(),
        _ => b"\xff\xfe{".to_vec(),
    }
}

/// Derive one write-through blob mutant for `POST /v1/peer/profile/<k>`.
/// Every arm is damaged somewhere — key/path mismatch, non-hex or
/// odd-length payloads, type confusion, missing fields, raw garbage —
/// because a *valid* blob requires a real profile image; the point is
/// that damage is rejected with a structured error, never accepted into
/// the cache and never a hang.
fn mutate_blob(rng: &mut TestRng, key: &str) -> Vec<u8> {
    match rng.gen_index(7) {
        // Well-formed hex that is not a loadable profile image.
        0 => format!(r#"{{"key":"{key}","payload":"deadbeef"}}"#).into_bytes(),
        // Key that cannot match the path key.
        1 => br#"{"key":"0000000000000000","payload":"deadbeef"}"#.to_vec(),
        // Odd-length hex.
        2 => format!(r#"{{"key":"{key}","payload":"abc"}}"#).into_bytes(),
        // Non-hex payload.
        3 => format!(r#"{{"key":"{key}","payload":"zzzz"}}"#).into_bytes(),
        // Missing payload.
        4 => format!(r#"{{"key":"{key}"}}"#).into_bytes(),
        // Type confusion.
        5 => format!(r#"{{"key":"{key}","payload":[1,2,3]}}"#).into_bytes(),
        // Raw garbage.
        _ => b"\x00\x01\x02{{{".to_vec(),
    }
}

/// Oracle 4b: federation wire fuzz. `GET /v1/peer/ring` must decode as
/// a [`RingView`]; `rounds` mutated keys on both read-through families
/// (`/v1/peer/profile/<key>`, `/v1/peer/psg/<key>`), announce bodies,
/// and write-through blobs must each get a complete HTTP answer — a
/// structured error or a decodable DTO, never a hang — and the daemon
/// must still serve `/v1/healthz` afterwards. A standalone daemon is a
/// single-member ring serving the same endpoints, so no peers are
/// needed to hold this contract.
pub fn check_peer_wire(addr: &str, rng: &mut TestRng, rounds: usize) -> Result<(), String> {
    let (code, body) =
        raw_request(addr, "GET", paths::PEER_RING, &[]).map_err(|e| format!("peer ring: {e}"))?;
    let doc = structured(code, body, "peer ring")?
        .ok_or_else(|| format!("peer ring must answer 200, got {code}"))?;
    if RingView::from_json(&doc).is_none() {
        return Err(format!(
            "peer ring body does not decode as a RingView: {}",
            doc.render()
        ));
    }

    for round in 0..rounds {
        // Mutated keys on both read-through families: a 2xx is a blob
        // for the exact key asked; anything else is a structured error.
        for family in ["profile", "psg"] {
            let key = mutate_peer_key(rng);
            let path = match family {
                "profile" => paths::peer_profile(&key),
                _ => paths::peer_psg(&key),
            };
            let context = format!("peer {family} round {round} (key {key:?})");
            let (code, body) =
                raw_request(addr, "GET", &path, &[]).map_err(|e| format!("{context}: {e}"))?;
            if let Some(doc) = structured(code, body, &context)? {
                let blob = scalana_api::PeerBlob::from_json(&doc)
                    .map_err(|e| format!("{context}: 2xx body is not a PeerBlob: {e:?}"))?;
                if blob.key != key {
                    return Err(format!(
                        "{context}: blob answered for foreign key {:?}",
                        blob.key
                    ));
                }
                blob.bytes()
                    .map_err(|e| format!("{context}: served payload is not valid hex: {e:?}"))?;
            }
        }

        // Announce mutants: accepted bodies answer the full ring view.
        let announce = mutate_announce(rng, addr);
        let context = format!("peer announce round {round}");
        let (code, body) = raw_request(addr, "POST", paths::PEER_ANNOUNCE, &announce)
            .map_err(|e| format!("{context}: {e}"))?;
        if let Some(doc) = structured(code, body, &context)? {
            if RingView::from_json(&doc).is_none() {
                return Err(format!(
                    "{context}: 2xx body is not a RingView: {}",
                    doc.render()
                ));
            }
        }

        // Write-through blob mutants: all damaged, all rejected cleanly.
        let key = mutate_peer_key(rng);
        let blob = mutate_blob(rng, &key);
        let context = format!("peer blob round {round} (key {key:?})");
        let (code, body) = raw_request(addr, "POST", &paths::peer_profile(&key), &blob)
            .map_err(|e| format!("{context}: {e}"))?;
        structured(code, body, &context)?;
    }

    let (code, _) = raw_request(addr, "GET", paths::HEALTHZ, &[])
        .map_err(|e| format!("healthz after peer fuzz: {e}"))?;
    if code != 200 {
        return Err(format!("daemon unhealthy after peer fuzz: healthz {code}"));
    }
    Ok(())
}
