//! Weighted generation of [`Spec`]s from a seeded [`TestRng`].
//!
//! Everything here is a pure function of the RNG stream: the same seed
//! always yields the same spec, which is what makes fuzzer failures
//! replayable from the seed printed in the repro dump.

use crate::spec::{CollKind, GExpr, GStmt, Spec};
use proptest::test_runner::TestRng;
use scalana_lang::ast::BinOp;

/// Statement-generation context: what is legal at the current position.
#[derive(Debug, Clone, Copy)]
struct Ctx {
    /// Remaining nesting budget for container statements.
    depth: u32,
    /// Number of enclosing loop variables ([`GExpr::Loop`] candidates).
    loops: usize,
    /// Computation-only position (inside rank-divergent control flow):
    /// no MPI, no helper calls, but rank-dependent expressions allowed.
    comp_only: bool,
    /// Helper calls allowed (false inside `helper` itself).
    allow_helper: bool,
    /// Inside the helper body: [`GExpr::HelperArg`] is in scope.
    in_helper: bool,
}

/// Deterministically generate one spec. `case_id` is baked into the
/// program as a parameter so every case's program is content-unique
/// (the daemon oracles rely on cross-case cache isolation).
pub fn gen_spec(rng: &mut TestRng, case_id: i64) -> Spec {
    let mut tags = 10i64;
    let main_len = 2 + rng.gen_index(3);
    let main = gen_body(
        rng,
        &mut tags,
        Ctx {
            depth: 2,
            loops: 0,
            comp_only: false,
            allow_helper: true,
            in_helper: false,
        },
        main_len,
    );
    let helper_len = 1 + rng.gen_index(2);
    let helper = gen_body(
        rng,
        &mut tags,
        Ctx {
            depth: 1,
            loops: 0,
            comp_only: false,
            allow_helper: false,
            in_helper: true,
        },
        helper_len,
    );
    Spec {
        case_id,
        p0: rng.gen_range(1i64..=50_000),
        p1: rng.gen_range(1i64..=50_000),
        main,
        helper,
        helper_ret: rng.gen_bool(),
    }
}

fn gen_body(rng: &mut TestRng, tags: &mut i64, ctx: Ctx, len: usize) -> Vec<GStmt> {
    (0..len).map(|_| gen_stmt(rng, tags, ctx)).collect()
}

/// A 1-2 statement body (the length roll hoisted out of call sites).
fn gen_small_body(rng: &mut TestRng, tags: &mut i64, ctx: Ctx) -> Vec<GStmt> {
    let len = 1 + rng.gen_index(2);
    gen_body(rng, tags, ctx, len)
}

/// Weighted statement choice. Weights are relative; container and
/// template arms are re-rolled to leaves when the context forbids them.
fn gen_stmt(rng: &mut TestRng, tags: &mut i64, ctx: Ctx) -> GStmt {
    if ctx.comp_only {
        return gen_comp_only_stmt(rng, tags, ctx);
    }
    // (weight, arm) table for the uniform context.
    const ARMS: &[(u32, u8)] = &[
        (14, 0), // Comp
        (5, 1),  // LetTemp
        (9, 2),  // For
        (4, 3),  // RankFor
        (6, 4),  // While
        (7, 5),  // IfUniform
        (5, 6),  // RankIf
        (14, 7), // Collective
        (8, 8),  // RingSendrecv
        (8, 9),  // PairedSendRecv
        (6, 10), // GatherToRoot
        (9, 11), // NonblockingRing
        (5, 12), // CallHelper
    ];
    let mut arm = pick(rng, ARMS);
    if ctx.depth == 0 && matches!(arm, 2..=6) {
        arm = if rng.gen_bool() { 0 } else { 7 };
    }
    if !ctx.allow_helper && arm == 12 {
        arm = 0;
    }
    let inner = Ctx {
        depth: ctx.depth.saturating_sub(1),
        ..ctx
    };
    match arm {
        0 => gen_comp(rng, ctx),
        1 => GStmt::LetTemp {
            expr: gen_expr(rng, 2, ctx),
        },
        2 => GStmt::For {
            bound: gen_expr(rng, 1, uniform(ctx)),
            cap: 1 + rng.gen_range(0i64..4),
            body: gen_small_body(
                rng,
                tags,
                Ctx {
                    loops: ctx.loops + 1,
                    ..inner
                },
            ),
        },
        3 => GStmt::RankFor {
            modulus: 2 + rng.gen_range(0i64..3),
            body: gen_small_body(
                rng,
                tags,
                Ctx {
                    loops: ctx.loops + 1,
                    comp_only: true,
                    ..inner
                },
            ),
        },
        4 => GStmt::While {
            start: gen_expr(rng, 1, uniform(ctx)),
            cap: 1 + rng.gen_range(0i64..4),
            body: gen_small_body(rng, tags, inner),
        },
        5 => {
            let then_body = gen_small_body(rng, tags, inner);
            let else_body = if rng.gen_bool() {
                gen_small_body(rng, tags, inner)
            } else {
                Vec::new()
            };
            GStmt::IfUniform {
                cond: gen_cond(rng, uniform(ctx)),
                then_body,
                else_body,
            }
        }
        6 => GStmt::RankIf {
            modulus: 2 + rng.gen_range(0i64..3),
            body: gen_small_body(
                rng,
                tags,
                Ctx {
                    comp_only: true,
                    ..inner
                },
            ),
        },
        7 => GStmt::Collective {
            kind: [
                CollKind::Barrier,
                CollKind::Bcast,
                CollKind::Reduce,
                CollKind::Allreduce,
                CollKind::Alltoall,
                CollKind::Allgather,
            ][rng.gen_index(6)],
            root: gen_expr(rng, 1, uniform(ctx)),
            bytes: gen_bytes(rng),
        },
        8 => GStmt::RingSendrecv {
            tag: fresh_tag(tags),
            bytes: gen_bytes(rng),
        },
        9 => GStmt::PairedSendRecv {
            tag: fresh_tag(tags),
            bytes: gen_bytes(rng),
            wildcard_src: rng.gen_bool(),
            wildcard_tag: rng.gen_index(4) == 0,
        },
        10 => GStmt::GatherToRoot {
            tag: fresh_tag(tags),
            bytes: gen_bytes(rng),
            wildcard_src: rng.gen_bool(),
            wildcard_tag: rng.gen_index(4) == 0,
        },
        11 => GStmt::NonblockingRing {
            tag: fresh_tag(tags),
            bytes: gen_bytes(rng),
            dist: 1 + rng.gen_range(0i64..2),
            wildcard_src: rng.gen_index(3) == 0,
            wait_each: rng.gen_bool(),
        },
        _ => GStmt::CallHelper {
            indirect: rng.gen_bool(),
            arg: gen_expr(rng, 1, uniform(ctx)),
        },
    }
}

fn gen_comp_only_stmt(rng: &mut TestRng, tags: &mut i64, ctx: Ctx) -> GStmt {
    const ARMS: &[(u32, u8)] = &[(50, 0), (10, 1), (15, 2), (10, 3), (15, 4)];
    let mut arm = pick(rng, ARMS);
    if ctx.depth == 0 && arm >= 2 {
        arm = 0;
    }
    let inner = Ctx {
        depth: ctx.depth.saturating_sub(1),
        ..ctx
    };
    match arm {
        0 => gen_comp(rng, ctx),
        1 => GStmt::LetTemp {
            expr: gen_expr(rng, 2, ctx),
        },
        2 => GStmt::For {
            bound: gen_expr(rng, 1, ctx),
            cap: 1 + rng.gen_range(0i64..4),
            body: gen_small_body(
                rng,
                tags,
                Ctx {
                    loops: ctx.loops + 1,
                    ..inner
                },
            ),
        },
        3 => GStmt::While {
            start: gen_expr(rng, 1, ctx),
            cap: 1 + rng.gen_range(0i64..4),
            body: gen_small_body(rng, tags, inner),
        },
        _ => GStmt::IfUniform {
            cond: gen_cond(rng, ctx),
            then_body: gen_small_body(rng, tags, inner),
            else_body: Vec::new(),
        },
    }
}

fn gen_comp(rng: &mut TestRng, ctx: Ctx) -> GStmt {
    // Comp cycle costs may be rank-dependent anywhere: they shift
    // timing, never matching.
    let rank_ok = Ctx {
        comp_only: true,
        ..ctx
    };
    GStmt::Comp {
        cycles: gen_expr(rng, 2, rank_ok),
        ins: rng.gen_bool(),
        lst: rng.gen_bool(),
        miss: rng.gen_index(3) == 0,
        brmiss: rng.gen_index(3) == 0,
    }
}

fn fresh_tag(tags: &mut i64) -> i64 {
    let t = *tags;
    *tags += 1;
    t
}

fn uniform(ctx: Ctx) -> Ctx {
    Ctx {
        comp_only: false,
        ..ctx
    }
}

fn pick(rng: &mut TestRng, arms: &[(u32, u8)]) -> u8 {
    let total: u32 = arms.iter().map(|(w, _)| w).sum();
    let mut roll = rng.gen_range(0..total);
    for (w, arm) in arms {
        if roll < *w {
            return *arm;
        }
        roll -= w;
    }
    arms[arms.len() - 1].1
}

/// Interesting integer literals: boundaries, small counts, and sizes
/// around the eager/rendezvous threshold.
const LITERALS: &[i64] = &[
    -100_000, -3, -1, 0, 1, 2, 3, 4, 7, 63, 64, 1000, 4096, 65_535, 65_536, 100_000,
];

/// Generate an arithmetic expression. `ctx.comp_only` gates
/// rank-dependence; `ctx.loops`/`ctx.in_helper` gate scoped leaves.
fn gen_expr(rng: &mut TestRng, depth: u32, ctx: Ctx) -> GExpr {
    if depth == 0 || rng.gen_index(3) == 0 {
        return gen_leaf(rng, ctx);
    }
    let a = Box::new(gen_expr(rng, depth - 1, ctx));
    let b = Box::new(gen_expr(rng, depth - 1, ctx));
    match rng.gen_index(9) {
        0 => GExpr::Bin(BinOp::Add, a, b),
        1 => GExpr::Bin(BinOp::Sub, a, b),
        2 => GExpr::Bin(BinOp::Mul, a, b),
        3 => GExpr::Bin(BinOp::Div, a, b),
        4 => GExpr::Bin(BinOp::Mod, a, b),
        5 => GExpr::Min(a, b),
        6 => GExpr::Max(a, b),
        7 => GExpr::Abs(a),
        _ => {
            if rng.gen_bool() {
                GExpr::Log2(a)
            } else {
                GExpr::Neg(a)
            }
        }
    }
}

/// Generate a branch condition: usually a comparison, sometimes raw
/// arithmetic (non-zero is truthy), sometimes a conjunction.
fn gen_cond(rng: &mut TestRng, ctx: Ctx) -> GExpr {
    let a = Box::new(gen_expr(rng, 1, ctx));
    let b = Box::new(gen_expr(rng, 1, ctx));
    match rng.gen_index(8) {
        0 => GExpr::Bin(BinOp::Lt, a, b),
        1 => GExpr::Bin(BinOp::Le, a, b),
        2 => GExpr::Bin(BinOp::Gt, a, b),
        3 => GExpr::Bin(BinOp::Ge, a, b),
        4 => GExpr::Bin(BinOp::Eq, a, b),
        5 => GExpr::Bin(BinOp::Ne, a, b),
        6 => GExpr::Bin(
            BinOp::And,
            Box::new(GExpr::Bin(BinOp::Lt, a, b.clone())),
            Box::new(GExpr::Bin(BinOp::Ne, b, Box::new(GExpr::Lit(0)))),
        ),
        _ => *a,
    }
}

fn gen_leaf(rng: &mut TestRng, ctx: Ctx) -> GExpr {
    loop {
        match rng.gen_index(8) {
            0..=2 => return GExpr::Lit(LITERALS[rng.gen_index(LITERALS.len())]),
            3 => return GExpr::P0,
            4 => return GExpr::P1,
            5 => return GExpr::Nprocs,
            6 => {
                if ctx.comp_only {
                    return GExpr::Rank;
                }
                return GExpr::CaseId;
            }
            _ => {
                if ctx.loops > 0 {
                    return GExpr::Loop(rng.gen_index(ctx.loops));
                }
                if ctx.in_helper {
                    return GExpr::HelperArg;
                }
                // Nothing scoped available; re-roll.
            }
        }
    }
}

/// Payload-size expression: boundary literals around the 64 KiB
/// eager/rendezvous threshold, plus a parameter-derived size.
fn gen_bytes(rng: &mut TestRng) -> GExpr {
    const SIZES: &[i64] = &[0, 1, 512, 4096, 65_535, 65_536, 65_537, 262_144];
    if rng.gen_index(5) == 0 {
        GExpr::Bin(
            BinOp::Mod,
            Box::new(GExpr::Abs(Box::new(GExpr::P0))),
            Box::new(GExpr::Lit(131_072)),
        )
    } else {
        GExpr::Lit(SIZES[rng.gen_index(SIZES.len())])
    }
}
