//! The fuzzing harness: seeds, case parameters, oracle scheduling,
//! shrinking, and the repro dump.
//!
//! Every case is a pure function of `(base seed, case index)`: the
//! per-case RNG seed is `base ^ fnv1a(case)` — the same derivation the
//! vendored mini-proptest uses — so a failure is replayable from the
//! two numbers printed in the dump. The base seed comes from
//! `WGEN_SEED`, falling back to `PROPTEST_SEED`, falling back to a
//! fixed constant; the case count from `WGEN_CASES` falling back to
//! `PROPTEST_CASES` falling back to 200.

use crate::gen::gen_spec;
use crate::oracle;
use crate::shrink;
use crate::spec::Spec;
use proptest::test_runner::TestRng;
use scalana_lang::ast::{Block, MpiOp, Program, StmtKind};
use scalana_lang::parse_program;
use scalana_lang::pretty::normalize_spans;
use std::fmt;

/// Default number of generated cases.
pub const DEFAULT_CASES: usize = 200;

/// Default base seed (overridden by `WGEN_SEED` / `PROPTEST_SEED`).
pub const DEFAULT_SEED: u64 = 0x5ca1_a11a_0000_0006;

/// Wire-fuzz mutants sent per case, per fuzzed endpoint (the submit
/// body and the trace job id are each mutated this many times).
const WIRE_ROUNDS: usize = 2;

/// Shrink budget: oracle re-evaluations spent minimizing one failure.
const SHRINK_BUDGET: usize = 400;

/// The candidate scale pools; one is chosen per case. Small on purpose
/// — each case runs real simulations for every scale several times.
const POOLS: [&[usize]; 4] = [&[2, 3], &[2, 4], &[3, 4], &[2, 3, 4]];

/// The extra scale every case's invariant oracle also runs at, checking
/// that templates stay matched at a process count the analysis pipeline
/// never touched.
const ALT_SCALE: usize = 5;

/// FNV-1a, the same derivation the vendored proptest runner uses for
/// per-case seeds — kept bit-compatible so seeds printed by either
/// harness mean the same thing.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The RNG seed for one case.
pub fn case_seed(base: u64, case: usize) -> u64 {
    base ^ fnv1a(&(case as u64).to_le_bytes())
}

/// An injected defect, used to demonstrate (and test) the failure path:
/// detection, shrinking, and the repro dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fault {
    /// No injected defect (the real fuzzing mode).
    #[default]
    None,
    /// Pretend programs must not contain collectives — most generated
    /// programs violate this, and the minimal repro is one statement.
    ForbidCollectives,
}

/// Which oracle a case failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Oracle {
    /// The injected-[`Fault`] pseudo-oracle.
    Fault,
    /// Pretty text re-parses and round-trips structurally.
    Lowering,
    /// Byte-identical artifacts across repeated cold runs.
    Determinism,
    /// Termination, conservation, and clock sanity at every scale.
    Invariants,
    /// Daemon cache differential over `/v1`.
    Daemon,
    /// Wire fuzz of the submit, metrics, and trace endpoints.
    Wire,
}

impl Oracle {
    /// Stable name used in repro dumps.
    pub fn name(self) -> &'static str {
        match self {
            Oracle::Fault => "fault",
            Oracle::Lowering => "lowering",
            Oracle::Determinism => "determinism",
            Oracle::Invariants => "invariants",
            Oracle::Daemon => "daemon",
            Oracle::Wire => "wire",
        }
    }
}

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of generated cases.
    pub cases: usize,
    /// Base seed.
    pub seed: u64,
    /// Live daemon address for the daemon and wire oracles; `None`
    /// runs only the in-process oracles.
    pub daemon: Option<String>,
    /// Injected defect (testing the harness itself).
    pub fault: Fault,
}

impl FuzzConfig {
    /// Read cases/seed from the environment (see module docs).
    pub fn from_env(daemon: Option<String>) -> FuzzConfig {
        fn parse_env<T: std::str::FromStr>(names: &[&str]) -> Option<T> {
            names
                .iter()
                .find_map(|name| std::env::var(name).ok()?.trim().parse().ok())
        }
        FuzzConfig {
            cases: parse_env(&["WGEN_CASES", "PROPTEST_CASES"]).unwrap_or(DEFAULT_CASES),
            seed: parse_env(&["WGEN_SEED", "PROPTEST_SEED"]).unwrap_or(DEFAULT_SEED),
            daemon,
            fault: Fault::None,
        }
    }
}

/// Per-case parameters derived from the case RNG (after the spec).
#[derive(Debug, Clone)]
pub struct CaseParams {
    /// The full scale set submitted to the pipeline and the daemon.
    pub full: Vec<usize>,
    /// A strict, non-empty subset submitted first (daemon oracle).
    pub subset: Vec<usize>,
    /// Scales the invariant oracle simulates at (`full` + `ALT_SCALE`).
    pub invariant_scales: Vec<usize>,
    /// Seed for the wire-fuzz mutation RNG.
    pub wire_seed: u64,
}

fn gen_params(rng: &mut TestRng, seed: u64) -> CaseParams {
    let full: Vec<usize> = POOLS[rng.gen_index(POOLS.len())].to_vec();
    // A strict, non-empty subset: any mask except 0 and all-ones.
    let mask = 1 + rng.gen_index((1usize << full.len()) - 2);
    let subset: Vec<usize> = full
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, &s)| s)
        .collect();
    let mut invariant_scales = full.clone();
    invariant_scales.push(ALT_SCALE);
    CaseParams {
        full,
        subset,
        invariant_scales,
        wire_seed: seed ^ fnv1a(b"wire"),
    }
}

/// A minimized fuzzer failure. The `Display` impl is the repro dump.
#[derive(Debug)]
pub struct Failure {
    /// Case index.
    pub case: usize,
    /// The derived per-case seed.
    pub case_seed: u64,
    /// Base seed (what to export to replay the whole run).
    pub base_seed: u64,
    /// Which oracle tripped.
    pub oracle: Oracle,
    /// The oracle's message.
    pub message: String,
    /// The original failing spec.
    pub spec: Spec,
    /// The shrunk spec (possibly identical to `spec`).
    pub minimized: Spec,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "wgen: {} oracle failed on case {}",
            self.oracle.name(),
            self.case
        )?;
        writeln!(f, "  {}", self.message)?;
        writeln!(
            f,
            "replay: WGEN_SEED={} WGEN_CASES={} (case seed {:#x})",
            self.base_seed,
            self.case + 1,
            self.case_seed
        )?;
        writeln!(
            f,
            "minimized to {} template statement(s); program:",
            self.minimized.stmt_count()
        )?;
        writeln!(f, "{}", self.minimized.pretty())?;
        write!(f, "original spec: {:?}", self.spec)
    }
}

/// Aggregate statistics of a clean run.
#[derive(Debug, Clone, Copy, Default)]
pub struct FuzzStats {
    /// Cases executed.
    pub cases: usize,
    /// Total spec-level statements generated.
    pub stmts: usize,
    /// Cases that exercised the daemon oracles.
    pub daemon_cases: usize,
    /// Wire-fuzz mutants sent.
    pub wire_requests: usize,
}

/// Does the lowered program contain any collective operation? (Used by
/// [`Fault::ForbidCollectives`].)
fn has_collective(program: &Program) -> bool {
    fn block(b: &Block) -> bool {
        b.stmts.iter().any(|s| match &s.kind {
            StmtKind::Mpi(op) => matches!(
                op,
                MpiOp::Barrier
                    | MpiOp::Bcast { .. }
                    | MpiOp::Reduce { .. }
                    | MpiOp::Allreduce { .. }
                    | MpiOp::Alltoall { .. }
                    | MpiOp::Allgather { .. }
            ),
            StmtKind::For { body, .. } | StmtKind::While { body, .. } => block(body),
            StmtKind::If {
                then_block,
                else_block,
                ..
            } => block(then_block) || else_block.as_ref().is_some_and(block),
            _ => false,
        })
    }
    program.functions.iter().any(|func| block(&func.body))
}

/// Run one oracle against one spec. `probe_id`, when set, replaces the
/// spec's case id — shrink probes against the daemon must each look
/// like a brand-new program, or the daemon's caches would answer from
/// state left by earlier probes and the measured deltas would lie.
fn run_oracle(
    config: &FuzzConfig,
    oracle: Oracle,
    spec: &Spec,
    params: &CaseParams,
    probe_id: Option<i64>,
) -> Result<(), String> {
    let mut spec = spec.clone();
    if let Some(id) = probe_id {
        spec.case_id = id;
    }
    let lowered = spec.lower();
    let text = scalana_lang::pretty::print_program(&lowered);
    // Everything downstream of the pretty printer analyzes the
    // *reparsed* program — the same bytes-in-spans view the daemon gets
    // from the submitted source, so artifacts are byte-comparable.
    let program = parse_program("wgen.mmpi", &text)
        .map_err(|e| format!("pretty output does not re-parse: {e}\n{text}"))?;
    match oracle {
        Oracle::Fault => match config.fault {
            Fault::None => Ok(()),
            Fault::ForbidCollectives => {
                if has_collective(&lowered) {
                    Err("injected fault: program contains a collective".to_string())
                } else {
                    Ok(())
                }
            }
        },
        Oracle::Lowering => {
            if normalize_spans(&lowered) != normalize_spans(&program) {
                return Err(format!(
                    "pretty round trip is not structurally identical\n{text}"
                ));
            }
            Ok(())
        }
        Oracle::Determinism => oracle::check_determinism(&program, &params.full).map(|_| ()),
        Oracle::Invariants => oracle::check_invariants(&program, &params.invariant_scales),
        Oracle::Daemon => {
            let addr = config
                .daemon
                .as_deref()
                .ok_or("daemon oracle without a daemon")?;
            let cold = oracle::cold_analysis(&program, &params.full)?;
            oracle::check_daemon(addr, &text, &params.subset, &params.full, &cold)
        }
        Oracle::Wire => {
            let addr = config
                .daemon
                .as_deref()
                .ok_or("wire oracle without a daemon")?;
            let mut rng = TestRng::from_seed(params.wire_seed);
            oracle::check_wire(addr, &text, &params.full, &mut rng, WIRE_ROUNDS)
        }
    }
}

fn oracles_for(config: &FuzzConfig) -> Vec<Oracle> {
    let mut oracles = Vec::new();
    if config.fault != Fault::None {
        oracles.push(Oracle::Fault);
    }
    oracles.extend([Oracle::Lowering, Oracle::Determinism, Oracle::Invariants]);
    if config.daemon.is_some() {
        oracles.extend([Oracle::Daemon, Oracle::Wire]);
    }
    oracles
}

/// Run the fuzzer. On the first oracle violation, shrink the failing
/// spec against that oracle and return the minimized [`Failure`].
pub fn run(config: &FuzzConfig) -> Result<FuzzStats, Box<Failure>> {
    let mut stats = FuzzStats::default();
    let oracles = oracles_for(config);
    for case in 0..config.cases {
        let seed = case_seed(config.seed, case);
        let mut rng = TestRng::from_seed(seed);
        let spec = gen_spec(&mut rng, case as i64);
        let params = gen_params(&mut rng, seed);
        for &oracle in &oracles {
            if let Err(message) = run_oracle(config, oracle, &spec, &params, None) {
                // Each probe gets a unique program identity; see
                // `run_oracle`.
                let mut probe = 0i64;
                let minimized = shrink::shrink(&spec, SHRINK_BUDGET, |cand| {
                    probe += 1;
                    let id = 1_000_000_000 + (case as i64) * 10_000 + probe;
                    run_oracle(config, oracle, cand, &params, Some(id)).is_err()
                });
                return Err(Box::new(Failure {
                    case,
                    case_seed: seed,
                    base_seed: config.seed,
                    oracle,
                    message,
                    spec,
                    minimized,
                }));
            }
        }
        stats.cases += 1;
        stats.stmts += spec.stmt_count();
        if config.daemon.is_some() {
            stats.daemon_cases += 1;
            // Submit-body mutants, trace-id mutants, and the four
            // peer-surface mutants per round (profile + psg keys,
            // announce body, write-through blob).
            stats.wire_requests += 6 * WIRE_ROUNDS;
        }
    }
    Ok(stats)
}
