//! Greedy shrinking of failing specs.
//!
//! The vendored mini-proptest deliberately has no shrinking, so the
//! fuzzer carries its own: given a spec and a predicate "does this still
//! fail the same oracle?", repeatedly try structural reductions (remove
//! a statement, splice a container's body into its parent) and then
//! expression simplifications (collapse expressions to literals, clamp
//! caps), keeping every candidate that still fails. Shrinking operates
//! on the [`Spec`] level, so every candidate still lowers to a
//! well-formed, matched-by-construction program — the predicate never
//! sees garbage, only smaller versions of the same failure.

use crate::spec::{GExpr, GStmt, Spec};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Remove,
    Splice,
    Simplify,
}

/// Shrink `spec` while `still_fails` holds, spending at most `budget`
/// predicate evaluations. Returns the smallest failing spec found.
pub fn shrink(spec: &Spec, budget: usize, mut still_fails: impl FnMut(&Spec) -> bool) -> Spec {
    let mut cur = spec.clone();
    let mut probes = 0usize;
    loop {
        let mut improved = false;
        'structural: for op in [Op::Remove, Op::Splice] {
            for target in 0..count_all(&cur) {
                if probes >= budget {
                    return cur;
                }
                let Some(cand) = apply(&cur, target, op) else {
                    continue;
                };
                probes += 1;
                if still_fails(&cand) {
                    cur = cand;
                    improved = true;
                    break 'structural;
                }
            }
        }
        if improved {
            continue;
        }
        // No structural reduction holds; flatten expressions. This can
        // unlock further structural steps (e.g. a simplified loop bound
        // makes the loop body removable), so loop once more after.
        let mut simplified = false;
        for target in 0..count_all(&cur) {
            if probes >= budget {
                return cur;
            }
            let Some(cand) = apply(&cur, target, Op::Simplify) else {
                continue;
            };
            probes += 1;
            if still_fails(&cand) {
                cur = cand;
                simplified = true;
            }
        }
        if !simplified {
            return cur;
        }
    }
}

fn count(stmts: &[GStmt]) -> usize {
    stmts
        .iter()
        .map(|s| {
            1 + match s {
                GStmt::For { body, .. }
                | GStmt::RankFor { body, .. }
                | GStmt::While { body, .. }
                | GStmt::RankIf { body, .. } => count(body),
                GStmt::IfUniform {
                    then_body,
                    else_body,
                    ..
                } => count(then_body) + count(else_body),
                _ => 0,
            }
        })
        .sum()
}

fn count_all(spec: &Spec) -> usize {
    // The helper body is always a reduction target, even while unused:
    // removing dead templates is free (the lowered program is unchanged,
    // so the predicate trivially holds).
    count(&spec.main) + count(&spec.helper)
}

/// Apply `op` to the `target`-th statement in pre-order (main body, then
/// helper body). `None` when the op does not apply there or is a no-op.
fn apply(spec: &Spec, target: usize, op: Op) -> Option<Spec> {
    let mut cand = spec.clone();
    let mut counter = 0usize;
    let mut changed = false;
    let found = apply_block(&mut cand.main, &mut counter, target, op, &mut changed)
        || apply_block(&mut cand.helper, &mut counter, target, op, &mut changed);
    (found && changed).then_some(cand)
}

fn apply_block(
    stmts: &mut Vec<GStmt>,
    counter: &mut usize,
    target: usize,
    op: Op,
    changed: &mut bool,
) -> bool {
    let mut i = 0;
    while i < stmts.len() {
        let idx = *counter;
        *counter += 1;
        if idx == target {
            match op {
                Op::Remove => {
                    stmts.remove(i);
                    *changed = true;
                }
                Op::Splice => {
                    let body = match stmts.remove(i) {
                        GStmt::For { body, .. }
                        | GStmt::RankFor { body, .. }
                        | GStmt::While { body, .. }
                        | GStmt::RankIf { body, .. } => body,
                        GStmt::IfUniform {
                            then_body,
                            mut else_body,
                            ..
                        } => {
                            let mut b = then_body;
                            b.append(&mut else_body);
                            b
                        }
                        other => {
                            // Not a container; restore and report no-op.
                            stmts.insert(i, other);
                            return true;
                        }
                    };
                    for (k, st) in body.into_iter().enumerate() {
                        stmts.insert(i + k, st);
                    }
                    *changed = true;
                }
                Op::Simplify => {
                    *changed = simplify_stmt(&mut stmts[i]);
                }
            }
            return true;
        }
        let applied_below = match &mut stmts[i] {
            GStmt::For { body, .. }
            | GStmt::RankFor { body, .. }
            | GStmt::While { body, .. }
            | GStmt::RankIf { body, .. } => apply_block(body, counter, target, op, changed),
            GStmt::IfUniform {
                then_body,
                else_body,
                ..
            } => {
                apply_block(then_body, counter, target, op, changed)
                    || apply_block(else_body, counter, target, op, changed)
            }
            _ => false,
        };
        if applied_below {
            return true;
        }
        i += 1;
    }
    false
}

/// Collapse a statement's expressions/knobs to their simplest forms.
/// Returns whether anything changed. Wildcard and waiting flags are kept
/// — flipping them would change which engine path the repro exercises.
fn simplify_stmt(s: &mut GStmt) -> bool {
    let mut changed = false;
    let mut simp = |e: &mut GExpr| {
        if *e != GExpr::Lit(1) {
            *e = GExpr::Lit(1);
            changed = true;
        }
    };
    match s {
        GStmt::Comp {
            cycles,
            ins,
            lst,
            miss,
            brmiss,
        } => {
            simp(cycles);
            for flag in [ins, lst, miss, brmiss] {
                if *flag {
                    *flag = false;
                    changed = true;
                }
            }
        }
        GStmt::LetTemp { expr } => simp(expr),
        GStmt::For { bound, cap, .. }
        | GStmt::While {
            start: bound, cap, ..
        } => {
            simp(bound);
            if *cap != 1 {
                *cap = 1;
                changed = true;
            }
        }
        GStmt::RankFor { modulus, .. } | GStmt::RankIf { modulus, .. } => {
            if *modulus != 2 {
                *modulus = 2;
                changed = true;
            }
        }
        GStmt::IfUniform { cond, .. } => simp(cond),
        GStmt::Collective { root, bytes, .. } => {
            simp(root);
            simp(bytes);
        }
        GStmt::RingSendrecv { bytes, .. }
        | GStmt::PairedSendRecv { bytes, .. }
        | GStmt::GatherToRoot { bytes, .. } => simp(bytes),
        GStmt::NonblockingRing { bytes, dist, .. } => {
            simp(bytes);
            if *dist != 1 {
                *dist = 1;
                changed = true;
            }
        }
        GStmt::CallHelper { arg, .. } => simp(arg),
    }
    changed
}
