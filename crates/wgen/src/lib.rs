//! `scalana-wgen`: deterministic MiniMPI workload generation and
//! differential testing.
//!
//! The crate generates random-but-sound MiniMPI programs ([`spec`] and
//! [`gen`]), runs them through four cross-checking oracles ([`oracle`]),
//! and shrinks any failure to a minimal pretty-printed repro
//! ([`shrink`], orchestrated by [`harness`]). See
//! `crates/wgen/tests/differential.rs` for the entry points CI runs.
//!
//! Everything is seed-deterministic: a run is identified by
//! `(WGEN_SEED, WGEN_CASES)` and any failure prints the exact
//! environment to replay it.

pub mod gen;
pub mod harness;
pub mod oracle;
pub mod shrink;
pub mod spec;

pub use harness::{Failure, Fault, FuzzConfig, FuzzStats, Oracle};
pub use spec::{GExpr, GStmt, Spec};

use proptest::test_runner::TestRng;

/// Generate the spec for `(base seed, case index)` — the same
/// derivation [`harness::run`] uses, exposed for benches and replays.
pub fn generate(base_seed: u64, case: usize) -> Spec {
    let mut rng = TestRng::from_seed(harness::case_seed(base_seed, case));
    gen::gen_spec(&mut rng, case as i64)
}
