//! The crash-recovery oracle.
//!
//! A store-backed daemon is SIGKILLed — no shutdown hook, no flush,
//! possibly mid-write — and restarted on the same `--store-dir`. The
//! restarted daemon must answer a resubmission of the pre-crash
//! workload with **zero re-simulation** (`scale_misses == 0`,
//! `scalana_sim_runs_total 0`) and serve a report and per-scale
//! profile images byte-identical to a cold in-process analysis
//! ([`oracle::cold_analysis`]). Any torn temp file or truncated entry
//! the kill left behind must be quarantined, never crash the warm
//! boot.
//!
//! The kill has to land on a *real* process (an in-process server
//! thread cannot be SIGKILLed without taking the test down), so this
//! test self-executes: the parent spawns its own test binary filtered
//! to [`crash_daemon_child`], which — gated on `WGEN_CRASH_STORE` —
//! boots a daemon and prints its address. Under a plain `cargo test`
//! the child test is an instant no-op pass.

use scalana_api::{paths, SubmitAck, SubmitRequest};
use scalana_service::client::Conn;
use scalana_service::json::Json;
use scalana_service::{Server, ServiceConfig};
use scalana_wgen::oracle;
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Env var carrying the store directory to the self-executed child.
const ENV: &str = "WGEN_CRASH_STORE";
const ADDR_PREFIX: &str = "CRASH_CHILD_ADDR ";
const JOB_TIMEOUT: Duration = Duration::from_secs(120);

/// Child mode: boot a store-backed daemon, announce its address on
/// stdout, and serve until killed. A no-op pass unless spawned by
/// [`sigkill_then_warm_restart_serves_cold_bytes_without_resimulation`]
/// (the gate is the env var only that parent sets).
#[test]
fn crash_daemon_child() {
    let Ok(dir) = std::env::var(ENV) else {
        return;
    };
    let server = Server::bind(&ServiceConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 16,
        store_dir: Some(dir),
        ..ServiceConfig::default()
    })
    .expect("child daemon binds");
    println!("{ADDR_PREFIX}{}", server.local_addr());
    std::io::stdout().flush().expect("announce address");
    let _ = server.run();
}

/// A spawned daemon process, killed on drop so a failing assertion
/// never leaks a listener.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(dir: &std::path::Path) -> Daemon {
        let exe = std::env::current_exe().expect("own test binary path");
        let mut child = Command::new(exe)
            .args(["crash_daemon_child", "--exact", "--nocapture"])
            .env(ENV, dir)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn child daemon");
        // The libtest harness chatters before our announcement — and
        // prints `test crash_daemon_child ... ` with no newline right
        // before it — so scan whole lines for the marker anywhere.
        let stdout = child.stdout.take().expect("piped child stdout");
        let mut addr = None;
        for line in BufReader::new(stdout).lines() {
            let line = line.expect("read child stdout");
            if let Some(pos) = line.find(ADDR_PREFIX) {
                addr = Some(line[pos + ADDR_PREFIX.len()..].trim().to_string());
                break;
            }
        }
        let addr = addr.expect("child announced its address before stdout closed");
        Daemon { child, addr }
    }

    /// SIGKILL — the crash under test. No shutdown request, no flush.
    fn kill(mut self) {
        self.child.kill().expect("SIGKILL child daemon");
        self.child.wait().expect("reap child daemon");
        std::mem::forget(self); // already reaped
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn submit(conn: &mut Conn, text: &str, scales: &[usize]) -> SubmitAck {
    let body = SubmitRequest::source("wgen.mmpi", text)
        .with_scales(scales.to_vec())
        .to_json()
        .render();
    let doc = conn.request_json("POST", paths::JOBS, &body).unwrap();
    SubmitAck::from_json(&doc).unwrap_or_else(|| panic!("not a submit ack: {}", doc.render()))
}

fn stat(conn: &mut Conn, key: &str) -> i64 {
    let stats = conn.request_json("GET", paths::STATS, "").unwrap();
    stats
        .get(key)
        .and_then(Json::as_i64)
        .unwrap_or_else(|| panic!("/stats missing {key}: {}", stats.render()))
}

#[test]
fn sigkill_then_warm_restart_serves_cold_bytes_without_resimulation() {
    if std::env::var(ENV).is_ok() {
        // We *are* the child (filtering ran every test): stay quiet.
        return;
    }
    let dir = std::env::temp_dir().join(format!("scalana-wgen-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // The workload comes from the generator, same as every other
    // oracle, and the ground truth from a cold in-process analysis.
    // Like the harness, analyze the *re-parse* of the pretty text —
    // that is the program the daemon sees (name included: source
    // locations in the report carry it).
    let spec = scalana_wgen::generate(0xC4A5_u64, 7);
    let text = spec.pretty();
    let program = scalana_lang::parse_program("wgen.mmpi", &text).expect("pretty text re-parses");
    let scales = [2usize, 4, 6];
    let cold = oracle::cold_analysis(&program, &scales).expect("cold analysis");

    // Phase 1: a victim daemon analyses the workload; wait until every
    // artifact (3 profiles + 1 PSG trace) is durable, then start a
    // second job and SIGKILL while its writes are in flight.
    let victim = Daemon::spawn(&dir);
    let mut conn = Conn::connect(&victim.addr).unwrap();
    let ack = submit(&mut conn, &text, &scales);
    let done = conn.wait_for_job(ack.job(), JOB_TIMEOUT).unwrap();
    assert_eq!(done.get("status").and_then(Json::as_str), Some("done"));
    let deadline = Instant::now() + Duration::from_secs(30);
    while stat(&mut conn, "store_entries") < scales.len() as i64 + 1 {
        assert!(
            Instant::now() < deadline,
            "write-behind never flushed the first job's artifacts"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let decoy = scalana_wgen::generate(0xC4A5_u64, 8).pretty();
    submit(&mut conn, &decoy, &scales); // not awaited: its writes race the kill
    victim.kill();

    // Phase 2: warm restart on the same directory. Whatever the kill
    // tore mid-write must be quarantined or absent — never fatal — and
    // the first job's artifacts must all come back.
    let successor = Daemon::spawn(&dir);
    let mut conn = Conn::connect(&successor.addr).unwrap();
    assert!(
        stat(&mut conn, "store_loaded") > scales.len() as i64,
        "warm boot must reload every artifact of the completed job"
    );

    // Resubmitting the pre-crash workload must not simulate anything.
    let ack = submit(&mut conn, &text, &scales);
    let done = conn.wait_for_job(ack.job(), JOB_TIMEOUT).unwrap();
    assert_eq!(done.get("status").and_then(Json::as_str), Some("done"));
    assert_eq!(
        stat(&mut conn, "scale_misses"),
        0,
        "every scale must be served from the durable store"
    );
    assert_eq!(stat(&mut conn, "scale_hits"), scales.len() as i64);
    let (_, metrics) = conn.request("GET", paths::METRICS, "").unwrap();
    assert!(
        metrics.contains("scalana_sim_runs_total 0"),
        "the restarted daemon must not have simulated at all"
    );

    // And the answers are the cold answers, byte for byte.
    let result = conn
        .request_json("GET", &paths::job_result(ack.job()), "")
        .unwrap();
    let served = result
        .get("report")
        .unwrap_or_else(|| panic!("result missing report: {}", result.render()))
        .render();
    assert_eq!(
        served, cold.report,
        "post-crash report diverges from the cold analysis"
    );
    for (&nprocs, expected) in scales.iter().zip(&cold.images) {
        let (code, image) = conn
            .request_raw("GET", &paths::job_profile(ack.job(), nprocs), "")
            .unwrap();
        assert_eq!(code, 200, "profile at scale {nprocs}");
        assert_eq!(
            &image[..],
            &expected[..],
            "profile image at scale {nprocs} diverges from the cold analysis"
        );
    }

    let _ = conn.request("POST", paths::SHUTDOWN, "");
    drop(successor);
    let _ = std::fs::remove_dir_all(&dir);
}
