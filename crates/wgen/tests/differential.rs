//! The fuzzer's CI entry points.
//!
//! `generated_workloads_pass_all_oracles` is the real run: `WGEN_CASES`
//! (default 200) generated programs through all four oracles —
//! determinism, cross-scale invariants, daemon cache differential over
//! real TCP `/v1`, and wire fuzz — against one shared daemon.
//!
//! The other tests exercise the harness itself: seed determinism of
//! generation, and the failure path (detection → shrinking → repro
//! dump) via an injected fault.

use scalana_service::{Server, ServiceConfig};
use scalana_wgen::{harness, Fault, FuzzConfig};
use std::sync::OnceLock;

/// One daemon for the whole test binary. Cache capacities are raised so
/// hundreds of unique programs never evict a live case's entries
/// between its two submissions (the stats predictions rely on that).
///
/// Only `generated_workloads_pass_all_oracles` may touch `/stats` —
/// the deltas account the whole daemon.
fn daemon_addr() -> &'static str {
    static ADDR: OnceLock<String> = OnceLock::new();
    ADDR.get_or_init(|| {
        let server = Server::bind(&ServiceConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 3,
            queue_capacity: 64,
            max_cached_results: 8192,
            max_cached_profiles: 16384,
            max_cached_psgs: 8192,
            ..ServiceConfig::default()
        })
        .expect("bind daemon");
        let addr = server.local_addr().to_string();
        // Runs until the test process exits; shutdown is not needed.
        std::thread::spawn(move || server.run());
        addr
    })
}

#[test]
fn generated_workloads_pass_all_oracles() {
    let config = FuzzConfig::from_env(Some(daemon_addr().to_string()));
    match harness::run(&config) {
        Ok(stats) => {
            assert_eq!(stats.cases, config.cases);
            assert_eq!(stats.daemon_cases, config.cases);
            assert!(
                stats.stmts >= 2 * stats.cases,
                "suspiciously small corpus: {stats:?}"
            );
        }
        Err(failure) => panic!("{failure}"),
    }
}

#[test]
fn generation_is_seed_deterministic() {
    for case in 0..20 {
        let a = scalana_wgen::generate(42, case);
        let b = scalana_wgen::generate(42, case);
        assert_eq!(a, b, "case {case} diverged under the same seed");
        assert_eq!(a.pretty(), b.pretty());
    }
    assert_ne!(
        scalana_wgen::generate(42, 0),
        scalana_wgen::generate(43, 0),
        "different seeds should explore different programs"
    );
}

/// The forced-failure smoke: inject a defect (`collectives are
/// forbidden`), watch the harness find it, and check the shrinker
/// reduces the repro to a single template statement whose
/// pretty-printed source still parses.
#[test]
fn injected_fault_shrinks_to_minimal_repro() {
    let mut config = FuzzConfig::from_env(None);
    config.cases = 50;
    config.fault = Fault::ForbidCollectives;
    let failure = harness::run(&config).expect_err("almost every case has a collective");

    assert_eq!(failure.oracle, scalana_wgen::Oracle::Fault);
    assert_eq!(
        failure.minimized.stmt_count(),
        1,
        "repro not minimal:\n{failure}"
    );
    let source = failure.minimized.pretty();
    scalana_lang::parse_program("repro.mmpi", &source)
        .unwrap_or_else(|e| panic!("minimized repro does not parse: {e}\n{source}"));

    let dump = failure.to_string();
    assert!(
        dump.contains("WGEN_SEED="),
        "dump lacks replay seed:\n{dump}"
    );
    assert!(
        dump.contains("fault oracle"),
        "dump lacks oracle name:\n{dump}"
    );
    assert!(
        dump.contains("fn main()"),
        "dump lacks the program:\n{dump}"
    );
}
