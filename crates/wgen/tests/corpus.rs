//! Regression corpus replay.
//!
//! Every `tests/corpus/*.mmpi` file — minimized repros from past fuzzer
//! findings, plus seeded sanity entries — is replayed through the
//! in-process oracles (determinism and cross-scale invariants) on every
//! test run, so a fixed bug stays fixed. See `tests/corpus/README.md`
//! for how to add an entry.

use std::path::PathBuf;

#[test]
fn corpus_replays_clean() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("tests/corpus exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "mmpi"))
        .collect();
    entries.sort();

    for path in &entries {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(path).unwrap();
        let program = scalana_lang::parse_program(&name, &text)
            .unwrap_or_else(|e| panic!("corpus entry {name} does not parse: {e}"));
        scalana_wgen::oracle::check_determinism(&program, &[2, 3, 4])
            .unwrap_or_else(|e| panic!("corpus entry {name} broke determinism: {e}"));
        scalana_wgen::oracle::check_invariants(&program, &[2, 3, 4, 5])
            .unwrap_or_else(|e| panic!("corpus entry {name} broke invariants: {e}"));
    }
}
