//! Fluent construction of analyses — the library-facing facade.
//!
//! The positional `analyze(program, scales, config)` family forced
//! every caller to materialize a full [`ScalAnaConfig`] even to turn a
//! single knob. The builder reads in the order one thinks:
//!
//! ```
//! use scalana_apps::{cg, CgOptions};
//! use scalana_core::Analysis;
//!
//! let app = cg::build(&CgOptions { na: 20_000, iterations: 3, delay_rank: None });
//! let analysis = Analysis::builder(&app)
//!     .scales([2, 4, 8])
//!     .abnorm_threshold(1.8)
//!     .top_k(3)
//!     .run()
//!     .unwrap();
//! assert_eq!(analysis.runs.len(), 3);
//! ```
//!
//! A builder targets either a bare [`Program`] or a built-in [`App`];
//! an app contributes its recommended platform model unless
//! [`machine`](AnalysisBuilder::machine) pins one explicitly — exactly
//! the `analyze` vs `analyze_app` split of the old free functions,
//! which survive as thin wrappers over this builder and therefore
//! produce byte-identical output.

use crate::pipeline::{assemble, profile_runs, Analysis, ScalAnaConfig};
use scalana_apps::App;
use scalana_lang::Program;
use scalana_mpisim::{MachineConfig, SimError};
use scalana_profile::ProfilerConfig;

/// What a builder analyzes: a bare program, or a built-in app carrying
/// its recommended platform model.
#[derive(Debug, Clone, Copy)]
pub enum AnalysisTarget<'a> {
    /// A parsed MiniMPI program (simulated on the configured machine).
    Program(&'a Program),
    /// A built-in workload (its machine model applies unless pinned).
    App(&'a App),
}

impl<'a> From<&'a Program> for AnalysisTarget<'a> {
    fn from(program: &'a Program) -> AnalysisTarget<'a> {
        AnalysisTarget::Program(program)
    }
}

impl<'a> From<&'a App> for AnalysisTarget<'a> {
    fn from(app: &'a App) -> AnalysisTarget<'a> {
        AnalysisTarget::App(app)
    }
}

/// Fluent analysis configuration; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct AnalysisBuilder<'a> {
    target: AnalysisTarget<'a>,
    scales: Vec<usize>,
    config: ScalAnaConfig,
    /// Set once [`machine`](AnalysisBuilder::machine) is called: an app
    /// target then no longer substitutes its recommended model.
    machine_pinned: bool,
}

impl Analysis {
    /// Start building an analysis of a [`Program`] or [`App`].
    pub fn builder<'a>(target: impl Into<AnalysisTarget<'a>>) -> AnalysisBuilder<'a> {
        AnalysisBuilder {
            target: target.into(),
            scales: vec![4, 8, 16, 32],
            config: ScalAnaConfig::default(),
            machine_pinned: false,
        }
    }
}

impl<'a> AnalysisBuilder<'a> {
    /// The process counts to profile at (ascending; default
    /// `[4, 8, 16, 32]`).
    pub fn scales(mut self, scales: impl IntoIterator<Item = usize>) -> Self {
        self.scales = scales.into_iter().collect();
        self
    }

    /// Replace the whole configuration (knob methods called afterwards
    /// still apply on top). An [`App`] target keeps substituting its
    /// machine model unless [`machine`](AnalysisBuilder::machine) pins
    /// one.
    pub fn config(mut self, config: ScalAnaConfig) -> Self {
        self.config = config;
        self
    }

    /// Pin the platform model, overriding even an app's recommended
    /// one.
    pub fn machine(mut self, machine: MachineConfig) -> Self {
        self.config.machine = machine;
        self.machine_pinned = true;
        self
    }

    /// Detection threshold `AbnormThd` (paper §IV-C).
    pub fn abnorm_threshold(mut self, threshold: f64) -> Self {
        self.config.detect.abnorm_thd = threshold;
        self
    }

    /// How many root causes to report.
    pub fn top_k(mut self, top_k: usize) -> Self {
        self.config.detect.top_k = top_k;
        self
    }

    /// Static-analysis loop unrolling bound `MaxLoopDepth`.
    pub fn max_loop_depth(mut self, depth: u32) -> Self {
        self.config.psg.max_loop_depth = depth;
        self
    }

    /// Toggle PSG contraction (on by default).
    pub fn contract(mut self, contract: bool) -> Self {
        self.config.psg.contract = contract;
        self
    }

    /// Replace the profiler configuration (sampling, compression, ...).
    pub fn profiler(mut self, profiler: ProfilerConfig) -> Self {
        self.config.profiler = profiler;
        self
    }

    /// Override one program parameter for every run.
    pub fn param(mut self, name: impl Into<String>, value: i64) -> Self {
        self.config.params.insert(name.into(), value);
        self
    }

    /// The effective `(program, config)` pair this builder will run:
    /// an app target substitutes its recommended machine model unless
    /// one was pinned.
    fn resolve(&self) -> (&'a Program, ScalAnaConfig) {
        match self.target {
            AnalysisTarget::Program(program) => (program, self.config.clone()),
            AnalysisTarget::App(app) => {
                let mut config = self.config.clone();
                if !self.machine_pinned {
                    config.machine = app.machine.clone();
                }
                (&app.program, config)
            }
        }
    }

    /// Run the full pipeline: `ScalAna-static` + indirect-call
    /// discovery, one profiled run per scale (in parallel), then
    /// `ScalAna-detect`.
    pub fn run(self) -> Result<Analysis, SimError> {
        let (program, config) = self.resolve();
        Ok(assemble(
            profile_runs(program, &self.scales, &config)?,
            &config,
        ))
    }

    /// Uninstrumented speedups over the configured scales (first scale
    /// is the baseline) — the §VI-D before/after-fix curves.
    pub fn speedup_curve(self) -> Result<Vec<(usize, f64)>, SimError> {
        let (program, config) = self.resolve();
        crate::pipeline::speedup_curve(program, &self.scales, &config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{analyze, analyze_app};
    use scalana_apps::{cg, CgOptions};

    fn small_cg() -> App {
        cg::build(&CgOptions {
            na: 20_000,
            iterations: 3,
            delay_rank: None,
        })
    }

    #[test]
    fn builder_matches_free_functions_byte_for_byte() {
        let app = small_cg();
        let built = Analysis::builder(&app).scales([2, 4]).run().unwrap();
        let legacy = analyze_app(&app, &[2, 4], &ScalAnaConfig::default()).unwrap();
        assert_eq!(built.report.render(), legacy.report.render());
        assert_eq!(built.runs.len(), legacy.runs.len());

        // Program target: no machine substitution, same as `analyze`.
        let built = Analysis::builder(&app.program)
            .scales([2, 4])
            .run()
            .unwrap();
        let legacy = analyze(&app.program, &[2, 4], &ScalAnaConfig::default()).unwrap();
        assert_eq!(built.report.render(), legacy.report.render());
    }

    #[test]
    fn knob_methods_map_onto_the_config() {
        let app = small_cg();
        let builder = Analysis::builder(&app)
            .scales([2, 4, 8])
            .abnorm_threshold(1.75)
            .top_k(7)
            .max_loop_depth(3)
            .contract(false)
            .param("N", 42);
        assert_eq!(builder.scales, vec![2, 4, 8]);
        assert!((builder.config.detect.abnorm_thd - 1.75).abs() < 1e-12);
        assert_eq!(builder.config.detect.top_k, 7);
        assert_eq!(builder.config.psg.max_loop_depth, 3);
        assert!(!builder.config.psg.contract);
        assert_eq!(builder.config.params["N"], 42);

        // `config()` replaces wholesale; later knobs still apply.
        let builder = Analysis::builder(&app.program)
            .config(ScalAnaConfig::default())
            .top_k(2);
        assert_eq!(builder.config.detect.top_k, 2);
    }

    #[test]
    fn app_machine_applies_unless_pinned() {
        let app = small_cg();
        // Unpinned: the app's machine model, exactly like analyze_app.
        let (_, config) = Analysis::builder(&app).resolve();
        assert_eq!(
            format!("{:?}", config.machine),
            format!("{:?}", app.machine)
        );
        // Pinned: the explicit model wins, even against an app.
        let custom = MachineConfig::default();
        let (_, config) = Analysis::builder(&app).machine(custom.clone()).resolve();
        assert_eq!(format!("{:?}", config.machine), format!("{custom:?}"));
    }

    #[test]
    fn speedup_curve_runs_through_the_builder() {
        let app = small_cg();
        let curve = Analysis::builder(&app)
            .scales([2, 4])
            .speedup_curve()
            .unwrap();
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0], (2, 1.0));
    }
}
