//! The end-to-end analysis pipeline.

use crossbeam::thread;
use scalana_apps::App;
use scalana_detect::{detect, DetectConfig, DetectionReport};
use scalana_graph::{build_psg, Ppg, Psg, PsgOptions};
use scalana_lang::Program;
use scalana_mpisim::{ChainHook, Hook, MachineConfig, SimConfig, SimError, Simulation};
use scalana_profile::recorder::{
    discover_indirect_calls, discover_indirect_calls_traced, replay_indirect_calls, DiscoveryRound,
};
use scalana_profile::{ProfileData, ProfilerConfig, ScalAnaProfiler};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of one full analysis.
#[derive(Debug, Clone, Default)]
pub struct ScalAnaConfig {
    /// Static-analysis knobs (`MaxLoopDepth`, contraction).
    pub psg: PsgOptions,
    /// Profiler knobs (sampling frequency, compression, ...).
    pub profiler: ProfilerConfig,
    /// Detection knobs (`AbnormThd`, aggregation, pruning).
    pub detect: DetectConfig,
    /// Platform model (overridden by [`analyze_app`] with the app's).
    pub machine: MachineConfig,
    /// Program-parameter overrides applied to every run.
    pub params: HashMap<String, i64>,
}

/// Summary of one profiled run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Process count.
    pub nprocs: usize,
    /// End-to-end virtual time (with the profiler attached).
    pub total_time: f64,
    /// Profiler storage bytes.
    pub storage_bytes: u64,
    /// Timer samples taken.
    pub sample_count: u64,
    /// Aggregated communication-dependence edges.
    pub comm_edges: usize,
}

impl RunSummary {
    /// Summarize one collected profile.
    pub fn of_profile(nprocs: usize, data: &ProfileData) -> RunSummary {
        RunSummary {
            nprocs,
            total_time: data.rank_elapsed.iter().copied().fold(0.0, f64::max),
            storage_bytes: data.storage_bytes,
            sample_count: data.sample_count,
            comm_edges: data.comm_edge_count(),
        }
    }
}

/// Output of the profiling stage (`ScalAna-prof`, workflow steps 1–2):
/// the indirect-call-refined PSG plus one collected profile per scale.
///
/// This is the artifact the real tool persists between its profiling and
/// detection processes (`scalana_profile::store` serializes each profile
/// to a self-contained image); `scalana-service` keeps the images in its
/// content-addressed cache and serves them per job.
#[derive(Debug)]
pub struct ProfiledRuns {
    /// The (indirect-call-refined) PSG.
    pub psg: Arc<Psg>,
    /// Ascending process counts, parallel to `profiles`.
    pub scales: Vec<usize>,
    /// One collected profile per scale.
    pub profiles: Vec<ProfileData>,
}

/// Everything one analysis produces.
#[derive(Debug)]
pub struct Analysis {
    /// The (indirect-call-refined) PSG.
    pub psg: Arc<Psg>,
    /// Per-scale run summaries (ascending process counts).
    pub runs: Vec<RunSummary>,
    /// Per-scale PPGs.
    pub ppgs: Vec<Ppg>,
    /// The detection report.
    pub report: DetectionReport,
    /// Wall-clock seconds the post-mortem detection took (Table IV).
    pub detect_seconds: f64,
}

/// `ScalAna-static` plus indirect-call discovery: build the PSG and
/// refine it with one small discovery run at `discovery_scale`.
///
/// The result depends only on the program, the PSG options, and the
/// discovery scale (the discovery simulation runs with a default
/// machine/parameter configuration), which is what makes refined PSGs
/// reusable across analyses that share a smallest scale.
pub fn refined_psg(
    program: &Program,
    config: &ScalAnaConfig,
    discovery_scale: usize,
) -> Result<Psg, SimError> {
    let mut psg = build_psg(program, &config.psg);
    discover_indirect_calls(program, &mut psg, discovery_scale)?;
    Ok(psg)
}

/// [`refined_psg`], additionally returning the discovery trace: each
/// round's `(context, statement, callee)` resolutions in application
/// order. Feeding the trace to [`replay_refined_psg`] rebuilds the
/// identical refined PSG without running the discovery simulation —
/// the service persists these traces so a restarted daemon skips
/// discovery entirely.
pub fn refined_psg_traced(
    program: &Program,
    config: &ScalAnaConfig,
    discovery_scale: usize,
) -> Result<(Psg, Vec<DiscoveryRound>), SimError> {
    let mut psg = build_psg(program, &config.psg);
    let (_, trace) = discover_indirect_calls_traced(program, &mut psg, discovery_scale)?;
    Ok((psg, trace))
}

/// Rebuild a refined PSG from a recorded discovery trace: build the
/// static PSG and replay the recorded resolution rounds in order.
/// Context ids are allocation-ordered, so the result is structurally
/// identical to the PSG the trace was recorded from. Zero simulation.
pub fn replay_refined_psg(
    program: &Program,
    config: &ScalAnaConfig,
    trace: &[DiscoveryRound],
) -> Psg {
    let mut psg = build_psg(program, &config.psg);
    replay_indirect_calls(&mut psg, trace);
    psg
}

/// One profiled run (`ScalAna-prof` at a single process count): an
/// instrumented simulation over an already-refined PSG.
///
/// The output is a pure function of `(program, psg, profiler, machine,
/// params, nprocs)` — it does not depend on which other scales the
/// surrounding analysis requests — so callers (notably the service's
/// per-scale profile cache) may profile each scale independently, mix
/// freshly simulated and previously persisted [`ProfileData`], and still
/// assemble byte-identical reports.
pub fn profile_one_scale(
    program: &Program,
    psg: &Psg,
    config: &ScalAnaConfig,
    nprocs: usize,
) -> Result<ProfileData, SimError> {
    profile_one_scale_on(
        program,
        psg,
        config,
        &Arc::new(config.machine.clone()),
        nprocs,
    )
}

/// [`profile_one_scale`] with an extra observer hook chained after the
/// profiler, for callers that watch the simulation (event rates, wall
/// time) without participating in it.
///
/// The observer's callbacks must return `0.0` virtual-time cost —
/// anything else would perturb the rank clocks and break the
/// byte-identical-profiles guarantee documented on
/// [`profile_one_scale`]. The profile returned is exactly what the
/// unobserved call produces.
///
/// Generic over the observer (not `&mut dyn Hook`) so the whole
/// profiler + observer chain monomorphizes: the simulator makes one
/// virtual call per event either way, and the observer's counting
/// inlines behind it — always-on observation must not add a second
/// dispatch to every simulated event.
pub fn profile_one_scale_observed<H: Hook>(
    program: &Program,
    psg: &Psg,
    config: &ScalAnaConfig,
    nprocs: usize,
    observer: &mut H,
) -> Result<ProfileData, SimError> {
    let mut sim_config = SimConfig::with_nprocs(nprocs);
    sim_config.machine = Arc::new(config.machine.clone());
    sim_config.params = config.params.clone();
    let mut profiler = ScalAnaProfiler::new(config.profiler.clone());
    let mut chained = ChainHook(&mut profiler, observer);
    Simulation::new(program, psg, sim_config)
        .with_hook(&mut chained)
        .run()
        .map(|_| profiler.take_data())
}

/// [`profile_one_scale`] with the platform model already behind an
/// `Arc`, so multi-scale callers share one copy across their runs.
fn profile_one_scale_on(
    program: &Program,
    psg: &Psg,
    config: &ScalAnaConfig,
    machine: &Arc<MachineConfig>,
    nprocs: usize,
) -> Result<ProfileData, SimError> {
    let mut sim_config = SimConfig::with_nprocs(nprocs);
    sim_config.machine = Arc::clone(machine);
    sim_config.params = config.params.clone();
    let mut profiler = ScalAnaProfiler::new(config.profiler.clone());
    Simulation::new(program, psg, sim_config)
        .with_hook(&mut profiler)
        .run()
        .map(|_| profiler.take_data())
}

/// Profiling stage (`ScalAna-prof`): build the PSG, resolve indirect
/// calls at the smallest scale, then run one instrumented simulation per
/// scale in parallel over the now-immutable PSG.
pub fn profile_runs(
    program: &Program,
    scales: &[usize],
    config: &ScalAnaConfig,
) -> Result<ProfiledRuns, SimError> {
    assert!(!scales.is_empty(), "need at least one scale");
    // Steps 1 + 2a: ScalAna-static, then indirect-call discovery at the
    // smallest scale.
    let psg = Arc::new(refined_psg(program, config, scales[0])?);

    // Step 2b: profiled runs, one per scale, in parallel (each is an
    // independent [`profile_one_scale`] over the now-immutable PSG). The
    // platform model is shared behind one `Arc` — no per-run deep copy.
    let machine = Arc::new(config.machine.clone());
    let mut profiles: Vec<Option<Result<ProfileData, SimError>>> =
        (0..scales.len()).map(|_| None).collect();
    thread::scope(|scope| {
        for (slot, &nprocs) in profiles.iter_mut().zip(scales) {
            let psg = Arc::clone(&psg);
            let machine = Arc::clone(&machine);
            scope.spawn(move |_| {
                *slot = Some(profile_one_scale_on(
                    program, &psg, config, &machine, nprocs,
                ));
            });
        }
    })
    .expect("scale-run threads do not panic");

    let profiles = profiles
        .into_iter()
        .map(|slot| slot.expect("thread filled its slot"))
        .collect::<Result<Vec<ProfileData>, SimError>>()?;
    Ok(ProfiledRuns {
        psg,
        scales: scales.to_vec(),
        profiles,
    })
}

/// Detection stage (`ScalAna-detect`): assemble one PPG per profiled
/// scale and run non-scalable/abnormal detection plus backtracking.
/// Runs post-mortem — the profiles may come straight from
/// [`profile_runs`] or be reloaded from persisted images.
pub fn assemble(runs: ProfiledRuns, config: &ScalAnaConfig) -> Analysis {
    let ProfiledRuns {
        psg,
        scales,
        profiles,
    } = runs;
    let summaries: Vec<RunSummary> = profiles
        .iter()
        .zip(&scales)
        .map(|(data, &nprocs)| RunSummary::of_profile(nprocs, data))
        .collect();

    // Per-scale PPG assembly is independent; fan out the same way
    // `profile_runs` does instead of folding scale-by-scale.
    let mut slots: Vec<Option<Ppg>> = (0..profiles.len()).map(|_| None).collect();
    thread::scope(|scope| {
        for (slot, data) in slots.iter_mut().zip(profiles) {
            let psg = Arc::clone(&psg);
            scope.spawn(move |_| {
                *slot = Some(data.into_ppg(psg));
            });
        }
    })
    .expect("ppg-assembly threads do not panic");
    let ppgs: Vec<Ppg> = slots
        .into_iter()
        .map(|slot| slot.expect("thread filled its slot"))
        .collect();

    // Step 3: ScalAna-detect (timed for Table IV).
    let started = Instant::now();
    let refs: Vec<&Ppg> = ppgs.iter().collect();
    let report = detect(&refs, &config.detect);
    let detect_seconds = started.elapsed().as_secs_f64();

    Analysis {
        psg,
        runs: summaries,
        ppgs,
        report,
        detect_seconds,
    }
}

/// Run the full pipeline on a program over ascending process counts.
///
/// Thin wrapper over [`Analysis::builder`] — the fluent API is the
/// primary entry point; this positional form is kept for existing
/// callers and produces byte-identical output.
pub fn analyze(
    program: &Program,
    scales: &[usize],
    config: &ScalAnaConfig,
) -> Result<Analysis, SimError> {
    Analysis::builder(program)
        .config(config.clone())
        .scales(scales.iter().copied())
        .run()
}

/// Analyze an [`App`] using its recommended platform model.
///
/// Thin wrapper over [`Analysis::builder`] with an app target (which
/// substitutes the app's machine model, exactly as this function
/// always did).
pub fn analyze_app(
    app: &App,
    scales: &[usize],
    config: &ScalAnaConfig,
) -> Result<Analysis, SimError> {
    Analysis::builder(app)
        .config(config.clone())
        .scales(scales.iter().copied())
        .run()
}

/// Uninstrumented speedups over ascending scales (first scale is the
/// baseline) — the §VI-D before/after-fix curves.
///
/// Indirect calls are resolved first (at the smallest scale, exactly as
/// [`profile_runs`] does), so the curves simulate over the same refined
/// PSG as the analysis they are compared against.
pub fn speedup_curve(
    program: &Program,
    scales: &[usize],
    config: &ScalAnaConfig,
) -> Result<Vec<(usize, f64)>, SimError> {
    assert!(!scales.is_empty(), "need at least one scale");
    let mut psg = build_psg(program, &config.psg);
    discover_indirect_calls(program, &mut psg, scales[0])?;
    let machine = Arc::new(config.machine.clone());
    let mut times = Vec::with_capacity(scales.len());
    for &nprocs in scales {
        let mut sim_config = SimConfig::with_nprocs(nprocs);
        sim_config.machine = Arc::clone(&machine);
        sim_config.params = config.params.clone();
        let total = Simulation::new(program, &psg, sim_config)
            .run()?
            .total_time();
        times.push((nprocs, total));
    }
    let baseline = times[0].1;
    Ok(times.into_iter().map(|(p, t)| (p, baseline / t)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalana_apps::{cg, zeusmp, CgOptions};

    #[test]
    fn analyze_produces_runs_ppgs_and_report() {
        let app = cg::build(&CgOptions {
            na: 20_000,
            iterations: 3,
            delay_rank: None,
        });
        let analysis = analyze_app(&app, &[2, 4, 8], &ScalAnaConfig::default()).unwrap();
        assert_eq!(analysis.runs.len(), 3);
        assert_eq!(analysis.ppgs.len(), 3);
        assert!(analysis.runs.iter().all(|r| r.total_time > 0.0));
        assert!(analysis.runs.iter().all(|r| r.storage_bytes > 0));
        assert!(analysis.detect_seconds >= 0.0);
    }

    #[test]
    fn zeusmp_analysis_finds_paper_root_cause() {
        let app = zeusmp::build(false);
        let analysis = analyze_app(&app, &[4, 8, 16, 32], &ScalAnaConfig::default()).unwrap();
        assert!(
            analysis.report.found_at("bval3d.F:155"),
            "expected bval3d.F:155 in:\n{}",
            analysis.report.render()
        );
    }

    #[test]
    fn staged_profile_then_assemble_matches_analyze() {
        let app = cg::build(&CgOptions {
            na: 20_000,
            iterations: 3,
            delay_rank: None,
        });
        let config = ScalAnaConfig {
            machine: app.machine.clone(),
            ..ScalAnaConfig::default()
        };
        let runs = profile_runs(&app.program, &[2, 4], &config).unwrap();
        assert_eq!(runs.scales, vec![2, 4]);
        assert_eq!(runs.profiles.len(), 2);
        let staged = assemble(runs, &config);
        let direct = analyze(&app.program, &[2, 4], &config).unwrap();
        assert_eq!(staged.report.render(), direct.report.render());
        assert_eq!(staged.runs.len(), direct.runs.len());
    }

    #[test]
    fn independently_profiled_scales_assemble_byte_identical() {
        // The service's per-scale cache relies on this: profiling each
        // scale on its own (against the same refined PSG) and assembling
        // the mix must reproduce the cold `analyze` output exactly.
        let app = cg::build(&CgOptions {
            na: 20_000,
            iterations: 3,
            delay_rank: None,
        });
        let config = ScalAnaConfig {
            machine: app.machine.clone(),
            ..ScalAnaConfig::default()
        };
        let scales = [2usize, 4, 8];
        let psg = Arc::new(refined_psg(&app.program, &config, scales[0]).unwrap());
        // Deliberately out of order — each profile is independent.
        let p8 = profile_one_scale(&app.program, &psg, &config, 8).unwrap();
        let p2 = profile_one_scale(&app.program, &psg, &config, 2).unwrap();
        let p4 = profile_one_scale(&app.program, &psg, &config, 4).unwrap();
        let staged = assemble(
            ProfiledRuns {
                psg,
                scales: scales.to_vec(),
                profiles: vec![p2, p4, p8],
            },
            &config,
        );
        let direct = analyze(&app.program, &scales, &config).unwrap();
        assert_eq!(staged.report.render(), direct.report.render());
        for (a, b) in staged.ppgs.iter().zip(&direct.ppgs) {
            assert_eq!(a.nprocs, b.nprocs);
            assert_eq!(a.rank_elapsed, b.rank_elapsed);
        }
    }

    #[test]
    fn speedup_curve_is_baselined_at_one() {
        let app = cg::build(&CgOptions {
            na: 30_000,
            iterations: 3,
            delay_rank: None,
        });
        let curve = speedup_curve(&app.program, &[2, 4, 8], &ScalAnaConfig::default()).unwrap();
        assert_eq!(curve[0], (2, 1.0));
        assert!(curve[2].1 > curve[1].1, "speedup grows: {curve:?}");
    }
}
