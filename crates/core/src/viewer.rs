//! `ScalAna-viewer` stand-in: map report locations back to code.
//!
//! The paper's GUI shows the root-cause vertices with their calling
//! paths (upper pane) and the corresponding code snippets (lower pane).
//! This module produces the lower pane: given a `file:line` from a
//! report, find the statement planted at that location and pretty-print
//! it.

use scalana_detect::DetectionReport;
use scalana_lang::ast::{Block, Program, Stmt, StmtKind};
use scalana_lang::pretty;
use std::fmt::Write as _;

/// Find the statement at a report location (`file:line`).
pub fn find_stmt<'p>(program: &'p Program, location: &str) -> Option<&'p Stmt> {
    fn walk<'p>(block: &'p Block, location: &str) -> Option<&'p Stmt> {
        for stmt in &block.stmts {
            if stmt.span.file_line() == location {
                return Some(stmt);
            }
            let found = match &stmt.kind {
                StmtKind::For { body, .. } | StmtKind::While { body, .. } => walk(body, location),
                StmtKind::If {
                    then_block,
                    else_block,
                    ..
                } => walk(then_block, location)
                    .or_else(|| else_block.as_ref().and_then(|b| walk(b, location))),
                _ => None,
            };
            if found.is_some() {
                return found;
            }
        }
        None
    }
    program
        .functions
        .iter()
        .find_map(|f| walk(&f.body, location))
}

/// Pretty-print the statement at a location, if it exists.
pub fn code_snippet(program: &Program, location: &str) -> Option<String> {
    let stmt = find_stmt(program, location)?;
    // Render via a one-statement block, then strip the braces.
    let mut out = String::new();
    let block = Block {
        stmts: vec![stmt.clone()],
    };
    let func = scalana_lang::ast::Function {
        name: "__snippet".to_string(),
        params: vec![],
        body: block,
        span: stmt.span.clone(),
    };
    let program = Program {
        file_name: String::new(),
        params: vec![],
        functions: vec![func],
        next_node_id: 0,
    };
    let printed = pretty::print_program(&program);
    for line in printed.lines() {
        if line.starts_with("fn __snippet") || line.trim() == "}" && out.is_empty() {
            continue;
        }
        let _ = writeln!(out, "{}", line.strip_prefix("    ").unwrap_or(line));
    }
    // Drop the trailing function brace.
    let trimmed = out.trim_end().trim_end_matches('}').trim_end().to_string();
    Some(trimmed)
}

/// Render the GUI-style view: report plus code snippets for the top
/// root causes.
pub fn render_with_snippets(program: &Program, report: &DetectionReport, top: usize) -> String {
    let mut out = report.render();
    let _ = writeln!(out, "\n-- Code snippets --");
    for cause in report.root_causes.iter().take(top) {
        let _ = writeln!(out, "  [{}] ({})", cause.location, cause.kind);
        match code_snippet(program, &cause.location) {
            Some(snippet) => {
                for line in snippet.lines() {
                    let _ = writeln!(out, "    | {line}");
                }
            }
            None => {
                let _ = writeln!(out, "    | <statement not in primary source>");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalana_lang::builder::*;

    fn program_with_planted_loop() -> Program {
        let mut b = ProgramBuilder::new("main.mmpi");
        b.function("main", &[], |f| {
            f.at("bval3d.F", 155);
            f.for_("j", int(0), int(8), |f| {
                f.comp_cycles(int(100));
            });
            f.allreduce(int(8));
        });
        b.finish().unwrap()
    }

    #[test]
    fn finds_planted_statement() {
        let program = program_with_planted_loop();
        let stmt = find_stmt(&program, "bval3d.F:155").expect("found");
        assert!(matches!(stmt.kind, StmtKind::For { .. }));
        assert!(find_stmt(&program, "nowhere.c:1").is_none());
    }

    #[test]
    fn snippet_renders_the_loop() {
        let program = program_with_planted_loop();
        let snippet = code_snippet(&program, "bval3d.F:155").expect("snippet");
        assert!(snippet.contains("for j in 0 .. 8"), "snippet: {snippet}");
        assert!(snippet.contains("comp(cycles = 100)"));
    }

    #[test]
    fn render_with_snippets_handles_missing_locations() {
        let program = program_with_planted_loop();
        let report = DetectionReport {
            non_scalable: vec![],
            abnormal: vec![],
            paths: vec![],
            root_causes: vec![scalana_detect::RootCause {
                vertex: 0,
                kind: "Loop".into(),
                location: "ghost.F:9".into(),
                func: "main".into(),
                path_count: 1,
                score: 1.0,
                mean_time: 0.1,
                time_imbalance: 2.0,
                ins_imbalance: 1.0,
            }],
        };
        let text = render_with_snippets(&program, &report, 3);
        assert!(text.contains("not in primary source"));
    }
}
