//! # scalana-core — the ScalAna tool facade
//!
//! Wires the substrates into the four-step workflow of paper §V:
//!
//! 1. **`ScalAna-static`** — compile the program and build the
//!    contracted PSG ([`scalana_graph::build_psg`]);
//! 2. **`ScalAna-prof`** — run the instrumented program at several
//!    process counts, collecting per-vertex performance vectors and
//!    compressed communication dependence (plus one small discovery run
//!    that resolves indirect calls into the PSG);
//! 3. **`ScalAna-detect`** — assemble one PPG per scale and run
//!    non-scalable/abnormal detection and backtracking root-cause
//!    analysis;
//! 4. **`ScalAna-viewer`** — render the report and the code snippets
//!    behind each root cause ([`viewer`]).
//!
//! ```
//! use scalana_apps::{cg, CgOptions};
//! use scalana_core::Analysis;
//!
//! let app = cg::build(&CgOptions { na: 20_000, iterations: 3, delay_rank: None });
//! let analysis = Analysis::builder(&app).scales([2, 4, 8]).run().unwrap();
//! assert_eq!(analysis.runs.len(), 3);
//! println!("{}", analysis.report.render());
//! ```
//!
//! [`Analysis::builder`] is the primary entry point; the positional
//! `analyze`/`analyze_app` free functions remain as thin wrappers over
//! it (byte-identical output).

pub mod builder;
pub mod pipeline;
pub mod viewer;

pub use builder::{AnalysisBuilder, AnalysisTarget};
pub use pipeline::{
    analyze, analyze_app, assemble, profile_one_scale, profile_one_scale_observed, profile_runs,
    refined_psg, refined_psg_traced, replay_refined_psg, speedup_curve, Analysis, ProfiledRuns,
    RunSummary, ScalAnaConfig,
};
