//! Discovery-trace replay must be a perfect substitute for running the
//! discovery simulation: the replayed PSG is structurally identical and
//! drives every scale to byte-identical profile images. The daemon's
//! warm-restart path (persisted traces, `scalana-service`'s store)
//! depends on this equivalence.

use scalana_apps::{cg, CgOptions};
use scalana_core::{profile_one_scale, refined_psg_traced, replay_refined_psg, ScalAnaConfig};

#[test]
fn replayed_psg_is_identical_to_the_discovered_one() {
    let app = cg::build(&CgOptions {
        na: 20_000,
        iterations: 3,
        delay_rank: None,
    });
    let program = &app.program;
    let config = ScalAnaConfig::default();
    let (discovered, trace) = refined_psg_traced(program, &config, 2).unwrap();
    let replayed = replay_refined_psg(program, &config, &trace);

    assert_eq!(discovered.ctx_count(), replayed.ctx_count());
    assert_eq!(discovered.vertex_count(), replayed.vertex_count());
    let sorted = |psg: &scalana_graph::Psg| {
        let mut attribution: Vec<((u32, u32), u32)> =
            psg.attribution_entries().map(|(k, v)| (*k, *v)).collect();
        attribution.sort_unstable();
        let mut transitions: Vec<((u32, u32), u32)> =
            psg.transition_entries().map(|(k, v)| (*k, *v)).collect();
        transitions.sort_unstable();
        (attribution, transitions)
    };
    assert_eq!(sorted(&discovered), sorted(&replayed));

    // The equivalence the store relies on: profiles driven by the
    // replayed PSG serialize to the exact bytes of the originals.
    for nprocs in [2usize, 4] {
        let original = profile_one_scale(program, &discovered, &config, nprocs).unwrap();
        let again = profile_one_scale(program, &replayed, &config, nprocs).unwrap();
        assert_eq!(
            &scalana_profile::store::save(&original)[..],
            &scalana_profile::store::save(&again)[..],
            "profile image @ {nprocs} ranks"
        );
    }
}
