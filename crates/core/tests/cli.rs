//! Integration tests for the `scalana` command-line tool.

use std::io::Write;
use std::process::Command;

fn scalana(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_scalana"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn write_demo(name: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(
        f,
        "param N = 500_000;\n\
         fn main() {{\n\
             for it in 0 .. 6 {{\n\
                 comp(cycles = N / nprocs, ins = N / nprocs);\n\
                 if rank == 0 {{\n\
                     for s in 0 .. 2 {{ comp(cycles = N / 4, ins = N / 4); }}\n\
                 }}\n\
                 barrier();\n\
             }}\n\
             allreduce(bytes = 8);\n\
         }}"
    )
    .unwrap();
    path
}

#[test]
fn static_command_prints_stats() {
    let path = write_demo("cli_static.mmpi");
    let (stdout, _, ok) = scalana(&["static", path.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("#VBC="), "{stdout}");
    assert!(stdout.contains("#MPI=2"), "{stdout}");
}

#[test]
fn static_respects_flags() {
    let path = write_demo("cli_flags.mmpi");
    let (with_dot, _, ok) = scalana(&[
        "static",
        path.to_str().unwrap(),
        "--max-loop-depth",
        "0",
        "--dot",
    ]);
    assert!(ok);
    assert!(with_dot.contains("digraph PSG"));
}

#[test]
fn analyze_finds_the_serial_loop() {
    let path = write_demo("cli_analyze.mmpi");
    let (stdout, _, ok) = scalana(&[
        "analyze",
        path.to_str().unwrap(),
        "--scales",
        "2,4,8",
        "--top",
        "3",
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("Root causes"), "{stdout}");
    assert!(stdout.contains("Loop"), "{stdout}");
    assert!(stdout.contains("run @"), "{stdout}");
}

#[test]
fn analyze_param_override_changes_runtime() {
    let path = write_demo("cli_param.mmpi");
    let run = |n: &str| {
        let (stdout, _, ok) = scalana(&[
            "analyze",
            path.to_str().unwrap(),
            "--scales",
            "2,4",
            "--param",
            &format!("N={n}"),
        ]);
        assert!(ok);
        stdout
    };
    let small = run("100000");
    let large = run("5000000");
    // Crude but effective: the virtual-seconds figures must differ.
    assert_ne!(small, large);
}

#[test]
fn apps_list_and_run() {
    let (stdout, _, ok) = scalana(&["apps", "--list"]);
    assert!(ok);
    for name in ["BT", "CG", "ZMP", "SST", "NEK"] {
        assert!(stdout.contains(name), "{stdout}");
    }
    let (stdout, _, ok) = scalana(&["apps", "--run", "SST", "--scales", "4,8,16"]);
    assert!(ok, "{stdout}");
    assert!(
        stdout.contains("known root cause mirandaCPU.cc:247: FOUND"),
        "{stdout}"
    );
}

#[test]
fn bad_usage_reports_errors() {
    let (_, stderr, ok) = scalana(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage:"));

    let (_, stderr, ok) = scalana(&["bogus"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));

    let (_, stderr, ok) = scalana(&["analyze", "/nonexistent.mmpi"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read"));

    let path = write_demo("cli_badscales.mmpi");
    let (_, stderr, ok) = scalana(&["analyze", path.to_str().unwrap(), "--scales", "8,4"]);
    assert!(!ok);
    assert!(stderr.contains("ascending"));

    let (_, stderr, ok) = scalana(&["apps", "--run", "NOPE"]);
    assert!(!ok);
    assert!(stderr.contains("unknown app"));
}
