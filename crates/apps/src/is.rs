//! NPB IS-like kernel: parallel integer bucket sort.
//!
//! Per iteration: local key histogram, an allreduce over bucket counts,
//! an all-to-all key redistribution, and local ranking — the smallest
//! and most communication-bound NPB kernel.

use crate::App;
use scalana_lang::builder::*;
use scalana_mpisim::MachineConfig;

/// Build the IS app.
pub fn build() -> App {
    let mut b = ProgramBuilder::new("is.c");
    b.param("KEYS", 4_000_000);
    b.param("NITER", 10);

    b.function("main", &[], |f| {
        f.let_("my_keys", var("KEYS") / nprocs());
        f.for_("it", int(0), var("NITER"), |f| {
            // Local histogram.
            f.comp(
                comp_cycles(var("my_keys") * int(6))
                    .ins(var("my_keys") * int(6))
                    .lst(var("my_keys") * int(3))
                    .miss(var("my_keys") / int(60)),
            );
            // Bucket-size agreement.
            f.allreduce(int(4096));
            // Key redistribution.
            f.alltoall(max(
                var("my_keys") * int(4) / max(nprocs(), int(1)),
                int(64),
            ));
            // Local ranking of received keys.
            f.comp(
                comp_cycles(var("my_keys") * int(3))
                    .ins(var("my_keys") * int(3))
                    .lst(var("my_keys") * int(2))
                    .miss(var("my_keys") / int(80)),
            );
        });
        // Full verification.
        f.allreduce(int(8));
    });

    App {
        name: "IS".to_string(),
        program: b.finish().expect("IS builds"),
        machine: MachineConfig::default(),
        expected_root_cause: None,
        description: "NPB IS-like: histogram + bucket allreduce + all-to-all keys".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalana_graph::{build_psg, PsgOptions};
    use scalana_mpisim::{SimConfig, Simulation};

    #[test]
    fn is_runs_at_power_and_nonpower_scales() {
        let app = build();
        let psg = build_psg(&app.program, &PsgOptions::default());
        for p in [2usize, 6, 16] {
            Simulation::new(&app.program, &psg, SimConfig::with_nprocs(p))
                .run()
                .unwrap_or_else(|e| panic!("IS failed at {p}: {e}"));
        }
    }
}
