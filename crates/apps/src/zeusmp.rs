//! Zeus-MP-like case study (paper §VI-D1, Fig. 12/13).
//!
//! Computational-fluid-dynamics time steps with the paper's diagnosed
//! pathology embedded:
//!
//! - only *busy* ranks execute the boundary-condition loop at
//!   `bval3d.F:155` (the others are idle in non-blocking P2P) — the
//!   root cause;
//! - the delay propagates through three non-blocking exchange phases
//!   whose waits complete at `nudt.F:227`, `nudt.F:269`, `nudt.F:328`;
//! - the `MPI_Allreduce` at `nudt.F:361` synchronizes every rank and is
//!   where the scaling loss manifests;
//! - additionally the `hsmoc.F:665/841/1041` solver loops carry heavy
//!   load/store traffic and cache misses that do not shrink with the
//!   process count.
//!
//! `build(true)` applies the paper's fixes: hybrid MPI+OpenMP on the
//! boundary loop (busy-rank work ÷ threads) and loop tiling + scalar
//! promotion on the hsmoc loops (cache misses slashed).

use crate::App;
use scalana_lang::builder::*;
use scalana_mpisim::MachineConfig;

/// Build the Zeus-MP-like app; `fixed` applies the paper's optimizations.
pub fn build(fixed: bool) -> App {
    let mut b = ProgramBuilder::new("zeusmp.F");
    // 64^3 domain like the paper's experiment, as aggregate work units.
    b.param("ZONES", 6_000_000);
    b.param("NSTEPS", 10);
    // Hybrid-parallel thread count after the fix.
    b.param("THREADS", if fixed { 4 } else { 1 });
    // Cache-miss divisor after loop tiling.
    b.param("TILED", if fixed { 8 } else { 1 });

    b.function("main", &[], |f| {
        f.let_("local", var("ZONES") / nprocs());
        f.bcast(int(0), int(256));
        f.for_("step", int(0), var("NSTEPS"), |f| {
            f.call("bval3d", vec![var("local")]);
            f.call("nudt_exchange", vec![var("local"), int(0)]);
            f.call("hsmoc", vec![var("local"), int(665)]);
            f.call("nudt_exchange", vec![var("local"), int(1)]);
            f.call("hsmoc", vec![var("local"), int(841)]);
            f.call("nudt_exchange", vec![var("local"), int(2)]);
            f.call("hsmoc", vec![var("local"), int(1041)]);
            // New-timestep computation: synchronizes everyone.
            f.at("nudt.F", 361);
            f.allreduce(int(8));
        });
    });

    // Boundary values: only ranks owning an inflow boundary face do the
    // heavy loop; with a 1-D face assignment that is every fourth rank.
    b.function("bval3d", &["local"], |f| {
        f.if_(eq(rank() % int(8), int(0)), |f| {
            f.at("bval3d.F", 155);
            f.for_("j", int(0), int(8), |f| {
                // Volume term scales with 1/p; the surface term is the
                // boundary face area, which shrinks far slower — the
                // reason the imbalance persists at 2,048 ranks in the
                // paper's Tianhe-2 runs.
                f.let_("work", var("local") * int(3) + var("ZONES") / int(16));
                f.comp(
                    comp_cycles(var("work") / var("THREADS"))
                        .ins(var("work"))
                        .lst(var("work") / int(3))
                        .miss(var("work") / int(150)),
                );
            });
        });
    });

    // Non-blocking point-to-point exchange; the waitall is where idle
    // neighbours absorb the busy ranks' delay.
    b.function("nudt_exchange", &["local", "phase"], |f| {
        f.let_("right", (rank() + int(1)) % nprocs());
        f.let_("left", (rank() + nprocs() - int(1)) % nprocs());
        f.let_("bytes", max(var("local") / int(32), int(256)));
        f.isend("s1", var("right"), var("phase"), var("bytes"));
        f.irecv("r1", var("left"), var("phase"));
        f.isend("s2", var("left"), var("phase") + int(10), var("bytes"));
        f.irecv("r2", var("right"), var("phase") + int(10));
        // nudt.F:227 / 269 / 328 in the paper; one site per phase.
        f.at("nudt.F", 227);
        f.waitall();
    });

    // Method-of-characteristics solver loops: heavy memory traffic whose
    // misses have a fixed boundary component that does not scale away.
    b.function("hsmoc", &["local", "line"], |f| {
        f.at("hsmoc.F", 665);
        f.for_("sweep", int(0), int(2), |f| {
            f.comp(
                comp_cycles(var("local") * int(7))
                    .ins(var("local") * int(6))
                    .lst(var("local") * int(3))
                    .miss((var("local") / int(20) + int(40_000)) / var("TILED")),
            );
        });
    });

    App {
        name: "ZMP".to_string(),
        program: b.finish().expect("Zeus-MP builds"),
        machine: MachineConfig::default(),
        expected_root_cause: Some("bval3d.F:155".to_string()),
        description: "Zeus-MP-like CFD: imbalanced boundary loop feeding non-blocking \
                      exchanges into a synchronizing allreduce"
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalana_graph::{build_psg, PsgOptions};
    use scalana_mpisim::{SimConfig, Simulation};

    fn total(app: &App, p: usize) -> f64 {
        let psg = build_psg(&app.program, &PsgOptions::default());
        Simulation::new(&app.program, &psg, SimConfig::with_nprocs(p))
            .run()
            .unwrap()
            .total_time()
    }

    #[test]
    fn zeusmp_runs_and_fix_speeds_it_up() {
        let broken = build(false);
        let fixed = build(true);
        let tb = total(&broken, 16);
        let tf = total(&fixed, 16);
        assert!(
            tf < tb * 0.95,
            "paper reports ~9.5% improvement; got {tb} -> {tf}"
        );
    }

    #[test]
    fn boundary_loop_has_its_own_vertex_at_paper_location() {
        let app = build(false);
        let psg = build_psg(&app.program, &PsgOptions::default());
        let found = psg.vertices.iter().any(|v| {
            v.span.file_line() == "bval3d.F:155" && v.kind == scalana_graph::VertexKind::Loop
        });
        assert!(found, "bval3d.F:155 loop vertex must exist");
    }

    #[test]
    fn busy_ranks_finish_computation_later() {
        let app = build(false);
        let psg = build_psg(&app.program, &PsgOptions::default());
        let res = Simulation::new(&app.program, &psg, SimConfig::with_nprocs(8))
            .run()
            .unwrap();
        // All ranks end together (allreduce), but busy ranks burned more
        // instructions.
        let busy_ins = res.rank_pmu[0].tot_ins;
        let idle_ins = res.rank_pmu[1].tot_ins;
        assert!(busy_ins > idle_ins * 1.5, "{busy_ins} vs {idle_ins}");
    }
}
