//! NPB BT- and SP-like kernels: ADI sweeps on a square process grid.
//!
//! Both solvers decompose the domain over a `q × q` grid (NPB requires a
//! square process count; ranks beyond `q²` only join the collectives)
//! and per iteration run three directional sweeps, each combining block
//! solves with `MPI_Sendrecv` exchanges along grid rows/columns. BT does
//! more work per cell with fewer iterations; SP is lighter and chattier.

use crate::App;
use scalana_lang::builder::*;
use scalana_lang::Expr;
use scalana_mpisim::MachineConfig;

struct GridSolver {
    name: &'static str,
    file: &'static str,
    points: i64,
    iterations: i64,
    /// Cycles of solver work per local point per sweep.
    work: i64,
    description: &'static str,
}

/// Build the BT-like app.
pub fn build_bt() -> App {
    build_grid(GridSolver {
        name: "BT",
        file: "bt.f",
        points: 12_000_000,
        iterations: 8,
        work: 26,
        description: "NPB BT-like: block-tridiagonal ADI sweeps on a square grid",
    })
}

/// Build the SP-like app.
pub fn build_sp() -> App {
    build_grid(GridSolver {
        name: "SP",
        file: "sp.f",
        points: 9_000_000,
        iterations: 14,
        work: 14,
        description: "NPB SP-like: scalar-pentadiagonal ADI sweeps on a square grid",
    })
}

fn build_grid(spec: GridSolver) -> App {
    let mut b = ProgramBuilder::new(spec.file);
    b.param("NPOINTS", spec.points);
    b.param("NITER", spec.iterations);
    b.param("WORK", spec.work);

    b.function("main", &[], |f| {
        // Largest q with q*q <= nprocs.
        f.let_("q", int(1));
        f.while_(
            le((var("q") + int(1)) * (var("q") + int(1)), nprocs()),
            |f| {
                f.assign("q", var("q") + int(1));
            },
        );
        f.let_("active", var("q") * var("q"));
        f.let_("local", var("NPOINTS") / var("active"));
        f.bcast(int(0), int(64));
        f.for_("it", int(0), var("NITER"), |f| {
            f.if_(lt(rank(), var("active")), |f| {
                // Three directional sweeps (x, y, z).
                f.call("sweep_x", vec![var("local"), var("q")]);
                f.call("sweep_y", vec![var("local"), var("q")]);
                f.call("sweep_z", vec![var("local"), var("q")]);
            });
            f.allreduce(int(40));
        });
        f.reduce(int(0), int(8));
    });

    let face = |local: Expr, q: Expr| max(local * int(8) / max(q, int(1)), int(128));

    // Row exchange: neighbours within the grid row (periodic).
    b.function("sweep_x", &["local", "q"], |f| {
        f.let_("row", rank() / var("q"));
        f.let_("col", rank() % var("q"));
        f.at(spec.file, 2000);
        f.comp(
            comp_cycles(var("local") * var("WORK"))
                .ins(var("local") * var("WORK"))
                .lst(var("local") * (var("WORK") / int(3) + int(1)))
                .miss(var("local") / int(35)),
        );
        f.let_(
            "east",
            var("row") * var("q") + (var("col") + int(1)) % var("q"),
        );
        f.let_(
            "west",
            var("row") * var("q") + (var("col") + var("q") - int(1)) % var("q"),
        );
        f.sendrecv(
            var("east"),
            var("west"),
            int(11),
            face(var("local"), var("q")),
        );
    });

    // Column exchange.
    b.function("sweep_y", &["local", "q"], |f| {
        f.let_("row", rank() / var("q"));
        f.let_("col", rank() % var("q"));
        f.comp(
            comp_cycles(var("local") * var("WORK"))
                .ins(var("local") * var("WORK"))
                .lst(var("local") * (var("WORK") / int(3) + int(1)))
                .miss(var("local") / int(35)),
        );
        f.let_(
            "south",
            ((var("row") + int(1)) % var("q")) * var("q") + var("col"),
        );
        f.let_(
            "north",
            ((var("row") + var("q") - int(1)) % var("q")) * var("q") + var("col"),
        );
        f.sendrecv(
            var("south"),
            var("north"),
            int(12),
            face(var("local"), var("q")),
        );
    });

    // The z sweep is local per pencil but still trades faces diagonally.
    b.function("sweep_z", &["local", "q"], |f| {
        f.comp(
            comp_cycles(var("local") * var("WORK"))
                .ins(var("local") * var("WORK"))
                .lst(var("local") * (var("WORK") / int(3) + int(1)))
                .miss(var("local") / int(35)),
        );
        f.let_("active", var("q") * var("q"));
        f.let_("fwd", (rank() + var("q") + int(1)) % var("active"));
        f.let_(
            "bwd",
            (rank() + var("active") - var("q") - int(1)) % var("active"),
        );
        f.sendrecv(
            var("fwd"),
            var("bwd"),
            int(13),
            face(var("local"), var("q")),
        );
    });

    App {
        name: spec.name.to_string(),
        program: b.finish().expect("grid solver builds"),
        machine: MachineConfig::default(),
        expected_root_cause: None,
        description: spec.description.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalana_graph::{build_psg, PsgOptions};
    use scalana_mpisim::{SimConfig, Simulation};

    #[test]
    fn bt_and_sp_run_on_square_and_nonsquare_counts() {
        for app in [build_bt(), build_sp()] {
            let psg = build_psg(&app.program, &PsgOptions::default());
            for p in [4usize, 9, 12, 16] {
                Simulation::new(&app.program, &psg, SimConfig::with_nprocs(p))
                    .run()
                    .unwrap_or_else(|e| panic!("{} failed at {p}: {e}", app.name));
            }
        }
    }

    #[test]
    fn bt_is_heavier_than_sp_per_iteration() {
        let bt = build_bt();
        let sp = build_sp();
        let psg_bt = build_psg(&bt.program, &PsgOptions::default());
        let psg_sp = build_psg(&sp.program, &PsgOptions::default());
        let t_bt = Simulation::new(&bt.program, &psg_bt, SimConfig::with_nprocs(4))
            .run()
            .unwrap()
            .total_time()
            / 8.0; // iterations
        let t_sp = Simulation::new(&sp.program, &psg_sp, SimConfig::with_nprocs(4))
            .run()
            .unwrap()
            .total_time()
            / 14.0;
        assert!(t_bt > t_sp, "BT per-iter {t_bt} vs SP {t_sp}");
    }
}
