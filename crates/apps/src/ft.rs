//! NPB FT-like kernel: 3-D FFT with all-to-all transposes.
//!
//! Per time step: local 1-D FFTs (work ∝ `N log N / p`), a global
//! transpose (`MPI_Alltoall` moving `N / p²` per pair), more local FFTs,
//! and a checksum allreduce. Communication volume per rank shrinks
//! slowly with `p`, so the transpose dominates at scale — FT's classic
//! scaling profile.

use crate::App;
use scalana_lang::builder::*;
use scalana_mpisim::MachineConfig;

/// Build the FT app.
pub fn build() -> App {
    let mut b = ProgramBuilder::new("ft.f");
    // Total grid points (class-C-like 512^3 scaled down for virtual cost).
    b.param("NTOTAL", 8_000_000);
    b.param("NITER", 10);

    b.function("main", &[], |f| {
        f.let_("local", var("NTOTAL") / nprocs());
        f.call("setup", vec![var("local")]);
        f.for_("it", int(0), var("NITER"), |f| {
            f.call("fft_step", vec![var("local")]);
            // Checksum after each step.
            f.allreduce(int(16));
        });
    });

    b.function("setup", &["local"], |f| {
        f.comp(
            comp_cycles(var("local") * int(6))
                .ins(var("local") * int(5))
                .lst(var("local") * int(2)),
        );
        f.barrier();
    });

    b.function("fft_step", &["local"], |f| {
        // Local FFTs along two in-slab dimensions.
        f.at("ft.f", 610);
        f.for_("dim", int(0), int(2), |f| {
            f.comp(
                comp_cycles(var("local") * (log2(var("NTOTAL")) + int(4)) / int(3))
                    .ins(var("local") * log2(var("NTOTAL")) / int(3))
                    .lst(var("local") * int(3))
                    .miss(var("local") / int(40)),
            );
        });
        // Global transpose: each pair exchanges local/p elements of 16B.
        f.alltoall(max(var("local") * int(16) / max(nprocs(), int(1)), int(64)));
        // FFT along the remaining dimension.
        f.comp(
            comp_cycles(var("local") * (log2(var("local")) + int(4)))
                .ins(var("local") * log2(var("local")))
                .lst(var("local") * int(3))
                .miss(var("local") / int(40)),
        );
    });

    App {
        name: "FT".to_string(),
        program: b.finish().expect("FT builds"),
        machine: MachineConfig::default(),
        expected_root_cause: None,
        description: "NPB FT-like: local FFTs + all-to-all transpose + checksum reduce".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalana_graph::{build_psg, PsgOptions};
    use scalana_mpisim::{SimConfig, Simulation};

    #[test]
    fn ft_runs_and_alltoall_dominates_at_scale() {
        let app = build();
        let psg = build_psg(&app.program, &PsgOptions::default());
        let t16 = Simulation::new(&app.program, &psg, SimConfig::with_nprocs(16))
            .run()
            .unwrap()
            .total_time();
        let t128 = Simulation::new(&app.program, &psg, SimConfig::with_nprocs(128))
            .run()
            .unwrap()
            .total_time();
        let t512 = Simulation::new(&app.program, &psg, SimConfig::with_nprocs(512))
            .run()
            .unwrap()
            .total_time();
        // Mid-range scaling is healthy, then the per-peer alltoall
        // latency wall flattens the curve.
        assert!(t128 < t16, "16→128 must still speed up");
        let tail_speedup = t128 / t512;
        assert!(
            tail_speedup < 3.0,
            "FT 128→512 should hit the alltoall wall (ideal 4x), got {tail_speedup:.1}x"
        );
    }
}
