//! NPB MG-like kernel: multigrid V-cycle on a 1-D rank decomposition.
//!
//! Each V-cycle descends through grid levels (work shrinking 8× per
//! level, halo exchanges with both neighbours at every level), then
//! ascends with prolongation, and finishes with a residual allreduce.
//! Coarse levels are latency-bound — MG's scaling limiter.

use crate::App;
use scalana_lang::builder::*;
use scalana_mpisim::MachineConfig;

/// Build the MG app.
pub fn build() -> App {
    let mut b = ProgramBuilder::new("mg.f");
    b.param("NPOINTS", 16_000_000);
    b.param("LEVELS", 5);
    b.param("NITER", 8);

    b.function("main", &[], |f| {
        f.let_("local", var("NPOINTS") / nprocs());
        f.bcast(int(0), int(64));
        f.for_("it", int(0), var("NITER"), |f| {
            f.call("vcycle", vec![var("local")]);
            f.allreduce(int(8));
        });
    });

    b.function("vcycle", &["local"], |f| {
        // Descend: restrict + smooth at each level.
        f.for_("lvl", int(0), var("LEVELS"), |f| {
            f.let_("shrink", int(1));
            f.for_("s", int(0), var("lvl"), |f| {
                f.assign("shrink", var("shrink") * int(8));
            });
            f.let_("pts", max(var("local") / var("shrink"), int(32)));
            f.call("smooth", vec![var("pts")]);
            f.call("halo", vec![max(var("pts") / int(16), int(8)), var("lvl")]);
        });
        // Ascend: prolongate + smooth.
        f.for_("lvl", int(0), var("LEVELS"), |f| {
            f.let_("grow", int(1));
            f.for_("s", int(0), var("LEVELS") - var("lvl") - int(1), |f| {
                f.assign("grow", var("grow") * int(8));
            });
            f.let_("pts", max(var("local") / var("grow"), int(32)));
            f.call("smooth", vec![var("pts")]);
            f.call(
                "halo",
                vec![max(var("pts") / int(16), int(8)), var("lvl") + int(16)],
            );
        });
    });

    b.function("smooth", &["pts"], |f| {
        f.at("mg.f", 1432);
        f.for_("sweep", int(0), int(2), |f| {
            f.comp(
                comp_cycles(var("pts") * int(14))
                    .ins(var("pts") * int(12))
                    .lst(var("pts") * int(6))
                    .miss(var("pts") / int(30)),
            );
        });
    });

    // Halo exchange with both 1-D neighbours (non-periodic boundaries,
    // so edge ranks branch — an MPI-bearing Branch vertex).
    b.function("halo", &["bytes", "tag"], |f| {
        f.if_(gt(rank(), int(0)), |f| {
            f.isend("s_left", rank() - int(1), var("tag"), var("bytes") * int(8));
            f.irecv("r_left", rank() - int(1), var("tag"));
        });
        f.if_(lt(rank(), nprocs() - int(1)), |f| {
            f.isend(
                "s_right",
                rank() + int(1),
                var("tag"),
                var("bytes") * int(8),
            );
            f.irecv("r_right", rank() + int(1), var("tag"));
        });
        f.waitall();
    });

    App {
        name: "MG".to_string(),
        program: b.finish().expect("MG builds"),
        machine: MachineConfig::default(),
        expected_root_cause: None,
        description: "NPB MG-like: V-cycle smoothing with per-level neighbour halos".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalana_graph::{build_psg, PsgOptions, VertexKind};
    use scalana_mpisim::{SimConfig, Simulation};

    #[test]
    fn mg_runs_without_deadlock() {
        let app = build();
        let psg = build_psg(&app.program, &PsgOptions::default());
        for p in [2usize, 5, 16] {
            Simulation::new(&app.program, &psg, SimConfig::with_nprocs(p))
                .run()
                .unwrap_or_else(|e| panic!("MG failed at {p}: {e}"));
        }
    }

    #[test]
    fn halo_branches_survive_contraction() {
        let app = build();
        let psg = build_psg(&app.program, &PsgOptions::default());
        // The boundary branches contain MPI and must keep their vertices.
        assert!(psg.stats.branches >= 2, "stats: {}", psg.stats);
        assert!(psg
            .vertices
            .iter()
            .any(|v| matches!(v.kind, VertexKind::Branch)));
    }
}
