//! # scalana-apps — the evaluation workload suite
//!
//! MiniMPI reconstructions of the programs the paper evaluates
//! (§VI): the eight NPB kernels (BT, CG, EP, FT, MG, LU, IS, SP) plus
//! the three real-application case studies (Zeus-MP, SST, Nekbone).
//!
//! Each kernel reproduces the *communication skeleton* and *scaling
//! behaviour* of its namesake — CG's transpose exchanges and reduction
//! chain, MG's V-cycle halos, FT's all-to-all transpose, LU's pipelined
//! wavefront, BT/SP's square-process-grid sweeps — because those
//! skeletons are what the PSG/PPG machinery analyzes. The case-study
//! apps additionally embed the paper's diagnosed root causes at the
//! paper's source locations (e.g. the imbalanced boundary loop at
//! `bval3d.F:155`), with a `fixed` knob that applies the paper's
//! optimization so the before/after comparisons (Fig. 12–16, §VI-D
//! speedups) can be regenerated.
//!
//! ```
//! use scalana_apps::{cg, CgOptions};
//! use scalana_graph::{build_psg, PsgOptions};
//!
//! let app = cg::build(&CgOptions::default());
//! let psg = build_psg(&app.program, &PsgOptions::default());
//! assert!(psg.stats.mpis > 0);
//! ```

pub mod bt_sp;
pub mod cg;
pub mod ep;
pub mod ft;
pub mod is;
pub mod lu;
pub mod mg;
pub mod nekbone;
pub mod sst;
pub mod zeusmp;

pub use cg::CgOptions;

use scalana_lang::Program;
use scalana_mpisim::MachineConfig;

/// A ready-to-run workload: program plus recommended platform model and
/// ground-truth metadata for verifying detection.
#[derive(Debug, Clone)]
pub struct App {
    /// Short name matching the paper's tables (`CG`, `ZMP`, ...).
    pub name: String,
    /// The checked MiniMPI program.
    pub program: Program,
    /// Platform model the app is calibrated for (heterogeneous cores
    /// for Nekbone, uniform otherwise).
    pub machine: MachineConfig,
    /// `file:line` of the injected scaling-loss root cause, when the
    /// workload has one (the case studies and delay-injected CG).
    pub expected_root_cause: Option<String>,
    /// One-line description.
    pub description: String,
}

impl App {
    /// Render the program back to MiniMPI source.
    pub fn source(&self) -> String {
        scalana_lang::pretty::print_program(&self.program)
    }

    /// Source line count (the `Code` column of Table II, scaled to
    /// MiniMPI's compactness).
    pub fn loc(&self) -> usize {
        self.source().lines().count()
    }
}

/// All eleven workloads with default options, in the paper's Table II
/// order: BT, CG, EP, FT, MG, SP, LU, IS, SST, NEKBONE, ZEUS-MP.
pub fn all_apps() -> Vec<App> {
    vec![
        bt_sp::build_bt(),
        cg::build(&CgOptions::default()),
        ep::build(),
        ft::build(),
        mg::build(),
        bt_sp::build_sp(),
        lu::build(),
        is::build(),
        sst::build(false),
        nekbone::build(false),
        zeusmp::build(false),
    ]
}

/// Look up an app by its Table II name.
pub fn by_name(name: &str) -> Option<App> {
    all_apps().into_iter().find(|a| a.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_eleven_apps_with_unique_names() {
        let apps = all_apps();
        assert_eq!(apps.len(), 11);
        let mut names: Vec<&str> = apps.iter().map(|a| a.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(by_name("CG").is_some());
        assert!(by_name("ZMP").is_some());
        assert!(by_name("NOPE").is_none());
    }

    #[test]
    fn every_app_pretty_prints_and_reparses() {
        for app in all_apps() {
            let source = app.source();
            let reparsed = scalana_lang::parse_program("reparse.mmpi", &source)
                .unwrap_or_else(|e| panic!("{} failed to reparse: {e}", app.name));
            assert_eq!(
                reparsed.functions.len(),
                app.program.functions.len(),
                "{}",
                app.name
            );
        }
    }

    #[test]
    fn case_studies_declare_root_causes() {
        assert_eq!(
            zeusmp::build(false).expected_root_cause.as_deref(),
            Some("bval3d.F:155")
        );
        assert_eq!(
            sst::build(false).expected_root_cause.as_deref(),
            Some("mirandaCPU.cc:247")
        );
        assert_eq!(
            nekbone::build(false).expected_root_cause.as_deref(),
            Some("blas.f:8941")
        );
    }
}
