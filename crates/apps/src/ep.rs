//! NPB EP-like kernel: embarrassingly parallel random-number statistics.
//!
//! Nearly pure computation (Gaussian-pair generation, work ∝ `2^M / p`)
//! followed by a handful of small reductions — the best-scaling NPB
//! kernel, useful as the "nothing to detect" control.

use crate::App;
use scalana_lang::builder::*;
use scalana_mpisim::MachineConfig;

/// Build the EP app (class-C-like scale).
pub fn build() -> App {
    let mut b = ProgramBuilder::new("ep.f");
    // 2^M total pairs; keep virtual cost practical.
    b.param("PAIRS", 40_000_000);
    b.param("BLOCKS", 16);

    b.function("main", &[], |f| {
        f.let_("my_pairs", var("PAIRS") / nprocs());
        f.let_("chunk", var("my_pairs") / var("BLOCKS"));
        f.for_("blk", int(0), var("BLOCKS"), |f| {
            f.call("gaussian_block", vec![var("chunk")]);
        });
        // Global sums: counts per annulus + sx/sy.
        f.allreduce(int(80));
        f.allreduce(int(16));
        f.reduce(int(0), int(8));
    });

    b.function("gaussian_block", &["chunk"], |f| {
        // Random generation + rejection: branch-heavy FP work, almost
        // no memory traffic.
        f.comp(
            comp_cycles(var("chunk") * int(12))
                .ins(var("chunk") * int(14))
                .lst(var("chunk") * int(2))
                .miss(var("chunk") / int(4000))
                .brmiss(var("chunk") / int(16)),
        );
    });

    App {
        name: "EP".to_string(),
        program: b.finish().expect("EP builds"),
        machine: MachineConfig::default(),
        expected_root_cause: None,
        description: "NPB EP-like: embarrassingly parallel compute + final reductions".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalana_graph::{build_psg, PsgOptions};
    use scalana_mpisim::{SimConfig, Simulation};

    #[test]
    fn ep_scales_almost_perfectly() {
        let app = build();
        let psg = build_psg(&app.program, &PsgOptions::default());
        let t2 = Simulation::new(&app.program, &psg, SimConfig::with_nprocs(2))
            .run()
            .unwrap()
            .total_time();
        let t16 = Simulation::new(&app.program, &psg, SimConfig::with_nprocs(16))
            .run()
            .unwrap()
            .total_time();
        let speedup = t2 / t16;
        assert!(
            speedup > 6.0,
            "EP 2→16 ranks should speed up ~8x, got {speedup:.2}x"
        );
    }
}
