//! NPB CG-like kernel: conjugate gradient on a sparse matrix.
//!
//! Skeleton of the real NPB-CG per iteration: a local sparse
//! matrix-vector product (work ∝ `NA·NONZER / p`), a chain of
//! `MPI_Sendrecv` transpose exchanges along hypercube dimensions
//! (`log2 p` partners, shrinking payloads), and two dot-product
//! allreduces. The paper uses CG both for the overhead comparison
//! (Table I) and as the motivating example (Fig. 2), where a delay is
//! manually injected into process 4 and propagates through the exchange
//! chain.

use crate::App;
use scalana_lang::builder::*;
use scalana_mpisim::MachineConfig;

/// CG configuration.
#[derive(Debug, Clone)]
pub struct CgOptions {
    /// Matrix dimension (NPB class C ≈ 150k rows).
    pub na: i64,
    /// Outer CG iterations (NPB uses 75 for class C).
    pub iterations: i64,
    /// Inject the paper's Fig. 2 delay into this rank (`None` = clean
    /// run). The delay is a loop planted at `cg.f:441` so it owns a
    /// distinct PSG vertex.
    pub delay_rank: Option<i64>,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            na: 150_000,
            iterations: 25,
            delay_rank: None,
        }
    }
}

/// Build the CG app.
pub fn build(opts: &CgOptions) -> App {
    let mut b = ProgramBuilder::new("cg.f");
    b.param("NA", opts.na);
    b.param("NITER", opts.iterations);
    b.param("DELAY_RANK", opts.delay_rank.unwrap_or(-1));

    b.function("main", &[], |f| {
        // Matrix setup: row partitioning and initial vectors.
        f.let_("rows", var("NA") / nprocs());
        f.call("makea", vec![var("rows")]);
        f.bcast(int(0), int(8));
        f.for_("it", int(0), var("NITER"), |f| {
            f.call("conj_grad", vec![var("rows"), var("it")]);
            // Residual norm of the outer iteration.
            f.allreduce(int(8));
        });
        f.reduce(int(0), int(8));
    });

    b.function("makea", &["rows"], |f| {
        // Sparse matrix generation: ~15 nonzeros per row.
        f.for_("i", int(0), int(4), |f| {
            f.comp(
                comp_cycles(var("rows") * int(60))
                    .ins(var("rows") * int(50))
                    .lst(var("rows") * int(20))
                    .miss(var("rows") / int(8)),
            );
        });
        f.barrier();
    });

    b.function("conj_grad", &["rows", "it"], |f| {
        // Local sparse matvec: the dominant compute (scales 1/p).
        f.at("cg.f", 556);
        f.for_("k", int(0), int(2), |f| {
            f.comp(
                comp_cycles(var("rows") * int(45))
                    .ins(var("rows") * int(40))
                    .lst(var("rows") * int(16))
                    .miss(var("rows") / int(12)),
            );
        });
        // Fig. 2's injected delay: one straggler rank does extra work
        // whose cost does NOT shrink with the process count — the
        // delay that throttled Tianhe-2 scaling in the paper's example.
        f.if_(eq(rank(), var("DELAY_RANK")), |f| {
            f.at("cg.f", 441);
            f.for_("d", int(0), int(4), |f| {
                f.comp(
                    comp_cycles(var("NA") * int(2))
                        .ins(var("NA") * int(2))
                        .lst(var("NA") / int(2)),
                );
            });
        });
        // Transpose exchange along hypercube dimensions: log2(p)
        // sendrecv partners with shrinking payloads, like NPB-CG's
        // reduce_exch pattern. At non-power-of-two scales only the
        // ranks inside the largest embedded hypercube exchange (bit
        // toggling is closed under that set).
        f.let_("dims", log2(nprocs()));
        f.let_("pow2", int(1));
        f.for_("d", int(0), var("dims"), |f| {
            f.assign("pow2", var("pow2") * int(2));
        });
        f.if_(lt(rank(), var("pow2")), |f| {
            f.for_("d", int(0), var("dims"), |f| {
                f.let_("stride", int(1));
                f.for_("s", int(0), var("d"), |f| {
                    f.assign("stride", var("stride") * int(2));
                });
                // XOR-free partner arithmetic: toggle the d-th bit via
                // div/mod identities.
                f.let_(
                    "partner",
                    (rank() / (var("stride") * int(2))) * (var("stride") * int(2))
                        + ((rank() + var("stride")) % (var("stride") * int(2))),
                );
                f.sendrecv(
                    var("partner"),
                    var("partner"),
                    var("d"),
                    max(var("rows") * int(8) / max(var("stride"), int(1)), int(64)),
                );
                // Merge received partial sums.
                f.comp(
                    comp_cycles(var("rows") * int(4))
                        .ins(var("rows") * int(4))
                        .lst(var("rows") * int(2)),
                );
            });
        });
        // Two dot products per iteration.
        f.allreduce(int(8));
        f.allreduce(int(8));
    });

    App {
        name: "CG".to_string(),
        program: b.finish().expect("CG builds"),
        machine: MachineConfig::default(),
        expected_root_cause: opts.delay_rank.map(|_| "cg.f:441".to_string()),
        description: "NPB CG-like: sparse matvec + hypercube transpose exchange + \
                      dot-product allreduces"
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalana_graph::{build_psg, PsgOptions};
    use scalana_mpisim::{SimConfig, Simulation};

    #[test]
    fn cg_runs_at_multiple_scales() {
        let app = build(&CgOptions {
            na: 20_000,
            iterations: 3,
            delay_rank: None,
        });
        let psg = build_psg(&app.program, &PsgOptions::default());
        for p in [2usize, 4, 8, 16] {
            let res = Simulation::new(&app.program, &psg, SimConfig::with_nprocs(p))
                .run()
                .unwrap_or_else(|e| panic!("CG deadlocked at {p}: {e}"));
            assert!(res.total_time() > 0.0);
        }
    }

    #[test]
    fn cg_compute_strong_scales() {
        let app = build(&CgOptions {
            na: 100_000,
            iterations: 4,
            delay_rank: None,
        });
        let psg = build_psg(&app.program, &PsgOptions::default());
        let t4 = Simulation::new(&app.program, &psg, SimConfig::with_nprocs(4))
            .run()
            .unwrap()
            .total_time();
        let t32 = Simulation::new(&app.program, &psg, SimConfig::with_nprocs(32))
            .run()
            .unwrap()
            .total_time();
        assert!(t32 < t4, "CG should speed up 4→32 ranks: {t4} vs {t32}");
    }

    #[test]
    fn delayed_rank_slows_whole_run() {
        let clean = build(&CgOptions {
            na: 50_000,
            iterations: 3,
            delay_rank: None,
        });
        let delayed = build(&CgOptions {
            na: 50_000,
            iterations: 3,
            delay_rank: Some(4),
        });
        let psg_c = build_psg(&clean.program, &PsgOptions::default());
        let psg_d = build_psg(&delayed.program, &PsgOptions::default());
        let tc = Simulation::new(&clean.program, &psg_c, SimConfig::with_nprocs(8))
            .run()
            .unwrap()
            .total_time();
        let td = Simulation::new(&delayed.program, &psg_d, SimConfig::with_nprocs(8))
            .run()
            .unwrap()
            .total_time();
        assert!(td > tc * 1.2, "delay must hurt: {tc} vs {td}");
        assert_eq!(delayed.expected_root_cause.as_deref(), Some("cg.f:441"));
    }

    #[test]
    fn hypercube_partners_stay_in_range() {
        // Partner arithmetic must never address out-of-range ranks
        // (power-of-two scales).
        let app = build(&CgOptions {
            na: 10_000,
            iterations: 2,
            delay_rank: None,
        });
        let psg = build_psg(&app.program, &PsgOptions::default());
        for p in [2usize, 8, 64] {
            Simulation::new(&app.program, &psg, SimConfig::with_nprocs(p))
                .run()
                .unwrap_or_else(|e| panic!("partner out of range at p={p}: {e}"));
        }
    }
}
