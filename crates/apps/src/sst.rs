//! SST-like case study (paper §VI-D2, Fig. 14/15).
//!
//! A parallel discrete-event simulation framework whose event handler
//! scans a *pending-request array* on the critical path
//! (`RequestGenCPU::handleEvent`, `mirandaCPU.cc:247`). The scan is
//! O(n) per query and the pending count differs per rank, so `TOT_INS`
//! diverges across ranks; the imbalance drains into the rank-sync
//! `MPI_Waitall` (`rankSyncSerialSkip.cc:217`) and `MPI_Allreduce`
//! (`rankSyncSerialSkip.cc:235`).
//!
//! `build(true)` applies the paper's fix — an unordered-map lookup,
//! O(log n) — which balances the query cost (the paper measures 99.92%
//! TOT_INS reduction and a 1.20× → 1.56× speedup at 32 ranks).

use crate::App;
use scalana_lang::builder::*;
use scalana_mpisim::MachineConfig;

/// Build the SST-like app; `fixed` switches the array scan to a map.
pub fn build(fixed: bool) -> App {
    let mut b = ProgramBuilder::new("sst.cc");
    // Simulated event batches per sync window and queries per batch.
    b.param("WINDOWS", 12);
    b.param("QUERIES", 2_000);
    b.param("FIXED", i64::from(fixed));

    b.function("main", &[], |f| {
        f.bcast(int(0), int(128));
        f.for_("w", int(0), var("WINDOWS"), |f| {
            f.call("handle_events", vec![var("w")]);
            f.call("rank_sync", vec![var("w")]);
        });
        f.reduce(int(0), int(8));
    });

    // The event handler: pending-request count varies per rank (the
    // simulated components are distributed unevenly).
    b.function("handle_events", &["w"], |f| {
        // pending ∈ [400, 3500]-ish, rank-dependent and static.
        f.let_(
            "pending",
            int(400) + (rank() * int(977) % int(31)) * int(100),
        );
        f.if_else(
            eq(var("FIXED"), int(0)),
            |f| {
                // O(n) array traversal per query — the root cause.
                f.at("mirandaCPU.cc", 247);
                f.for_("q", int(0), var("QUERIES"), |f| {
                    f.comp(
                        comp_cycles(var("pending") * int(3))
                            .ins(var("pending") * int(3))
                            .lst(var("pending"))
                            .miss(var("pending") / int(64))
                            .brmiss(var("pending") / int(16)),
                    );
                });
            },
            |f| {
                // Fixed: unordered-map lookup, O(log n) per query.
                f.at("mirandaCPU.cc", 249);
                f.for_("q", int(0), var("QUERIES"), |f| {
                    f.comp(
                        comp_cycles(log2(var("pending")) * int(24))
                            .ins(log2(var("pending")) * int(20))
                            .lst(log2(var("pending")) * int(6)),
                    );
                });
            },
        );
        // Event bookkeeping common to both variants.
        f.comp(
            comp_cycles(var("QUERIES") * int(40))
                .ins(var("QUERIES") * int(36))
                .lst(var("QUERIES") * int(12)),
        );
    });

    // Conservative rank synchronization at the end of each window.
    b.function("rank_sync", &["w"], |f| {
        f.let_("right", (rank() + int(1)) % nprocs());
        f.let_("left", (rank() + nprocs() - int(1)) % nprocs());
        f.isend("s", var("right"), var("w"), int(32 * 1024));
        f.irecv("r", var("left"), var("w"));
        f.at("rankSyncSerialSkip.cc", 217);
        f.waitall();
        f.at("rankSyncSerialSkip.cc", 235);
        f.allreduce(int(8));
    });

    App {
        name: "SST".to_string(),
        program: b.finish().expect("SST builds"),
        machine: MachineConfig::default(),
        expected_root_cause: Some("mirandaCPU.cc:247".to_string()),
        description: "SST-like PDES: O(n) pending-request scan imbalances ranks into \
                      the conservative sync"
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalana_graph::{build_psg, PsgOptions};
    use scalana_mpisim::{SimConfig, Simulation};

    #[test]
    fn fix_speeds_up_and_balances_tot_ins() {
        let broken = build(false);
        let fixed = build(true);
        let psg_b = build_psg(&broken.program, &PsgOptions::default());
        let psg_f = build_psg(&fixed.program, &PsgOptions::default());
        let rb = Simulation::new(&broken.program, &psg_b, SimConfig::with_nprocs(16))
            .run()
            .unwrap();
        let rf = Simulation::new(&fixed.program, &psg_f, SimConfig::with_nprocs(16))
            .run()
            .unwrap();
        assert!(
            rf.total_time() < rb.total_time() * 0.7,
            "large speedup expected"
        );

        let imbalance = |pmu: &[scalana_mpisim::interp::Pmu]| {
            let ins: Vec<f64> = pmu.iter().map(|p| p.tot_ins).collect();
            let max = ins.iter().copied().fold(f64::MIN, f64::max);
            let min = ins.iter().copied().fold(f64::MAX, f64::min);
            max / min
        };
        assert!(
            imbalance(&rb.rank_pmu) > 2.0,
            "broken SST has heavy TOT_INS imbalance"
        );
        assert!(
            imbalance(&rf.rank_pmu) < imbalance(&rb.rank_pmu) / 2.0,
            "fix balances instruction counts"
        );
    }

    #[test]
    fn sst_speedup_is_modest_like_paper() {
        // Paper: 1.28x at 16 vs 1.20x at 32 (4 ranks baseline) — SST
        // barely scales. Check scaling is sublinear.
        let app = build(false);
        let psg = build_psg(&app.program, &PsgOptions::default());
        let t4 = Simulation::new(&app.program, &psg, SimConfig::with_nprocs(4))
            .run()
            .unwrap()
            .total_time();
        let t32 = Simulation::new(&app.program, &psg, SimConfig::with_nprocs(32))
            .run()
            .unwrap()
            .total_time();
        let speedup = t4 / t32;
        assert!(
            speedup < 4.0,
            "SST scales poorly: {speedup:.2}x for 8x ranks"
        );
    }
}
