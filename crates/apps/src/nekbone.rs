//! Nekbone-like case study (paper §VI-D3, Fig. 16).
//!
//! Nekbone's conjugate-gradient iteration spends its time in a naive
//! `dgemm` loop (`blas.f:8941`). The loop issues the *same* load/store
//! count on every rank (`TOT_LST_INS` equal), but ranks are bound to
//! cores with different memory access speeds, so `TOT_CYC` — and thus
//! time — diverges; the spread drains into the halo `MPI_Waitall` at
//! `comm.h:243`.
//!
//! The per-core memory-speed difference is modeled *in the cost
//! expression* (`cycles = base + lst · memf(rank)`), which produces
//! exactly the PMU signature the paper shows: equal TOT_LST_INS,
//! divergent TOT_CYC. `build(true)` applies the paper's fix — an
//! optimized BLAS that slashes memory traffic (TOT_LST_INS −89.78%),
//! shrinking the variance (−94.03%) and lifting the 64-rank speedup
//! from 31.95× to 51.96×.

use crate::App;
use scalana_lang::builder::*;
use scalana_mpisim::MachineConfig;

/// Build the Nekbone-like app; `fixed` switches to the optimized BLAS.
pub fn build(fixed: bool) -> App {
    let mut b = ProgramBuilder::new("nekbone.f");
    // 16,384 spectral elements like the paper's runs.
    b.param("ELEMENTS", 16_384);
    b.param("CGITER", 15);
    // Memory-traffic divisor of the optimized BLAS.
    b.param("BLASOPT", if fixed { 10 } else { 1 });

    b.function("main", &[], |f| {
        f.let_("my_elems", max(var("ELEMENTS") / nprocs(), int(1)));
        f.bcast(int(0), int(64));
        f.for_("it", int(0), var("CGITER"), |f| {
            f.call("ax", vec![var("my_elems")]);
            f.call("gs_exchange", vec![var("it")]);
            // CG dot products.
            f.allreduce(int(8));
            f.allreduce(int(8));
        });
    });

    // Matrix-free operator application: per element, a small dgemm.
    b.function("ax", &["my_elems"], |f| {
        // Loads/stores per element are identical on every rank; the
        // per-rank memory factor models the heterogeneous cores the
        // paper found (ranks bound to cores with slower memory paths).
        f.let_("lst_per", int(5_000) / var("BLASOPT"));
        f.let_("memf", int(2) + rank() * int(7) % int(5));
        // The optimized BLAS trades memory stalls for dense FLOPs: the
        // per-element cycle count gains a rank-uniform compute term while
        // the memory-speed-sensitive part shrinks 10x.
        f.let_("dense", (var("BLASOPT") - int(1)) * int(400));
        f.at("blas.f", 8941);
        f.for_("e", int(0), var("my_elems"), |f| {
            f.comp(
                comp_cycles(int(2_000) + var("dense") + var("lst_per") * var("memf"))
                    .ins(int(6_000))
                    .lst(var("lst_per"))
                    .miss(var("lst_per") / int(100)),
            );
        });
    });

    // Gather-scatter halo exchange between neighbouring ranks.
    b.function("gs_exchange", &["it"], |f| {
        f.let_("right", (rank() + int(1)) % nprocs());
        f.let_("left", (rank() + nprocs() - int(1)) % nprocs());
        f.isend("s1", var("right"), var("it"), int(8 * 1024));
        f.irecv("r1", var("left"), var("it"));
        f.isend("s2", var("left"), var("it") + int(100), int(8 * 1024));
        f.irecv("r2", var("right"), var("it") + int(100));
        f.at("comm.h", 243);
        f.waitall();
    });

    App {
        name: "NEK".to_string(),
        program: b.finish().expect("Nekbone builds"),
        machine: MachineConfig::default(),
        expected_root_cause: Some("blas.f:8941".to_string()),
        description: "Nekbone-like spectral CG: memory-bound dgemm on heterogeneous \
                      cores draining into the halo waitall"
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalana_graph::{build_psg, PsgOptions};
    use scalana_mpisim::{SimConfig, Simulation};

    #[test]
    fn pmu_signature_matches_paper() {
        let app = build(false);
        let psg = build_psg(&app.program, &PsgOptions::default());
        let res = Simulation::new(&app.program, &psg, SimConfig::with_nprocs(8))
            .run()
            .unwrap();
        let lst: Vec<f64> = res.rank_pmu.iter().map(|p| p.lst_ins).collect();
        let cyc: Vec<f64> = res.rank_pmu.iter().map(|p| p.tot_cyc).collect();
        let spread = |v: &[f64]| {
            let max = v.iter().copied().fold(f64::MIN, f64::max);
            let min = v.iter().copied().fold(f64::MAX, f64::min);
            max / min
        };
        assert!(
            spread(&lst) < 1.05,
            "TOT_LST_INS equal across ranks: {lst:?}"
        );
        assert!(spread(&cyc) > 1.3, "TOT_CYC diverges across ranks: {cyc:?}");
    }

    #[test]
    fn blas_fix_cuts_lst_and_variance_and_time() {
        let broken = build(false);
        let fixed = build(true);
        let psg_b = build_psg(&broken.program, &PsgOptions::default());
        let psg_f = build_psg(&fixed.program, &PsgOptions::default());
        let rb = Simulation::new(&broken.program, &psg_b, SimConfig::with_nprocs(16))
            .run()
            .unwrap();
        let rf = Simulation::new(&fixed.program, &psg_f, SimConfig::with_nprocs(16))
            .run()
            .unwrap();
        // ~90% TOT_LST_INS reduction.
        let lst_b: f64 = rb.rank_pmu.iter().map(|p| p.lst_ins).sum();
        let lst_f: f64 = rf.rank_pmu.iter().map(|p| p.lst_ins).sum();
        assert!(lst_f < lst_b * 0.2, "lst {lst_b} -> {lst_f}");
        // And a solid speedup.
        assert!(rf.total_time() < rb.total_time() * 0.8);
    }
}
