//! NPB LU-like kernel: SSOR with a pipelined wavefront.
//!
//! The lower/upper triangular sweeps propagate a dependence along the
//! rank pipeline: each rank receives the boundary plane from its
//! predecessor, smooths its block, and forwards to its successor — the
//! classic LU "pencil" pipeline whose fill/drain cost grows with `p`.

use crate::App;
use scalana_lang::builder::*;
use scalana_mpisim::MachineConfig;

/// Build the LU app.
pub fn build() -> App {
    let mut b = ProgramBuilder::new("lu.f");
    b.param("NPOINTS", 8_000_000);
    b.param("NITER", 12);

    b.param("KPLANES", 8);

    b.function("main", &[], |f| {
        f.let_("local", var("NPOINTS") / nprocs());
        f.bcast(int(0), int(64));
        f.for_("it", int(0), var("NITER"), |f| {
            // Lower-triangular sweep: pipeline forward.
            f.call("sweep", vec![var("local"), int(0)]);
            // Upper-triangular sweep: pipeline backward.
            f.call("sweep_back", vec![var("local"), int(1)]);
            // RHS norm every iteration.
            f.allreduce(int(40));
        });
    });

    // Plane-pipelined sweep: rank r starts plane k as soon as its
    // predecessor finishes plane k, so successive ranks overlap — the
    // fill/drain cost is one plane per pipeline stage.
    b.function("sweep", &["local", "tag"], |f| {
        f.let_("plane", max(var("local") / var("KPLANES"), int(16)));
        f.for_("k", int(0), var("KPLANES"), |f| {
            f.if_(gt(rank(), int(0)), |f| {
                f.recv(rank() - int(1), var("tag") * int(100) + var("k"));
            });
            f.at("lu.f", 553);
            f.comp(
                comp_cycles(var("plane") * int(22))
                    .ins(var("plane") * int(20))
                    .lst(var("plane") * int(8))
                    .miss(var("plane") / int(25)),
            );
            f.if_(lt(rank(), nprocs() - int(1)), |f| {
                f.send(
                    rank() + int(1),
                    var("tag") * int(100) + var("k"),
                    max(var("plane") / int(8), int(64)),
                );
            });
        });
    });

    b.function("sweep_back", &["local", "tag"], |f| {
        f.let_("plane", max(var("local") / var("KPLANES"), int(16)));
        f.for_("k", int(0), var("KPLANES"), |f| {
            f.if_(lt(rank(), nprocs() - int(1)), |f| {
                f.recv(rank() + int(1), var("tag") * int(100) + var("k"));
            });
            f.comp(
                comp_cycles(var("plane") * int(22))
                    .ins(var("plane") * int(20))
                    .lst(var("plane") * int(8))
                    .miss(var("plane") / int(25)),
            );
            f.if_(gt(rank(), int(0)), |f| {
                f.send(
                    rank() - int(1),
                    var("tag") * int(100) + var("k"),
                    max(var("plane") / int(8), int(64)),
                );
            });
        });
    });

    App {
        name: "LU".to_string(),
        program: b.finish().expect("LU builds"),
        machine: MachineConfig::default(),
        expected_root_cause: None,
        description: "NPB LU-like: SSOR pipelined wavefront sweeps".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalana_graph::{build_psg, PsgOptions};
    use scalana_mpisim::{SimConfig, Simulation};

    #[test]
    fn lu_pipeline_completes() {
        let app = build();
        let psg = build_psg(&app.program, &PsgOptions::default());
        for p in [2usize, 7, 16] {
            Simulation::new(&app.program, &psg, SimConfig::with_nprocs(p))
                .run()
                .unwrap_or_else(|e| panic!("LU failed at {p}: {e}"));
        }
    }

    #[test]
    fn pipeline_fill_limits_scaling() {
        let app = build();
        let psg = build_psg(&app.program, &PsgOptions::default());
        let t2 = Simulation::new(&app.program, &psg, SimConfig::with_nprocs(2))
            .run()
            .unwrap()
            .total_time();
        let t32 = Simulation::new(&app.program, &psg, SimConfig::with_nprocs(32))
            .run()
            .unwrap()
            .total_time();
        let speedup = t2 / t32;
        assert!(
            speedup > 1.0 && speedup < 16.0,
            "LU speedup 2→32: {speedup:.1}x"
        );
    }
}
