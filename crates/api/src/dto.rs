//! Typed request/response DTOs of the `/v1` protocol.
//!
//! Every body the service reads or writes has a type here with explicit
//! `from_json`/`to_json` conversions through the canonical
//! [`crate::json`] layer, so the server, the bundled client, and the CLI
//! share one definition of the wire shape. The structs also carry the
//! vendored `serde` derives; in this offline workspace those derives are
//! inert markers (see `vendor/serde`), and the hand-rolled conversions
//! are the operative encoding — swapping in the real `serde` would make
//! the derives live without changing any shape.
//!
//! Field order in `to_json` is part of the contract: the canonical JSON
//! layer preserves insertion order, and integration tests compare
//! response documents byte-for-byte.

use crate::error::{ApiError, ErrorCode};
use crate::json::Json;
use serde::{Deserialize, Serialize};

/// Largest accepted process count per scale. The simulator allocates
/// per-rank state, so an unbounded request (`"scales":[1000000000]`)
/// would OOM a worker; the paper's largest runs are a few thousand
/// ranks, so this guardrail costs nothing real.
pub const MAX_SCALE: usize = 65_536;

/// Scales assumed when a submission omits `scales`.
pub const DEFAULT_SCALES: [usize; 4] = [4, 8, 16, 32];

/// Default server-side budget of `GET /v1/jobs/<id>/wait`.
pub const DEFAULT_WAIT_MS: u64 = 10_000;

/// Largest server-side budget of `GET /v1/jobs/<id>/wait`; larger
/// requested budgets are clamped, and clients needing longer waits
/// simply re-issue (the response is the current status either way).
pub const MAX_WAIT_MS: u64 = 25_000;

/// Default page size of `GET /v1/jobs`.
pub const DEFAULT_LIST_LIMIT: usize = 50;

/// Largest page size of `GET /v1/jobs`.
pub const MAX_LIST_LIMIT: usize = 500;

/// Default (and historical hard) page size of the `GET /v1/store` file
/// listing. An unqueried request serves exactly this many files, byte
/// identical to the pre-pagination response.
pub const DEFAULT_STORE_LIST_LIMIT: usize = 256;

/// Largest page size of `GET /v1/store`.
pub const MAX_STORE_LIST_LIMIT: usize = 1024;

/// Lifecycle states a job can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; result retrievable.
    Done,
    /// Execution failed; `error` carries the cause.
    Failed,
}

impl JobState {
    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    /// Parse a wire name.
    pub fn parse(name: &str) -> Option<JobState> {
        Some(match name {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            _ => return None,
        })
    }

    /// Whether the state is final (`done` or `failed`).
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Failed)
    }
}

/// What program a submission analyzes — exactly one of the three forms.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProgramRef {
    /// A built-in workload by Table II name (`CG`, `ZMP`, ...).
    App(String),
    /// Inline MiniMPI source shipped with the request.
    Source {
        /// File name used in `file:line` locations.
        name: String,
        /// The program text.
        text: String,
    },
    /// Content hash of a program the daemon has already seen
    /// (`program_hash` from an earlier submit response).
    Hash(String),
}

/// `POST /v1/jobs` request body (one submission; the batched form is a
/// JSON array of these).
///
/// ```json
/// {"app": "CG", "scales": [4, 8], "top": 3}
/// {"source": "fn main() { ... }", "name": "demo.mmpi",
///  "scales": [2, 4], "abnorm_thd": 1.5, "max_loop_depth": 6,
///  "params": {"N": 100000}}
/// {"program_hash": "f00f5ca1a71e57ed", "scales": [2, 4, 8, 16]}
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmitRequest {
    /// The program to analyze.
    pub program: ProgramRef,
    /// Ascending process counts; `None` means [`DEFAULT_SCALES`].
    pub scales: Option<Vec<usize>>,
    /// `AbnormThd` override.
    pub abnorm_thd: Option<f64>,
    /// Root-cause `top_k` override.
    pub top: Option<usize>,
    /// `MaxLoopDepth` override.
    pub max_loop_depth: Option<u32>,
    /// Program-parameter overrides, in request order.
    pub params: Vec<(String, i64)>,
}

/// Keys a submission object may carry; anything else is rejected with
/// [`ErrorCode::UnknownField`] so typos fail loudly instead of being
/// silently ignored.
const SUBMIT_KEYS: &[&str] = &[
    "app",
    "source",
    "name",
    "program_hash",
    "scales",
    "abnorm_thd",
    "top",
    "max_loop_depth",
    "params",
];

impl SubmitRequest {
    /// Submit a built-in app.
    pub fn app(name: impl Into<String>) -> SubmitRequest {
        SubmitRequest::of(ProgramRef::App(name.into()))
    }

    /// Submit inline source.
    pub fn source(name: impl Into<String>, text: impl Into<String>) -> SubmitRequest {
        SubmitRequest::of(ProgramRef::Source {
            name: name.into(),
            text: text.into(),
        })
    }

    /// Submit by content hash of a previously seen program.
    pub fn hash(hash: impl Into<String>) -> SubmitRequest {
        SubmitRequest::of(ProgramRef::Hash(hash.into()))
    }

    fn of(program: ProgramRef) -> SubmitRequest {
        SubmitRequest {
            program,
            scales: None,
            abnorm_thd: None,
            top: None,
            max_loop_depth: None,
            params: Vec::new(),
        }
    }

    /// Set the scale list.
    pub fn with_scales(mut self, scales: Vec<usize>) -> SubmitRequest {
        self.scales = Some(scales);
        self
    }

    /// Decode and validate a parsed submission document.
    pub fn from_json(doc: &Json) -> Result<SubmitRequest, ApiError> {
        let Json::Obj(pairs) = doc else {
            return Err(ApiError::bad_request("submission must be a JSON object"));
        };
        if let Some((key, _)) = pairs
            .iter()
            .find(|(k, _)| !SUBMIT_KEYS.contains(&k.as_str()))
        {
            return Err(ApiError::new(
                ErrorCode::UnknownField,
                format!("unknown field `{key}`"),
            ));
        }

        let program = match (doc.get("app"), doc.get("source"), doc.get("program_hash")) {
            (Some(app), None, None) => {
                if doc.get("name").is_some() {
                    return Err(ApiError::bad_request("`name` requires `source`"));
                }
                ProgramRef::App(
                    app.as_str()
                        .ok_or_else(|| ApiError::bad_request("`app` must be a string"))?
                        .to_string(),
                )
            }
            (None, Some(source), None) => ProgramRef::Source {
                name: match doc.get("name") {
                    None => "inline.mmpi".to_string(),
                    Some(name) => name
                        .as_str()
                        .ok_or_else(|| ApiError::bad_request("`name` must be a string"))?
                        .to_string(),
                },
                text: source
                    .as_str()
                    .ok_or_else(|| ApiError::bad_request("`source` must be a string"))?
                    .to_string(),
            },
            (None, None, Some(hash)) => {
                if doc.get("name").is_some() {
                    return Err(ApiError::bad_request("`name` requires `source`"));
                }
                ProgramRef::Hash(
                    hash.as_str()
                        .ok_or_else(|| ApiError::bad_request("`program_hash` must be a string"))?
                        .to_string(),
                )
            }
            _ => {
                return Err(ApiError::bad_request(
                    "exactly one of `app`, `source`, or `program_hash` is required",
                ))
            }
        };

        let scales = match doc.get("scales") {
            None => None,
            Some(value) => {
                let items = value
                    .as_array()
                    .ok_or_else(|| ApiError::bad_request("`scales` must be an array"))?;
                let scales: Vec<usize> = items
                    .iter()
                    .map(|v| {
                        v.as_i64()
                            .filter(|n| (1..=MAX_SCALE as i64).contains(n))
                            .map(|n| n as usize)
                            .ok_or_else(|| {
                                ApiError::bad_request(format!(
                                    "`scales` entries must be integers in 1..={MAX_SCALE}"
                                ))
                            })
                    })
                    .collect::<Result<_, _>>()?;
                if scales.is_empty() || scales.windows(2).any(|w| w[0] >= w[1]) {
                    return Err(ApiError::bad_request(
                        "`scales` must be a strictly ascending list",
                    ));
                }
                Some(scales)
            }
        };

        let abnorm_thd = doc
            .get("abnorm_thd")
            .map(|v| {
                v.as_f64()
                    .ok_or_else(|| ApiError::bad_request("`abnorm_thd` must be a number"))
            })
            .transpose()?;
        let top = doc
            .get("top")
            .map(|v| {
                v.as_i64()
                    .filter(|n| *n >= 0)
                    .map(|n| n as usize)
                    .ok_or_else(|| ApiError::bad_request("`top` must be a non-negative integer"))
            })
            .transpose()?;
        let max_loop_depth = doc
            .get("max_loop_depth")
            .map(|v| {
                v.as_i64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| {
                        ApiError::bad_request(
                            "`max_loop_depth` must be a non-negative 32-bit integer",
                        )
                    })
            })
            .transpose()?;

        let mut params = Vec::new();
        if let Some(v) = doc.get("params") {
            let Json::Obj(pairs) = v else {
                return Err(ApiError::bad_request("`params` must be an object"));
            };
            for (name, value) in pairs {
                let value = value.as_i64().ok_or_else(|| {
                    ApiError::bad_request(format!("param `{name}` must be an integer"))
                })?;
                params.push((name.clone(), value));
            }
        }

        Ok(SubmitRequest {
            program,
            scales,
            abnorm_thd,
            top,
            max_loop_depth,
            params,
        })
    }

    /// Canonical request body.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&str, Json)> = Vec::new();
        match &self.program {
            ProgramRef::App(name) => pairs.push(("app", name.as_str().into())),
            ProgramRef::Source { name, text } => {
                pairs.push(("source", text.as_str().into()));
                pairs.push(("name", name.as_str().into()));
            }
            ProgramRef::Hash(hash) => pairs.push(("program_hash", hash.as_str().into())),
        }
        if let Some(scales) = &self.scales {
            pairs.push(("scales", scales.clone().into()));
        }
        if let Some(thd) = self.abnorm_thd {
            pairs.push(("abnorm_thd", thd.into()));
        }
        if let Some(top) = self.top {
            pairs.push(("top", top.into()));
        }
        if let Some(depth) = self.max_loop_depth {
            pairs.push(("max_loop_depth", depth.into()));
        }
        if !self.params.is_empty() {
            pairs.push((
                "params",
                Json::Obj(
                    self.params
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Int(*v)))
                        .collect(),
                ),
            ));
        }
        Json::obj(pairs)
    }
}

/// Status document of one job (`GET /v1/jobs/<id>`, also embedded in
/// listings and cache-hit submit responses).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobView {
    /// Content-addressed job key.
    pub job: String,
    /// Human-readable program label.
    pub program: String,
    /// Requested scales.
    pub scales: Vec<usize>,
    /// Current state.
    pub status: JobState,
    /// Failure cause, when `failed`.
    pub error: Option<String>,
}

impl JobView {
    /// Canonical response body.
    pub fn to_json(&self) -> Json {
        Json::Obj(self.pairs())
    }

    fn pairs(&self) -> Vec<(String, Json)> {
        let mut pairs = vec![
            ("job".to_string(), Json::from(self.job.as_str())),
            ("program".to_string(), self.program.as_str().into()),
            ("scales".to_string(), self.scales.clone().into()),
            ("status".to_string(), self.status.as_str().into()),
        ];
        if let Some(error) = &self.error {
            pairs.push(("error".to_string(), error.as_str().into()));
        }
        pairs
    }

    /// Decode a status document.
    pub fn from_json(doc: &Json) -> Option<JobView> {
        Some(JobView {
            job: doc.get("job")?.as_str()?.to_string(),
            program: doc.get("program")?.as_str()?.to_string(),
            scales: doc
                .get("scales")?
                .as_array()?
                .iter()
                .map(|v| v.as_i64().map(|n| n as usize))
                .collect::<Option<_>>()?,
            status: JobState::parse(doc.get("status")?.as_str()?)?,
            error: doc.get("error").and_then(Json::as_str).map(str::to_string),
        })
    }
}

/// `POST /v1/jobs` response (per submission; the batched form answers
/// with an array of these, errors reported in place).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SubmitAck {
    /// New work was registered and enqueued.
    Queued {
        /// Content-addressed job key.
        job: String,
        /// Content hash of the submitted program (usable as
        /// `program_hash` in later submissions).
        program_hash: String,
    },
    /// The job already existed — answered from the registry, whether
    /// completed or still in flight.
    Cached {
        /// The existing job's status view.
        view: JobView,
        /// Content hash of the submitted program.
        program_hash: String,
    },
}

impl SubmitAck {
    /// The job key, either way.
    pub fn job(&self) -> &str {
        match self {
            SubmitAck::Queued { job, .. } => job,
            SubmitAck::Cached { view, .. } => &view.job,
        }
    }

    /// Whether the submission was answered from an existing record.
    pub fn cached(&self) -> bool {
        matches!(self, SubmitAck::Cached { .. })
    }

    /// Canonical response body.
    pub fn to_json(&self) -> Json {
        match self {
            SubmitAck::Queued { job, program_hash } => Json::obj(vec![
                ("job", job.as_str().into()),
                ("status", JobState::Queued.as_str().into()),
                ("cached", false.into()),
                ("program_hash", program_hash.as_str().into()),
            ]),
            SubmitAck::Cached { view, program_hash } => {
                let mut pairs = view.pairs();
                pairs.push(("cached".to_string(), Json::Bool(true)));
                pairs.push(("program_hash".to_string(), program_hash.as_str().into()));
                Json::Obj(pairs)
            }
        }
    }

    /// Decode a submit response.
    pub fn from_json(doc: &Json) -> Option<SubmitAck> {
        let program_hash = doc.get("program_hash")?.as_str()?.to_string();
        if doc.get("cached")?.as_bool()? {
            Some(SubmitAck::Cached {
                view: JobView::from_json(doc)?,
                program_hash,
            })
        } else {
            Some(SubmitAck::Queued {
                job: doc.get("job")?.as_str()?.to_string(),
                program_hash,
            })
        }
    }
}

/// Decoded query of `GET /v1/jobs`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ListQuery {
    /// Only jobs in this state (`None` = all).
    pub state: Option<JobState>,
    /// Page size, `1..=`[`MAX_LIST_LIMIT`].
    pub limit: usize,
    /// Exclusive lower bound on the job key (the previous page's
    /// `next_after`).
    pub after: Option<String>,
}

impl Default for ListQuery {
    fn default() -> ListQuery {
        ListQuery {
            state: None,
            limit: DEFAULT_LIST_LIMIT,
            after: None,
        }
    }
}

impl ListQuery {
    /// Decode and validate the query pairs of a listing request.
    pub fn from_query(pairs: &[(&str, &str)]) -> Result<ListQuery, ApiError> {
        let mut query = ListQuery::default();
        for (key, value) in pairs {
            match *key {
                "state" => {
                    query.state = Some(JobState::parse(value).ok_or_else(|| {
                        ApiError::bad_request(
                            "`state` must be one of queued, running, done, failed",
                        )
                    })?);
                }
                "limit" => {
                    query.limit = value
                        .parse::<usize>()
                        .ok()
                        .filter(|n| (1..=MAX_LIST_LIMIT).contains(n))
                        .ok_or_else(|| {
                            ApiError::bad_request(format!(
                                "`limit` must be an integer in 1..={MAX_LIST_LIMIT}"
                            ))
                        })?;
                }
                "after" => query.after = Some(value.to_string()),
                other => {
                    return Err(ApiError::new(
                        ErrorCode::UnknownField,
                        format!("unknown query parameter `{other}`"),
                    ))
                }
            }
        }
        Ok(query)
    }
}

/// `GET /v1/jobs` response: one page of jobs ordered by key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobPage {
    /// The page, ascending by job key.
    pub jobs: Vec<JobView>,
    /// Cursor for the next page (`None` when this is the last one).
    pub next_after: Option<String>,
}

impl JobPage {
    /// Canonical response body.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "jobs",
                Json::Arr(self.jobs.iter().map(JobView::to_json).collect()),
            ),
            ("count", self.jobs.len().into()),
            (
                "next_after",
                self.next_after.as_deref().map_or(Json::Null, Json::from),
            ),
        ])
    }

    /// Decode a listing response.
    pub fn from_json(doc: &Json) -> Option<JobPage> {
        Some(JobPage {
            jobs: doc
                .get("jobs")?
                .as_array()?
                .iter()
                .map(JobView::from_json)
                .collect::<Option<_>>()?,
            next_after: doc
                .get("next_after")
                .and_then(Json::as_str)
                .map(str::to_string),
        })
    }
}

/// Decoded query of `GET /v1/jobs/<id>/wait`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaitQuery {
    /// Server-side budget, already clamped to [`MAX_WAIT_MS`].
    pub timeout_ms: u64,
}

impl WaitQuery {
    /// Decode and validate the query pairs of a wait request.
    pub fn from_query(pairs: &[(&str, &str)]) -> Result<WaitQuery, ApiError> {
        let mut timeout_ms = DEFAULT_WAIT_MS;
        for (key, value) in pairs {
            match *key {
                "timeout_ms" => {
                    timeout_ms = value.parse::<u64>().map_err(|_| {
                        ApiError::bad_request("`timeout_ms` must be a non-negative integer")
                    })?;
                }
                other => {
                    return Err(ApiError::new(
                        ErrorCode::UnknownField,
                        format!("unknown query parameter `{other}`"),
                    ))
                }
            }
        }
        Ok(WaitQuery {
            timeout_ms: timeout_ms.min(MAX_WAIT_MS),
        })
    }
}

/// Decoded query of `GET /v1/store` — keyset pagination over the
/// name-sorted file listing, same `after`/`limit` semantics as
/// [`ListQuery`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreQuery {
    /// Page size, `1..=`[`MAX_STORE_LIST_LIMIT`].
    pub limit: usize,
    /// Exclusive lower bound on the file name (the previous page's
    /// `next_after`).
    pub after: Option<String>,
}

impl Default for StoreQuery {
    fn default() -> StoreQuery {
        StoreQuery {
            limit: DEFAULT_STORE_LIST_LIMIT,
            after: None,
        }
    }
}

impl StoreQuery {
    /// Decode and validate the query pairs of a store listing request.
    pub fn from_query(pairs: &[(&str, &str)]) -> Result<StoreQuery, ApiError> {
        let mut query = StoreQuery::default();
        for (key, value) in pairs {
            match *key {
                "limit" => {
                    query.limit = value
                        .parse::<usize>()
                        .ok()
                        .filter(|n| (1..=MAX_STORE_LIST_LIMIT).contains(n))
                        .ok_or_else(|| {
                            ApiError::bad_request(format!(
                                "`limit` must be an integer in 1..={MAX_STORE_LIST_LIMIT}"
                            ))
                        })?;
                }
                "after" => query.after = Some(value.to_string()),
                other => {
                    return Err(ApiError::new(
                        ErrorCode::UnknownField,
                        format!("unknown query parameter `{other}`"),
                    ))
                }
            }
        }
        Ok(query)
    }
}

/// Whether a string is a well-formed federation cache key: exactly 16
/// lowercase hex digits, the output shape of the service's stable
/// hasher. Peer endpoints reject anything else up front, so a mutated
/// key can never reach the cache layer.
pub fn valid_peer_key(key: &str) -> bool {
    key.len() == 16
        && key
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
}

/// `GET /v1/peer/ring` response (also the answer to a successful
/// announce): the responding daemon's identity and its sorted,
/// deduplicated member list. Every member computes ownership over the
/// same sorted list, so two daemons with equal `members` agree on the
/// owner of every key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingView {
    /// The responding daemon's own advertised address.
    pub self_addr: String,
    /// All ring members (including `self_addr`), ascending.
    pub members: Vec<String>,
}

impl RingView {
    /// Canonical response body.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("self", self.self_addr.as_str().into()),
            (
                "members",
                Json::Arr(self.members.iter().map(|m| m.as_str().into()).collect()),
            ),
        ])
    }

    /// Decode a ring document.
    pub fn from_json(doc: &Json) -> Option<RingView> {
        Some(RingView {
            self_addr: doc.get("self")?.as_str()?.to_string(),
            members: doc
                .get("members")?
                .as_array()?
                .iter()
                .map(|v| v.as_str().map(str::to_string))
                .collect::<Option<_>>()?,
        })
    }
}

/// `POST /v1/peer/announce` request body: one peer introducing itself.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerAnnounce {
    /// The announcing daemon's advertised `host:port` address.
    pub addr: String,
}

impl PeerAnnounce {
    /// Decode and validate an announce document. The address must parse
    /// as a socket address — the receiver will dial it.
    pub fn from_json(doc: &Json) -> Result<PeerAnnounce, ApiError> {
        let Json::Obj(pairs) = doc else {
            return Err(ApiError::bad_request("announce must be a JSON object"));
        };
        if let Some((key, _)) = pairs.iter().find(|(k, _)| k != "addr") {
            return Err(ApiError::new(
                ErrorCode::UnknownField,
                format!("unknown field `{key}`"),
            ));
        }
        let addr = doc
            .get("addr")
            .and_then(Json::as_str)
            .ok_or_else(|| ApiError::bad_request("`addr` must be a string"))?;
        if addr.parse::<std::net::SocketAddr>().is_err() {
            return Err(ApiError::bad_request(
                "`addr` must be a dialable `host:port` socket address",
            ));
        }
        Ok(PeerAnnounce {
            addr: addr.to_string(),
        })
    }

    /// Canonical request body.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![("addr", self.addr.as_str().into())])
    }
}

/// One cache entry on the peer wire (`GET`/`POST /v1/peer/profile/<key>`
/// and `/v1/peer/psg/<key>`): the content-addressed key plus the entry's
/// bytes, hex-encoded so the body stays valid JSON text regardless of
/// payload content.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerBlob {
    /// The entry's cache key (16 lowercase hex digits).
    pub key: String,
    /// Hex-encoded entry bytes.
    pub payload: String,
}

impl PeerBlob {
    /// Wrap raw entry bytes for the wire.
    pub fn from_bytes(key: impl Into<String>, bytes: &[u8]) -> PeerBlob {
        let mut payload = String::with_capacity(bytes.len() * 2);
        for b in bytes {
            payload.push(char::from_digit((b >> 4) as u32, 16).unwrap());
            payload.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
        }
        PeerBlob {
            key: key.into(),
            payload,
        }
    }

    /// Decode the hex payload back into entry bytes.
    pub fn bytes(&self) -> Result<Vec<u8>, ApiError> {
        if !self.payload.len().is_multiple_of(2) {
            return Err(ApiError::bad_request("`payload` must be even-length hex"));
        }
        let digit = |b: u8| -> Result<u8, ApiError> {
            (b as char)
                .to_digit(16)
                .map(|d| d as u8)
                .ok_or_else(|| ApiError::bad_request("`payload` must be hex"))
        };
        let raw = self.payload.as_bytes();
        let mut bytes = Vec::with_capacity(raw.len() / 2);
        for pair in raw.chunks_exact(2) {
            bytes.push((digit(pair[0])? << 4) | digit(pair[1])?);
        }
        Ok(bytes)
    }

    /// Decode and validate a peer blob document.
    pub fn from_json(doc: &Json) -> Result<PeerBlob, ApiError> {
        let Json::Obj(pairs) = doc else {
            return Err(ApiError::bad_request("peer blob must be a JSON object"));
        };
        if let Some((key, _)) = pairs.iter().find(|(k, _)| k != "key" && k != "payload") {
            return Err(ApiError::new(
                ErrorCode::UnknownField,
                format!("unknown field `{key}`"),
            ));
        }
        let key = doc
            .get("key")
            .and_then(Json::as_str)
            .ok_or_else(|| ApiError::bad_request("`key` must be a string"))?;
        if !valid_peer_key(key) {
            return Err(ApiError::bad_request(
                "`key` must be 16 lowercase hex digits",
            ));
        }
        let payload = doc
            .get("payload")
            .and_then(Json::as_str)
            .ok_or_else(|| ApiError::bad_request("`payload` must be a string"))?;
        let blob = PeerBlob {
            key: key.to_string(),
            payload: payload.to_string(),
        };
        blob.bytes()?;
        Ok(blob)
    }

    /// Canonical wire body.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("key", self.key.as_str().into()),
            ("payload", self.payload.as_str().into()),
        ])
    }
}

/// `POST /v1/diff` request body: two submissions to run (or reuse) and
/// compare.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffRequest {
    /// Baseline side.
    pub a: SubmitRequest,
    /// Candidate side.
    pub b: SubmitRequest,
}

impl DiffRequest {
    /// Decode and validate a diff request document.
    pub fn from_json(doc: &Json) -> Result<DiffRequest, ApiError> {
        let Json::Obj(pairs) = doc else {
            return Err(ApiError::bad_request("diff request must be a JSON object"));
        };
        if let Some((key, _)) = pairs.iter().find(|(k, _)| k != "a" && k != "b") {
            return Err(ApiError::new(
                ErrorCode::UnknownField,
                format!("unknown field `{key}`"),
            ));
        }
        let side = |key: &str| -> Result<SubmitRequest, ApiError> {
            let doc = doc.get(key).ok_or_else(|| {
                ApiError::bad_request("`a` and `b` submission objects are required")
            })?;
            SubmitRequest::from_json(doc).map_err(|e| ApiError {
                message: format!("`{key}`: {}", e.message),
                ..e
            })
        };
        Ok(DiffRequest {
            a: side("a")?,
            b: side("b")?,
        })
    }

    /// Canonical request body.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![("a", self.a.to_json()), ("b", self.b.to_json())])
    }
}

/// `GET /v1/stats` response — the daemon's monotonic counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsResponse {
    /// Worker threads.
    pub workers: usize,
    /// Jobs waiting in the bounded queue lane.
    pub queue_depth: usize,
    /// Completed results currently cached.
    pub results_cached: usize,
    /// Submissions accepted (fresh + hits).
    pub submitted: u64,
    /// Submissions answered from an existing record.
    pub cache_hits: u64,
    /// Submissions that created a new job.
    pub cache_misses: u64,
    /// Submissions rejected because the queue was full.
    pub rejected: u64,
    /// Pipeline executions started by workers.
    pub executed: u64,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Completed results evicted by the capacity bound.
    pub evicted: u64,
    /// Requested scales answered from the per-scale profile cache.
    pub scale_hits: u64,
    /// Requested scales that had to be simulated.
    pub scale_misses: u64,
    /// Profile images evicted by the capacity bound.
    pub scale_evicted: u64,
    /// Profile images currently cached.
    pub profiles_cached: usize,
    /// Refined-PSG cache hits.
    pub psg_hits: u64,
    /// Refined-PSG cache misses.
    pub psg_misses: u64,
    /// Programs indexed for `program_hash` reuse.
    pub programs_indexed: usize,
    /// Entries persisted to the durable store (0 without `--store-dir`).
    pub store_writes: u64,
    /// Failed store write attempts.
    pub store_write_errors: u64,
    /// Store writes skipped while degraded to memory-only mode.
    pub store_skipped: u64,
    /// Files quarantined as corrupt, torn, alien, or orphaned.
    pub store_quarantined: u64,
    /// Entries loaded from disk (warm scan + read-through).
    pub store_loaded: u64,
    /// Entries removed by the store's LRU quota sweep.
    pub store_evicted: u64,
    /// Live entries in the store directory.
    pub store_entries: u64,
    /// Bytes of live store entries.
    pub store_bytes: u64,
    /// 1 while the store's write breaker is open (memory-only), else 0.
    pub store_degraded: u64,
    /// Requests made to federation peers (fetches + write-throughs).
    pub peer_requests: u64,
    /// Cache entries served by a federation peer.
    pub peer_hits: u64,
    /// Write-through entries queued but not yet offered to their owner.
    pub peer_backlog: u64,
    /// Daemon crate version, so fleet tooling can tell restarts from
    /// stalls (empty when talking to a pre-version daemon).
    pub version: String,
    /// Milliseconds since the daemon started.
    pub uptime_ms: u64,
}

impl StatsResponse {
    /// Canonical response body (field order is the contract).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("workers", self.workers.into()),
            ("queue_depth", self.queue_depth.into()),
            ("results_cached", self.results_cached.into()),
            ("submitted", self.submitted.into()),
            ("cache_hits", self.cache_hits.into()),
            ("cache_misses", self.cache_misses.into()),
            ("rejected", self.rejected.into()),
            ("executed", self.executed.into()),
            ("completed", self.completed.into()),
            ("failed", self.failed.into()),
            ("evicted", self.evicted.into()),
            ("scale_hits", self.scale_hits.into()),
            ("scale_misses", self.scale_misses.into()),
            ("scale_evicted", self.scale_evicted.into()),
            ("profiles_cached", self.profiles_cached.into()),
            ("psg_hits", self.psg_hits.into()),
            ("psg_misses", self.psg_misses.into()),
            ("programs_indexed", self.programs_indexed.into()),
            ("store_writes", self.store_writes.into()),
            ("store_write_errors", self.store_write_errors.into()),
            ("store_skipped", self.store_skipped.into()),
            ("store_quarantined", self.store_quarantined.into()),
            ("store_loaded", self.store_loaded.into()),
            ("store_evicted", self.store_evicted.into()),
            ("store_entries", self.store_entries.into()),
            ("store_bytes", self.store_bytes.into()),
            ("store_degraded", self.store_degraded.into()),
            ("peer_requests", self.peer_requests.into()),
            ("peer_hits", self.peer_hits.into()),
            ("peer_backlog", self.peer_backlog.into()),
            ("version", self.version.as_str().into()),
            ("uptime_ms", self.uptime_ms.into()),
        ])
    }

    /// Decode a stats document (absent counters read as 0).
    pub fn from_json(doc: &Json) -> StatsResponse {
        let n = |key: &str| doc.get(key).and_then(Json::as_i64).unwrap_or(0);
        StatsResponse {
            workers: n("workers") as usize,
            queue_depth: n("queue_depth") as usize,
            results_cached: n("results_cached") as usize,
            submitted: n("submitted") as u64,
            cache_hits: n("cache_hits") as u64,
            cache_misses: n("cache_misses") as u64,
            rejected: n("rejected") as u64,
            executed: n("executed") as u64,
            completed: n("completed") as u64,
            failed: n("failed") as u64,
            evicted: n("evicted") as u64,
            scale_hits: n("scale_hits") as u64,
            scale_misses: n("scale_misses") as u64,
            scale_evicted: n("scale_evicted") as u64,
            profiles_cached: n("profiles_cached") as usize,
            psg_hits: n("psg_hits") as u64,
            psg_misses: n("psg_misses") as u64,
            programs_indexed: n("programs_indexed") as usize,
            store_writes: n("store_writes") as u64,
            store_write_errors: n("store_write_errors") as u64,
            store_skipped: n("store_skipped") as u64,
            store_quarantined: n("store_quarantined") as u64,
            store_loaded: n("store_loaded") as u64,
            store_evicted: n("store_evicted") as u64,
            store_entries: n("store_entries") as u64,
            store_bytes: n("store_bytes") as u64,
            store_degraded: n("store_degraded") as u64,
            peer_requests: n("peer_requests") as u64,
            peer_hits: n("peer_hits") as u64,
            peer_backlog: n("peer_backlog") as u64,
            version: doc
                .get("version")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            uptime_ms: n("uptime_ms") as u64,
        }
    }
}

/// Render the result document of a completed job by splicing the
/// pre-rendered canonical fragments: results are fetched repeatedly, so
/// the report/runs trees are serialized once at completion and every
/// request reuses those exact bytes. Field syntax stays valid because
/// each fragment is itself canonical JSON.
pub fn render_result(job: &str, report_json: &str, runs_json: &str, detect_seconds: f64) -> String {
    let mut body = String::with_capacity(report_json.len() + runs_json.len() + 96);
    body.push_str("{\"job\":");
    body.push_str(&Json::from(job).render());
    body.push_str(",\"report\":");
    body.push_str(report_json);
    body.push_str(",\"runs\":");
    body.push_str(runs_json);
    body.push_str(",\"detect_seconds\":");
    body.push_str(&Json::Num(detect_seconds).render());
    body.push('}');
    body
}

/// Decoded `GET /v1/jobs/<id>/result` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultView {
    /// Job key.
    pub job: String,
    /// The detection report document.
    pub report: Json,
    /// Per-scale run summaries.
    pub runs: Json,
    /// Wall-clock detection seconds (not deterministic).
    pub detect_seconds: f64,
}

impl ResultView {
    /// Decode a result document.
    pub fn from_json(doc: &Json) -> Option<ResultView> {
        Some(ResultView {
            job: doc.get("job")?.as_str()?.to_string(),
            report: doc.get("report")?.clone(),
            runs: doc.get("runs")?.clone(),
            detect_seconds: doc.get("detect_seconds")?.as_f64()?,
        })
    }
}

/// The `{"ok":true}` body of `/v1/shutdown`.
pub fn ok_body() -> Json {
    Json::obj(vec![("ok", true.into())])
}

/// The `/v1/healthz` body: liveness plus enough identity for fleet
/// tooling to distinguish a restart (version change, uptime reset)
/// from a stall. The contract only grows — `ok` keeps its meaning.
pub fn health_body(version: &str, uptime_ms: u64) -> Json {
    Json::obj(vec![
        ("ok", true.into()),
        ("version", version.into()),
        ("uptime_ms", uptime_ms.into()),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn submit_request_round_trips_through_json() {
        let request = SubmitRequest {
            program: ProgramRef::Source {
                name: "x.mmpi".to_string(),
                text: "fn main() { }".to_string(),
            },
            scales: Some(vec![2, 4]),
            abnorm_thd: Some(1.5),
            top: Some(3),
            max_loop_depth: Some(6),
            params: vec![("N".to_string(), 5)],
        };
        let doc = request.to_json();
        assert_eq!(SubmitRequest::from_json(&doc).unwrap(), request);

        let app = SubmitRequest::app("CG").with_scales(vec![2, 4, 8]);
        assert_eq!(app.to_json().render(), r#"{"app":"CG","scales":[2,4,8]}"#);
        let hash = SubmitRequest::hash("f00f5ca1a71e57ed");
        assert_eq!(
            SubmitRequest::from_json(&hash.to_json()).unwrap().program,
            ProgramRef::Hash("f00f5ca1a71e57ed".to_string())
        );
    }

    #[test]
    fn submit_request_rejections_carry_codes() {
        for (body, code, needle) in [
            ("{}", ErrorCode::BadRequest, "exactly one"),
            (
                r#"{"app":"CG","source":"x"}"#,
                ErrorCode::BadRequest,
                "exactly one",
            ),
            (
                r#"{"app":"CG","wat":1}"#,
                ErrorCode::UnknownField,
                "unknown field `wat`",
            ),
            (
                r#"{"app":1}"#,
                ErrorCode::BadRequest,
                "`app` must be a string",
            ),
            (
                r#"{"app":"CG","name":"x"}"#,
                ErrorCode::BadRequest,
                "requires `source`",
            ),
            (
                r#"{"app":"CG","scales":"4"}"#,
                ErrorCode::BadRequest,
                "array",
            ),
            (
                r#"{"app":"CG","scales":[8,4]}"#,
                ErrorCode::BadRequest,
                "ascending",
            ),
            (
                r#"{"app":"CG","scales":[0]}"#,
                ErrorCode::BadRequest,
                "1..=",
            ),
            (
                r#"{"app":"CG","scales":[1000000000]}"#,
                ErrorCode::BadRequest,
                "1..=",
            ),
            (
                r#"{"app":"CG","abnorm_thd":"x"}"#,
                ErrorCode::BadRequest,
                "number",
            ),
            (
                r#"{"app":"CG","top":-1}"#,
                ErrorCode::BadRequest,
                "non-negative",
            ),
            (
                r#"{"app":"CG","max_loop_depth":4294967296}"#,
                ErrorCode::BadRequest,
                "32-bit",
            ),
            (
                r#"{"app":"CG","params":[1]}"#,
                ErrorCode::BadRequest,
                "object",
            ),
            (
                r#"{"app":"CG","params":{"N":"x"}}"#,
                ErrorCode::BadRequest,
                "integer",
            ),
            ("[1]", ErrorCode::BadRequest, "JSON object"),
        ] {
            let err = SubmitRequest::from_json(&parse(body).unwrap()).unwrap_err();
            assert_eq!(err.code, code, "{body} -> {err}");
            assert!(err.message.contains(needle), "{body} -> {err}");
            assert!(!err.retryable, "contract violations are not retryable");
        }
    }

    #[test]
    fn acks_and_views_render_the_legacy_shapes() {
        let queued = SubmitAck::Queued {
            job: "abc".to_string(),
            program_hash: "ff00".to_string(),
        };
        assert_eq!(
            queued.to_json().render(),
            r#"{"job":"abc","status":"queued","cached":false,"program_hash":"ff00"}"#
        );
        let view = JobView {
            job: "abc".to_string(),
            program: "app:CG".to_string(),
            scales: vec![2, 4],
            status: JobState::Done,
            error: None,
        };
        let cached = SubmitAck::Cached {
            view: view.clone(),
            program_hash: "ff00".to_string(),
        };
        assert_eq!(
            cached.to_json().render(),
            r#"{"job":"abc","program":"app:CG","scales":[2,4],"status":"done","cached":true,"program_hash":"ff00"}"#
        );
        assert_eq!(SubmitAck::from_json(&cached.to_json()).unwrap(), cached);
        assert_eq!(SubmitAck::from_json(&queued.to_json()).unwrap(), queued);
        assert_eq!(JobView::from_json(&view.to_json()).unwrap(), view);
        assert!(cached.cached() && !queued.cached());
        assert_eq!(queued.job(), "abc");
    }

    #[test]
    fn list_and_wait_queries_validate() {
        let query =
            ListQuery::from_query(&[("state", "done"), ("limit", "10"), ("after", "ff")]).unwrap();
        assert_eq!(query.state, Some(JobState::Done));
        assert_eq!(query.limit, 10);
        assert_eq!(query.after.as_deref(), Some("ff"));
        assert_eq!(ListQuery::from_query(&[]).unwrap(), ListQuery::default());
        assert_eq!(
            ListQuery::from_query(&[("state", "nope")])
                .unwrap_err()
                .code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            ListQuery::from_query(&[("limit", "0")]).unwrap_err().code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            ListQuery::from_query(&[("wat", "1")]).unwrap_err().code,
            ErrorCode::UnknownField
        );

        assert_eq!(
            WaitQuery::from_query(&[]).unwrap().timeout_ms,
            DEFAULT_WAIT_MS
        );
        assert_eq!(
            WaitQuery::from_query(&[("timeout_ms", "99999999")])
                .unwrap()
                .timeout_ms,
            MAX_WAIT_MS,
            "over-budget waits clamp"
        );
        assert_eq!(
            WaitQuery::from_query(&[("timeout_ms", "-1")])
                .unwrap_err()
                .code,
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn diff_request_validates_both_sides() {
        let doc =
            parse(r#"{"a":{"app":"CG","scales":[2,4]},"b":{"app":"MG","scales":[2,4]}}"#).unwrap();
        let request = DiffRequest::from_json(&doc).unwrap();
        assert_eq!(request.a.program, ProgramRef::App("CG".to_string()));
        assert_eq!(request.b.program, ProgramRef::App("MG".to_string()));
        assert_eq!(DiffRequest::from_json(&request.to_json()).unwrap(), request);

        let err = DiffRequest::from_json(&parse(r#"{"a":{"app":"CG"}}"#).unwrap()).unwrap_err();
        assert!(err.message.contains("required"), "{err}");
        let err = DiffRequest::from_json(&parse(r#"{"a":{},"b":{}}"#).unwrap()).unwrap_err();
        assert!(err.message.starts_with("`a`:"), "side is named: {err}");
        let err = DiffRequest::from_json(&parse(r#"{"a":{},"b":{},"c":{}}"#).unwrap()).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnknownField);
    }

    #[test]
    fn result_splicing_matches_a_tree_render() {
        let body = render_result("abc", r#"{"root_causes":[]}"#, "[{\"nprocs\":2}]", 0.25);
        let doc = parse(&body).unwrap();
        assert_eq!(doc.render(), body, "spliced body is canonical");
        let view = ResultView::from_json(&doc).unwrap();
        assert_eq!(view.job, "abc");
        assert!((view.detect_seconds - 0.25).abs() < 1e-12);
    }

    #[test]
    fn stats_round_trip() {
        let stats = StatsResponse {
            workers: 2,
            queue_depth: 1,
            submitted: 10,
            scale_hits: 7,
            ..StatsResponse::default()
        };
        let doc = stats.to_json();
        assert_eq!(StatsResponse::from_json(&doc), stats);
        assert!(doc.render().starts_with(r#"{"workers":2,"queue_depth":1,"#));
    }

    #[test]
    fn store_queries_validate() {
        assert_eq!(StoreQuery::from_query(&[]).unwrap(), StoreQuery::default());
        let query = StoreQuery::from_query(&[("after", "ff.profile"), ("limit", "7")]).unwrap();
        assert_eq!(query.limit, 7);
        assert_eq!(query.after.as_deref(), Some("ff.profile"));
        assert_eq!(
            StoreQuery::from_query(&[("limit", "0")]).unwrap_err().code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            StoreQuery::from_query(&[("limit", "9999")])
                .unwrap_err()
                .code,
            ErrorCode::BadRequest
        );
        assert_eq!(
            StoreQuery::from_query(&[("state", "done")])
                .unwrap_err()
                .code,
            ErrorCode::UnknownField
        );
    }

    #[test]
    fn ring_and_announce_round_trip() {
        let ring = RingView {
            self_addr: "127.0.0.1:7878".to_string(),
            members: vec!["127.0.0.1:7878".to_string(), "127.0.0.1:7879".to_string()],
        };
        assert_eq!(
            ring.to_json().render(),
            r#"{"self":"127.0.0.1:7878","members":["127.0.0.1:7878","127.0.0.1:7879"]}"#
        );
        assert_eq!(RingView::from_json(&ring.to_json()).unwrap(), ring);

        let announce = PeerAnnounce {
            addr: "127.0.0.1:7879".to_string(),
        };
        assert_eq!(
            PeerAnnounce::from_json(&announce.to_json()).unwrap(),
            announce
        );
        for (body, code) in [
            (r#"{"addr":"not-an-addr"}"#, ErrorCode::BadRequest),
            (r#"{"addr":7879}"#, ErrorCode::BadRequest),
            (r#"{"addr":"127.0.0.1:1","x":1}"#, ErrorCode::UnknownField),
            ("[1]", ErrorCode::BadRequest),
        ] {
            let err = PeerAnnounce::from_json(&parse(body).unwrap()).unwrap_err();
            assert_eq!(err.code, code, "{body} -> {err}");
        }
    }

    #[test]
    fn peer_blobs_round_trip_and_validate() {
        let blob = PeerBlob::from_bytes("00ff5ca1a71e57ed", &[0x00, 0xab, 0xff]);
        assert_eq!(blob.payload, "00abff");
        assert_eq!(blob.bytes().unwrap(), vec![0x00, 0xab, 0xff]);
        assert_eq!(PeerBlob::from_json(&blob.to_json()).unwrap(), blob);
        assert_eq!(
            blob.to_json().render(),
            r#"{"key":"00ff5ca1a71e57ed","payload":"00abff"}"#
        );

        assert!(valid_peer_key("00ff5ca1a71e57ed"));
        assert!(!valid_peer_key("00FF5CA1A71E57ED"), "uppercase rejected");
        assert!(!valid_peer_key("00ff5ca1a71e57e"), "length pinned");
        assert!(!valid_peer_key("zzff5ca1a71e57ed"));
        for body in [
            r#"{"key":"short","payload":""}"#,
            r#"{"key":"00ff5ca1a71e57ed","payload":"abc"}"#,
            r#"{"key":"00ff5ca1a71e57ed","payload":"zz"}"#,
            r#"{"key":"00ff5ca1a71e57ed","payload":"ab","x":1}"#,
            r#"{"payload":"ab"}"#,
            "[1]",
        ] {
            assert!(
                PeerBlob::from_json(&parse(body).unwrap()).is_err(),
                "{body} should be rejected"
            );
        }
    }
}
