//! Minimal JSON value model, serializer, and parser.
//!
//! The build environment is offline and the vendored `serde` derive is a
//! no-op, so the service speaks JSON through this hand-rolled layer. Two
//! properties matter more than features:
//!
//! - **Canonical output.** Objects keep insertion order, integers and
//!   floats print through Rust's shortest-round-trip `Display`, and
//!   non-finite floats become `null` — so the same value always renders
//!   to the same bytes, which the content-addressed result cache and the
//!   byte-identical integration tests rely on.
//! - **Re-serialization is the identity** on our own output: `parse`
//!   followed by [`Json::render`] reproduces the input bytes, letting
//!   clients extract a sub-object and still compare it byte-for-byte.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also the encoding of non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part.
    Int(i64),
    /// A fractional number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup (objects only).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer payload (floats with integral value included).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::Num(v) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }

    /// Numeric payload.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array payload.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize to the canonical compact form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
            }
            Json::Num(v) => write_f64(out, *v),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Canonical float form: `null` for non-finite, `0` for signed zeros
/// (so reparsing as an integer round-trips), shortest `Display`
/// otherwise. Integral values print without a fractional part and
/// reparse as [`Json::Int`] — still byte-stable.
fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == 0.0 {
        out.push('0');
    } else {
        let _ = fmt::Write::write_fmt(out, format_args!("{v}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        i64::try_from(v)
            .map(Json::Int)
            .unwrap_or(Json::Num(v as f64))
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        i64::try_from(v)
            .map(Json::Int)
            .unwrap_or(Json::Num(v as f64))
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(i64::from(v))
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// Deepest container nesting the parser accepts. The descent is
/// recursive, so without a bound a request body of ~50k `[`s (well
/// under the HTTP body cap) would overflow a connection thread's stack
/// — and a stack overflow aborts the whole process, not just the
/// request. No legitimate document comes close to this depth.
const MAX_DEPTH: u32 = 128;

/// Parse a JSON document (the whole input must be one value).
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn enter(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(format!("nesting deeper than {MAX_DEPTH}"))
        } else {
            Ok(())
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.enter()?;
        let result = self.array_inner();
        self.depth -= 1;
        result
    }

    fn array_inner(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.enter()?;
        let result = self.object_inner();
        self.depth -= 1;
        result
    }

    fn object_inner(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go (UTF-8 passes through).
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex_escape()?;
                            let c = match code {
                                // High surrogate: a standard encoder
                                // (e.g. json.dumps with ensure_ascii)
                                // ships non-BMP characters as a pair —
                                // decode it rather than mangle both
                                // halves to U+FFFD.
                                0xd800..=0xdbff => {
                                    if self.peek() != Some(b'\\') {
                                        return Err("lone high surrogate".to_string());
                                    }
                                    self.pos += 1;
                                    if self.peek() != Some(b'u') {
                                        return Err("lone high surrogate".to_string());
                                    }
                                    self.pos += 1;
                                    let low = self.hex_escape()?;
                                    if !(0xdc00..=0xdfff).contains(&low) {
                                        return Err("invalid surrogate pair".to_string());
                                    }
                                    let combined =
                                        0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| "invalid surrogate pair".to_string())?
                                }
                                0xdc00..=0xdfff => {
                                    return Err("lone low surrogate".to_string());
                                }
                                _ => char::from_u32(code)
                                    .ok_or_else(|| "bad \\u escape".to_string())?,
                            };
                            out.push(c);
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    /// Four hex digits of a `\u` escape (the `\u` itself already
    /// consumed).
    fn hex_escape(&mut self) -> Result<u32, String> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| "bad \\u escape".to_string())?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if fractional {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        } else {
            text.parse::<i64>()
                .map(Json::Int)
                .or_else(|_| text.parse::<f64>().map(Json::Num))
                .map_err(|e| format!("bad number `{text}`: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_canonical_compact_form() {
        let v = Json::obj(vec![
            ("a", Json::Int(1)),
            ("b", Json::from(vec![1i64, 2, 3])),
            ("c", Json::obj(vec![("nested", Json::from("x\n\"y\""))])),
            ("d", Json::Bool(false)),
            ("e", Json::Null),
        ]);
        assert_eq!(
            v.render(),
            r#"{"a":1,"b":[1,2,3],"c":{"nested":"x\n\"y\""},"d":false,"e":null}"#
        );
    }

    #[test]
    fn floats_are_stable_and_finite() {
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(2.0).render(), "2");
        assert_eq!(Json::Num(-0.0).render(), "0");
        assert_eq!(Json::Num(1e-6).render(), "0.000001");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn parse_then_render_is_identity_on_own_output() {
        let v = Json::obj(vec![
            ("pi", Json::Num(std::f64::consts::PI)),
            ("tiny", Json::Num(4.9e-12)),
            ("neg", Json::Int(-42)),
            ("zero", Json::Num(0.0)),
            ("text", Json::from("tab\there — unicode ✓")),
            ("arr", Json::Arr(vec![Json::Null, Json::Bool(true)])),
        ]);
        let text = v.render();
        let reparsed = parse(&text).unwrap();
        assert_eq!(reparsed.render(), text);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"k\" : [ 1 , 2.5 , \"a\\u0041b\" ] } ").unwrap();
        assert_eq!(v.get("k").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("k").unwrap().as_array().unwrap()[2].as_str(),
            Some("aAb")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "\"open", "{\"a\":}", "nul", "1 2", "{'a':1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_is_bounded_but_generous() {
        // A pathological body must be rejected, not overflow the stack.
        let bomb = "[".repeat(100_000);
        assert!(parse(&bomb).unwrap_err().contains("nesting"));
        // Legitimate nesting up to the limit parses fine (and siblings
        // at the same depth do not accumulate).
        let deep = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&deep).is_ok());
        let arm = format!("{}1{}", "[".repeat(64), "]".repeat(64));
        assert!(parse(&format!("[{arm},{arm}]")).is_ok());
    }

    #[test]
    fn surrogate_pairs_decode_and_lone_halves_are_rejected() {
        // json.dumps("\u{1f600}") with ensure_ascii=True emits this pair.
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1f600}"));
        // Literal (unescaped) non-BMP characters pass straight through.
        assert_eq!(parse("\"\u{1f600}\"").unwrap().as_str(), Some("\u{1f600}"));
        for bad in [
            r#""\ud83d""#,       // lone high surrogate at end of string
            r#""\ude00""#,       // lone low surrogate
            r#""\ud83dA""#,      // high surrogate followed by plain text
            r#""\ud83d\u0041""#, // high surrogate + non-surrogate escape
        ] {
            assert!(parse(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"n":3,"f":1.5,"s":"x","b":true,"a":[1]}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_i64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
    }
}
