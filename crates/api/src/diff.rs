//! Structured comparison of two completed analyses (`POST /v1/diff`).
//!
//! The paper's workflow detects scaling loss in *one* program; the diff
//! endpoint operationalizes its most common follow-up: did a code or
//! configuration change move the scaling behavior? Vertices are matched
//! across the two analyses by **source location** (`file:line`) — vertex
//! ids are graph-local and mean nothing across programs, while the
//! location is the coordinate the viewer reports and the one a developer
//! edits.
//!
//! The comparison is a pure function of the two result documents, which
//! are themselves canonical and deterministic, and every union is
//! emitted sorted — so diffing the same pair twice yields byte-identical
//! output (pinned by integration tests).

use crate::json::Json;

/// One side of a diff: a completed job's identity plus its parsed
/// `report` and `runs` documents.
#[derive(Debug, Clone)]
pub struct DiffSide {
    /// The job key the documents came from.
    pub job: String,
    /// The detection report (`report` member of the result document).
    pub report: Json,
    /// The per-scale run summaries (`runs` member).
    pub runs: Json,
}

/// `(nprocs, total_time)` pairs of one side.
fn run_times(runs: &Json) -> Vec<(usize, f64)> {
    runs.as_array()
        .unwrap_or(&[])
        .iter()
        .filter_map(|run| {
            Some((
                run.get("nprocs")?.as_i64()? as usize,
                run.get("total_time")?.as_f64()?,
            ))
        })
        .collect()
}

/// First entry per key from a report section, preserving nothing but
/// the keyed lookup (report order is deterministic, so "first" is too).
fn keyed<'a>(
    section: &'a Json,
    key_of: impl Fn(&'a Json) -> Option<String>,
) -> Vec<(String, &'a Json)> {
    let mut entries: Vec<(String, &'a Json)> = Vec::new();
    for entry in section.as_array().unwrap_or(&[]) {
        if let Some(key) = key_of(entry) {
            if !entries.iter().any(|(k, _)| *k == key) {
                entries.push((key, entry));
            }
        }
    }
    entries
}

/// Sorted union of the keys of two keyed sections.
fn key_union(a: &[(String, &Json)], b: &[(String, &Json)]) -> Vec<String> {
    let mut keys: Vec<String> = a.iter().map(|(k, _)| k.clone()).collect();
    for (k, _) in b {
        if !keys.contains(k) {
            keys.push(k.clone());
        }
    }
    keys.sort();
    keys
}

fn presence(in_a: bool, in_b: bool) -> &'static str {
    match (in_a, in_b) {
        (true, true) => "both",
        (true, false) => "only_a",
        _ => "only_b",
    }
}

fn field(entry: Option<&&Json>, name: &str) -> Json {
    entry
        .and_then(|e| e.get(name))
        .cloned()
        .unwrap_or(Json::Null)
}

fn delta(entry_a: Option<&&Json>, entry_b: Option<&&Json>, name: &str) -> Json {
    match (
        entry_a.and_then(|e| e.get(name)).and_then(Json::as_f64),
        entry_b.and_then(|e| e.get(name)).and_then(Json::as_f64),
    ) {
        (Some(a), Some(b)) => Json::Num(b - a),
        _ => Json::Null,
    }
}

/// Compare two completed analyses into one structured document.
///
/// Shape (all unions sorted, all fields present, `null` where a side
/// has no matching entry):
///
/// ```json
/// {"a":{"job":"..."},"b":{"job":"..."},
///  "runs":[{"nprocs":4,"total_time_a":1.0,"total_time_b":0.9,"ratio":0.9}],
///  "non_scalable":[{"location":"f:1","status":"both","slope_a":...,
///                   "slope_b":...,"slope_delta":...,
///                   "time_fraction_a":...,"time_fraction_b":...}],
///  "abnormal":[{"location":"f:2","status":"only_a","ratio_a":...,"ratio_b":null}],
///  "root_causes":[{"location":"f:3","kind":"Loop","status":"both",
///                  "score_a":...,"score_b":...,"score_delta":...,
///                  "mean_time_a":...,"mean_time_b":...}],
///  "summary":{...}}
/// ```
pub fn diff(a: &DiffSide, b: &DiffSide) -> Json {
    // Per-scale run comparison over the union of scales.
    let times_a = run_times(&a.runs);
    let times_b = run_times(&b.runs);
    let mut scales: Vec<usize> = times_a.iter().map(|(p, _)| *p).collect();
    for (p, _) in &times_b {
        if !scales.contains(p) {
            scales.push(*p);
        }
    }
    scales.sort_unstable();
    let time_at = |times: &[(usize, f64)], p: usize| -> Option<f64> {
        times.iter().find(|(q, _)| *q == p).map(|(_, t)| *t)
    };
    let runs: Vec<Json> = scales
        .iter()
        .map(|&p| {
            let ta = time_at(&times_a, p);
            let tb = time_at(&times_b, p);
            Json::obj(vec![
                ("nprocs", p.into()),
                ("total_time_a", ta.map_or(Json::Null, Json::Num)),
                ("total_time_b", tb.map_or(Json::Null, Json::Num)),
                (
                    "ratio",
                    match (ta, tb) {
                        (Some(ta), Some(tb)) if ta > 0.0 => Json::Num(tb / ta),
                        _ => Json::Null,
                    },
                ),
            ])
        })
        .collect();

    // Vertex-level sections, matched by source location.
    let by_location = |e: &Json| e.get("location").and_then(Json::as_str).map(str::to_string);
    let ns_a = keyed(
        a.report.get("non_scalable").unwrap_or(&Json::Null),
        by_location,
    );
    let ns_b = keyed(
        b.report.get("non_scalable").unwrap_or(&Json::Null),
        by_location,
    );
    let non_scalable: Vec<Json> = key_union(&ns_a, &ns_b)
        .into_iter()
        .map(|location| {
            let ea = ns_a.iter().find(|(k, _)| *k == location).map(|(_, e)| e);
            let eb = ns_b.iter().find(|(k, _)| *k == location).map(|(_, e)| e);
            Json::obj(vec![
                ("location", location.as_str().into()),
                ("status", presence(ea.is_some(), eb.is_some()).into()),
                ("slope_a", field(ea, "slope")),
                ("slope_b", field(eb, "slope")),
                ("slope_delta", delta(ea, eb, "slope")),
                ("time_fraction_a", field(ea, "time_fraction")),
                ("time_fraction_b", field(eb, "time_fraction")),
            ])
        })
        .collect();

    let ab_a = keyed(a.report.get("abnormal").unwrap_or(&Json::Null), by_location);
    let ab_b = keyed(b.report.get("abnormal").unwrap_or(&Json::Null), by_location);
    let abnormal: Vec<Json> = key_union(&ab_a, &ab_b)
        .into_iter()
        .map(|location| {
            let ea = ab_a.iter().find(|(k, _)| *k == location).map(|(_, e)| e);
            let eb = ab_b.iter().find(|(k, _)| *k == location).map(|(_, e)| e);
            Json::obj(vec![
                ("location", location.as_str().into()),
                ("status", presence(ea.is_some(), eb.is_some()).into()),
                ("ratio_a", field(ea, "ratio")),
                ("ratio_b", field(eb, "ratio")),
            ])
        })
        .collect();

    // Root causes match on (location, kind): the same line can host
    // both a Comp and an MPI vertex, and those are different findings.
    let by_location_kind = |e: &Json| {
        Some(format!(
            "{}\u{0}{}",
            e.get("location")?.as_str()?,
            e.get("kind")?.as_str()?
        ))
    };
    let rc_a = keyed(
        a.report.get("root_causes").unwrap_or(&Json::Null),
        by_location_kind,
    );
    let rc_b = keyed(
        b.report.get("root_causes").unwrap_or(&Json::Null),
        by_location_kind,
    );
    let mut causes_both = 0i64;
    let mut causes_only_a = 0i64;
    let mut causes_only_b = 0i64;
    let root_causes: Vec<Json> = key_union(&rc_a, &rc_b)
        .into_iter()
        .map(|key| {
            let ea = rc_a.iter().find(|(k, _)| *k == key).map(|(_, e)| e);
            let eb = rc_b.iter().find(|(k, _)| *k == key).map(|(_, e)| e);
            match (ea.is_some(), eb.is_some()) {
                (true, true) => causes_both += 1,
                (true, false) => causes_only_a += 1,
                _ => causes_only_b += 1,
            }
            let (location, kind) = key.split_once('\u{0}').unwrap_or((key.as_str(), ""));
            Json::obj(vec![
                ("location", location.into()),
                ("kind", kind.into()),
                ("status", presence(ea.is_some(), eb.is_some()).into()),
                ("score_a", field(ea, "score")),
                ("score_b", field(eb, "score")),
                ("score_delta", delta(ea, eb, "score")),
                ("mean_time_a", field(ea, "mean_time")),
                ("mean_time_b", field(eb, "mean_time")),
            ])
        })
        .collect();

    // Headline: who is faster at the largest scale both sides ran.
    let common: Vec<usize> = scales
        .iter()
        .copied()
        .filter(|&p| time_at(&times_a, p).is_some() && time_at(&times_b, p).is_some())
        .collect();
    let largest_common = common.last().copied();
    let (faster, time_ratio) = match largest_common {
        Some(p) => {
            let ta = time_at(&times_a, p).unwrap_or(0.0);
            let tb = time_at(&times_b, p).unwrap_or(0.0);
            let faster = if (ta - tb).abs() <= 1e-12 * ta.abs().max(tb.abs()) {
                "tie"
            } else if tb < ta {
                "b"
            } else {
                "a"
            };
            (
                Json::from(faster),
                if ta > 0.0 {
                    Json::Num(tb / ta)
                } else {
                    Json::Null
                },
            )
        }
        None => (Json::Null, Json::Null),
    };

    Json::obj(vec![
        ("a", Json::obj(vec![("job", a.job.as_str().into())])),
        ("b", Json::obj(vec![("job", b.job.as_str().into())])),
        ("runs", Json::Arr(runs)),
        ("non_scalable", Json::Arr(non_scalable)),
        ("abnormal", Json::Arr(abnormal)),
        ("root_causes", Json::Arr(root_causes)),
        (
            "summary",
            Json::obj(vec![
                (
                    "largest_common_scale",
                    largest_common.map_or(Json::Null, Json::from),
                ),
                ("time_ratio", time_ratio),
                ("faster", faster),
                ("root_causes_both", causes_both.into()),
                ("root_causes_only_a", causes_only_a.into()),
                ("root_causes_only_b", causes_only_b.into()),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn side(job: &str, report: &str, runs: &str) -> DiffSide {
        DiffSide {
            job: job.to_string(),
            report: parse(report).unwrap(),
            runs: parse(runs).unwrap(),
        }
    }

    const REPORT_A: &str = r#"{"non_scalable":[{"location":"f:1","slope":0.5,"time_fraction":0.4}],
        "abnormal":[{"location":"f:2","ratio":2.0}],
        "root_causes":[{"location":"f:1","kind":"Loop","score":0.9,"mean_time":1.0},
                       {"location":"f:9","kind":"Comp","score":0.2,"mean_time":0.1}]}"#;
    const REPORT_B: &str = r#"{"non_scalable":[{"location":"f:1","slope":0.1,"time_fraction":0.2}],
        "abnormal":[],
        "root_causes":[{"location":"f:1","kind":"Loop","score":0.3,"mean_time":0.5}]}"#;
    const RUNS_A: &str = r#"[{"nprocs":2,"total_time":1.0},{"nprocs":4,"total_time":0.8}]"#;
    const RUNS_B: &str = r#"[{"nprocs":2,"total_time":1.0},{"nprocs":4,"total_time":0.4},{"nprocs":8,"total_time":0.3}]"#;

    #[test]
    fn matches_by_location_and_sorts_unions() {
        let doc = diff(&side("ja", REPORT_A, RUNS_A), &side("jb", REPORT_B, RUNS_B));
        assert_eq!(
            doc.get("a").unwrap().get("job").unwrap().as_str(),
            Some("ja")
        );

        let runs = doc.get("runs").unwrap().as_array().unwrap();
        assert_eq!(runs.len(), 3, "union of scales");
        assert_eq!(runs[2].get("nprocs").unwrap().as_i64(), Some(8));
        assert_eq!(runs[2].get("total_time_a"), Some(&Json::Null));

        let causes = doc.get("root_causes").unwrap().as_array().unwrap();
        assert_eq!(causes.len(), 2);
        assert_eq!(causes[0].get("location").unwrap().as_str(), Some("f:1"));
        assert_eq!(causes[0].get("status").unwrap().as_str(), Some("both"));
        let delta = causes[0].get("score_delta").unwrap().as_f64().unwrap();
        assert!((delta - (0.3 - 0.9)).abs() < 1e-12);
        assert_eq!(causes[1].get("status").unwrap().as_str(), Some("only_a"));

        let abnormal = doc.get("abnormal").unwrap().as_array().unwrap();
        assert_eq!(abnormal[0].get("status").unwrap().as_str(), Some("only_a"));

        let summary = doc.get("summary").unwrap();
        assert_eq!(
            summary.get("largest_common_scale").unwrap().as_i64(),
            Some(4)
        );
        assert_eq!(summary.get("faster").unwrap().as_str(), Some("b"));
        assert_eq!(summary.get("root_causes_both").unwrap().as_i64(), Some(1));
        assert_eq!(summary.get("root_causes_only_a").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn diff_is_deterministic_and_canonical() {
        let a = side("ja", REPORT_A, RUNS_A);
        let b = side("jb", REPORT_B, RUNS_B);
        let first = diff(&a, &b).render();
        let second = diff(&a, &b).render();
        assert_eq!(first, second);
        assert_eq!(parse(&first).unwrap().render(), first);
    }

    #[test]
    fn empty_reports_diff_cleanly() {
        let empty = side(
            "j",
            r#"{"non_scalable":[],"abnormal":[],"root_causes":[]}"#,
            "[]",
        );
        let doc = diff(&empty, &empty);
        assert_eq!(doc.get("runs").unwrap().as_array().unwrap().len(), 0);
        assert_eq!(doc.get("summary").unwrap().get("faster"), Some(&Json::Null));
    }
}
