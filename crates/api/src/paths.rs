//! Path and version constants of the wire protocol — the single source
//! of truth consumed by the server's router, the client, and the CLI.
//!
//! All current endpoints live under the [`PREFIX`] (`/v1`). The
//! pre-versioning paths remain served as deprecated aliases (identical
//! bytes, plus a `Deprecation:` header) for the endpoints that predate
//! `/v1`; endpoints born under `/v1` answer their unversioned form with
//! a `308 Permanent Redirect` to the versioned path. See the README's
//! versioning policy.

/// The protocol version segment this crate describes.
pub const API_VERSION: &str = "v1";

/// The path prefix every current endpoint lives under.
pub const PREFIX: &str = "/v1";

/// `POST {jobs}` submits one job (object) or a batch (array);
/// `GET {jobs}?state=&limit=&after=` lists jobs (paginated).
pub const JOBS: &str = "/v1/jobs";

/// `GET {STATS}` — service counters.
pub const STATS: &str = "/v1/stats";

/// `GET {HEALTHZ}` — liveness probe.
pub const HEALTHZ: &str = "/v1/healthz";

/// `POST {SHUTDOWN}` — graceful stop.
pub const SHUTDOWN: &str = "/v1/shutdown";

/// `POST {DIFF}` — run/reuse two analyses and compare them.
pub const DIFF: &str = "/v1/diff";

/// `GET {METRICS}` — Prometheus-style text exposition of the daemon's
/// self-tracing metrics (stage latency histograms, cache tier
/// counters, queue/connection gauges), deterministically ordered.
pub const METRICS: &str = "/v1/metrics";

/// `GET {STORE}` — the durable store's directory view (entry/byte
/// totals, quota, degradation state, a bounded file listing). `404`
/// on a memory-only daemon.
pub const STORE: &str = "/v1/store";

/// `POST {STORE_GC}` — run one LRU quota sweep now. `503` +
/// `Retry-After` while the store is degraded to memory-only mode.
pub const STORE_GC: &str = "/v1/store/gc";

/// `GET {PEER_RING}` — the federation ring as this daemon sees it
/// ([`crate::dto::RingView`]): its own identity plus the sorted member
/// list. Served by every daemon, federated or not (a standalone daemon
/// answers with a single-member ring of itself).
pub const PEER_RING: &str = "/v1/peer/ring";

/// `POST {PEER_ANNOUNCE}` — a peer introduces itself
/// ([`crate::dto::PeerAnnounce`]); the receiver merges the address into
/// its member set and answers with its updated [`crate::dto::RingView`].
pub const PEER_ANNOUNCE: &str = "/v1/peer/announce";

/// `GET` — fetch one per-scale profile image by its content-addressed
/// cache key (hex payload in a [`crate::dto::PeerBlob`]); `POST` the
/// same shape writes an entry through to the owner.
pub fn peer_profile(key: &str) -> String {
    format!("/v1/peer/profile/{key}")
}

/// `GET` — fetch one refined-PSG trace by its content-addressed cache
/// key (hex payload in a [`crate::dto::PeerBlob`]); `POST` writes one
/// through to the owner.
pub fn peer_psg(key: &str) -> String {
    format!("/v1/peer/psg/{key}")
}

/// `GET` — status of one job.
pub fn job(key: &str) -> String {
    format!("/v1/jobs/{key}")
}

/// `GET` — completed result document of one job.
pub fn job_result(key: &str) -> String {
    format!("/v1/jobs/{key}/result")
}

/// `GET` — persisted profile image of one job at one scale.
pub fn job_profile(key: &str, nprocs: usize) -> String {
    format!("/v1/jobs/{key}/profile/{nprocs}")
}

/// `GET` — per-job span timeline ([`crate::trace::TraceResponse`]):
/// where the submission spent its wall time, stage by stage, with
/// per-scale spans tagged by which cache tier answered them.
pub fn job_trace(key: &str) -> String {
    format!("/v1/jobs/{key}/trace")
}

/// `GET` — long-poll until the job reaches a terminal state or
/// `timeout_ms` elapses server-side (the server caps the budget at
/// [`crate::dto::MAX_WAIT_MS`]); either way the response is the job's
/// current status document.
pub fn job_wait(key: &str, timeout_ms: u64) -> String {
    format!("/v1/jobs/{key}/wait?timeout_ms={timeout_ms}")
}

/// `GET` — paginated job listing.
pub fn jobs_list(state: Option<&str>, limit: Option<usize>, after: Option<&str>) -> String {
    let mut path = String::from(JOBS);
    let mut sep = '?';
    let mut push = |k: &str, v: &str, path: &mut String| {
        path.push(sep);
        path.push_str(k);
        path.push('=');
        path.push_str(v);
        sep = '&';
    };
    if let Some(state) = state {
        push("state", state, &mut path);
    }
    if let Some(limit) = limit {
        push("limit", &limit.to_string(), &mut path);
    }
    if let Some(after) = after {
        push("after", after, &mut path);
    }
    path
}

/// Split a request target into `(path, query)` at the first `?`.
pub fn split_target(target: &str) -> (&str, &str) {
    match target.split_once('?') {
        Some((path, query)) => (path, query),
        None => (target, ""),
    }
}

/// Decode a query string into `(key, value)` pairs, in order. The
/// protocol's values (hex keys, integers, state names) never need
/// percent-encoding, so none is applied; `+` and `%` pass through
/// verbatim.
pub fn parse_query(query: &str) -> Vec<(&str, &str)> {
    query
        .split('&')
        .filter(|part| !part.is_empty())
        .map(|part| part.split_once('=').unwrap_or((part, "")))
        .collect()
}

/// Whether a path's first segment looks like a version selector
/// (`v<digits>`): used to distinguish "unknown version" (a `/v2/...`
/// request deserves [`crate::ErrorCode::UnsupportedVersion`]) from a
/// plain legacy path.
pub fn looks_like_version(segment: &str) -> bool {
    segment.len() >= 2
        && segment.starts_with('v')
        && segment[1..].bytes().all(|b| b.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_agree_with_constants() {
        assert_eq!(job("abc"), "/v1/jobs/abc");
        assert_eq!(job_result("abc"), "/v1/jobs/abc/result");
        assert_eq!(job_profile("abc", 8), "/v1/jobs/abc/profile/8");
        assert_eq!(job_wait("abc", 500), "/v1/jobs/abc/wait?timeout_ms=500");
        assert_eq!(job_trace("abc"), "/v1/jobs/abc/trace");
        assert_eq!(jobs_list(None, None, None), JOBS);
        assert_eq!(
            jobs_list(Some("done"), Some(10), Some("ff")),
            "/v1/jobs?state=done&limit=10&after=ff"
        );
        assert!(JOBS.starts_with(PREFIX));
        assert!(STATS.starts_with(PREFIX));
        assert!(METRICS.starts_with(PREFIX));
        assert!(STORE.starts_with(PREFIX));
        assert!(STORE_GC.starts_with(STORE));
        assert_eq!(peer_profile("ff00"), "/v1/peer/profile/ff00");
        assert_eq!(peer_psg("ff00"), "/v1/peer/psg/ff00");
        assert!(PEER_RING.starts_with(PREFIX));
        assert!(PEER_ANNOUNCE.starts_with(PREFIX));
        assert!(peer_profile("k").starts_with("/v1/peer/"));
        assert!(peer_psg("k").starts_with("/v1/peer/"));
    }

    #[test]
    fn targets_split_and_queries_parse() {
        assert_eq!(
            split_target("/v1/jobs?state=done"),
            ("/v1/jobs", "state=done")
        );
        assert_eq!(split_target("/v1/stats"), ("/v1/stats", ""));
        assert_eq!(
            parse_query("state=done&limit=5&flag"),
            vec![("state", "done"), ("limit", "5"), ("flag", "")]
        );
        assert_eq!(parse_query(""), Vec::<(&str, &str)>::new());
    }

    #[test]
    fn version_segments_are_recognized() {
        assert!(looks_like_version("v1"));
        assert!(looks_like_version("v22"));
        assert!(!looks_like_version("v"));
        assert!(!looks_like_version("vx"));
        assert!(!looks_like_version("jobs"));
    }
}
