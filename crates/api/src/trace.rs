//! The per-job span timeline served by `GET /v1/jobs/<id>/trace`.
//!
//! A trace is the daemon's answer to "where did my submission spend
//! its wall time?": a tree of named spans with monotonic offsets from
//! the submission instant, tagged with what each stage learned (which
//! cache tier answered a scale, how many processes a simulation ran).
//! Two identical submissions produce structurally identical traces —
//! the same span tree in the same order — with only the cache tags
//! flipping from `miss` to `hit` as the tiers warm up, which is what
//! makes traces diffable and testable.
//!
//! Field order in the canonical JSON is part of the wire contract,
//! like every other DTO in this crate.

use crate::json::Json;

/// One node of the span tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSpan {
    /// Stage name (`submit`, `queue_wait`, `run`, `scale`, ...).
    pub name: String,
    /// Nanoseconds from the trace start to the span opening.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub duration_ns: u64,
    /// Ordered `(key, value)` annotations (`cache`: `hit`/`miss`,
    /// `nprocs`, ...).
    pub tags: Vec<(String, String)>,
    /// Child spans, in deterministic order (sorted by name, then by
    /// the numeric `nprocs` tag where present).
    pub children: Vec<TraceSpan>,
}

impl TraceSpan {
    /// A leaf span with no tags.
    pub fn new(name: &str, start_ns: u64, duration_ns: u64) -> TraceSpan {
        TraceSpan {
            name: name.to_string(),
            start_ns,
            duration_ns,
            ..TraceSpan::default()
        }
    }

    /// Append a tag (builder style).
    pub fn with_tag(mut self, key: &str, value: &str) -> TraceSpan {
        self.tags.push((key.to_string(), value.to_string()));
        self
    }

    /// Look up a tag value.
    pub fn tag(&self, key: &str) -> Option<&str> {
        self.tags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Sort `children` (recursively) into the canonical deterministic
    /// order: by name, then numeric `nprocs` tag, then start offset.
    /// Scales simulate concurrently on whichever workers are free, so
    /// arrival order is nondeterministic; the canonical order is what
    /// makes two traces of identical submissions comparable.
    pub fn sort_children(&mut self) {
        for child in &mut self.children {
            child.sort_children();
        }
        self.children.sort_by(|a, b| {
            let nprocs = |s: &TraceSpan| {
                s.tag("nprocs")
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(0)
            };
            (a.name.as_str(), nprocs(a), a.start_ns).cmp(&(b.name.as_str(), nprocs(b), b.start_ns))
        });
    }

    /// Canonical JSON (field order is the contract).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.as_str().into()),
            ("start_ns", self.start_ns.into()),
            ("duration_ns", self.duration_ns.into()),
            (
                "tags",
                Json::Obj(
                    self.tags
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::from(v.as_str())))
                        .collect(),
                ),
            ),
            (
                "children",
                Json::Arr(self.children.iter().map(TraceSpan::to_json).collect()),
            ),
        ])
    }

    /// Decode one span node.
    pub fn from_json(doc: &Json) -> Option<TraceSpan> {
        let tags = match doc.get("tags")? {
            Json::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Some((k.clone(), v.as_str()?.to_string())))
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        let children = match doc.get("children")? {
            Json::Arr(items) => items
                .iter()
                .map(TraceSpan::from_json)
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        Some(TraceSpan {
            name: doc.get("name")?.as_str()?.to_string(),
            start_ns: doc.get("start_ns")?.as_i64()? as u64,
            duration_ns: doc.get("duration_ns")?.as_i64()? as u64,
            tags,
            children,
        })
    }

    /// The span's structural skeleton — names, tree shape, and tags —
    /// with every timing erased. Two traces of identical submissions
    /// have equal skeletons up to the predicted cache-tag flips.
    pub fn skeleton(&self) -> TraceSpan {
        TraceSpan {
            name: self.name.clone(),
            start_ns: 0,
            duration_ns: 0,
            tags: self.tags.clone(),
            children: self.children.iter().map(TraceSpan::skeleton).collect(),
        }
    }
}

/// `GET /v1/jobs/<id>/trace` response: the job's top-level spans,
/// which tile the interval from the submission's arrival to the job's
/// terminal transition (their durations sum to `total_ns`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceResponse {
    /// Job key.
    pub job: String,
    /// Nanoseconds from submission arrival to the terminal transition.
    pub total_ns: u64,
    /// Top-level spans (`submit`, `queue_wait`, `run`), contiguous.
    pub spans: Vec<TraceSpan>,
}

impl TraceResponse {
    /// Canonical response body (field order is the contract).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("job", self.job.as_str().into()),
            ("total_ns", self.total_ns.into()),
            (
                "spans",
                Json::Arr(self.spans.iter().map(TraceSpan::to_json).collect()),
            ),
        ])
    }

    /// Decode a trace document.
    pub fn from_json(doc: &Json) -> Option<TraceResponse> {
        let spans = match doc.get("spans")? {
            Json::Arr(items) => items
                .iter()
                .map(TraceSpan::from_json)
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        Some(TraceResponse {
            job: doc.get("job")?.as_str()?.to_string(),
            total_ns: doc.get("total_ns")?.as_i64()? as u64,
            spans,
        })
    }

    /// Sum of the top-level span durations; equals `total_ns` when the
    /// spans tile the whole interval (which the daemon guarantees).
    pub fn accounted_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.duration_ns).sum()
    }

    /// Every span in the tree, depth-first, for flat scans (e.g. "all
    /// spans named `scale`").
    pub fn flatten(&self) -> Vec<&TraceSpan> {
        fn walk<'a>(span: &'a TraceSpan, out: &mut Vec<&'a TraceSpan>) {
            out.push(span);
            for child in &span.children {
                walk(child, out);
            }
        }
        let mut out = Vec::new();
        for span in &self.spans {
            walk(span, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample() -> TraceResponse {
        let scale2 = TraceSpan::new("scale", 10, 40)
            .with_tag("nprocs", "2")
            .with_tag("cache", "miss");
        let scale4 = TraceSpan::new("scale", 12, 55)
            .with_tag("nprocs", "4")
            .with_tag("cache", "hit");
        let mut run = TraceSpan::new("run", 8, 90);
        run.children = vec![scale4, scale2];
        run.sort_children();
        TraceResponse {
            job: "abcd1234abcd1234".to_string(),
            total_ns: 100,
            spans: vec![
                TraceSpan::new("submit", 0, 3),
                TraceSpan::new("queue_wait", 3, 5),
                run,
            ],
        }
    }

    #[test]
    fn trace_round_trips_through_canonical_json() {
        let trace = sample();
        let rendered = trace.to_json().render();
        let reparsed = TraceResponse::from_json(&parse(&rendered).unwrap()).unwrap();
        assert_eq!(reparsed, trace);
        // Canonical: render ∘ parse ∘ render is the identity.
        assert_eq!(reparsed.to_json().render(), rendered);
    }

    #[test]
    fn children_sort_by_name_then_nprocs() {
        let trace = sample();
        let run = &trace.spans[2];
        assert_eq!(run.children[0].tag("nprocs"), Some("2"));
        assert_eq!(run.children[1].tag("nprocs"), Some("4"));
    }

    #[test]
    fn rendered_field_order_is_pinned() {
        let doc = TraceSpan::new("submit", 0, 3)
            .with_tag("cache", "hit")
            .to_json()
            .render();
        assert_eq!(
            doc,
            r#"{"name":"submit","start_ns":0,"duration_ns":3,"tags":{"cache":"hit"},"children":[]}"#
        );
    }

    #[test]
    fn accounting_and_flattening() {
        let trace = sample();
        assert_eq!(trace.accounted_ns(), 98);
        let scales: Vec<_> = trace
            .flatten()
            .into_iter()
            .filter(|s| s.name == "scale")
            .collect();
        assert_eq!(scales.len(), 2);
        assert_eq!(scales[0].tag("cache"), Some("miss"));
    }

    #[test]
    fn skeleton_erases_timings_only() {
        let trace = sample();
        let a = trace.spans[2].skeleton();
        let mut faster = trace.spans[2].clone();
        faster.duration_ns = 1;
        faster.children[0].start_ns = 99;
        assert_eq!(a, faster.skeleton());
    }
}
