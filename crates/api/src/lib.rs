//! # scalana-api — the versioned wire contract of the analysis service
//!
//! Before this crate existed, the daemon's API lived as string literals
//! duplicated across the server, the client, and the CLI. This crate is
//! the single source of truth all three consume:
//!
//! - [`json`] — the canonical JSON value model, serializer, and parser
//!   (byte-stable output; `parse ∘ render` is the identity on its own
//!   output);
//! - [`paths`] — the `/v1` version prefix, every endpoint path/builder,
//!   and query-string helpers;
//! - [`dto`] — typed request/response bodies ([`SubmitRequest`],
//!   [`SubmitAck`], [`JobView`], [`JobPage`], [`DiffRequest`],
//!   [`StatsResponse`], ...) with explicit, canonical JSON conversions;
//! - [`error`] — the structured error contract: every non-2xx response
//!   is an [`ApiError`] `{code, message, retryable}` whose [`ErrorCode`]
//!   pins the HTTP status;
//! - [`diff`] — the analysis-comparison document served by
//!   `POST /v1/diff`.
//!
//! ## Versioning
//!
//! Everything current lives under [`paths::PREFIX`] (`/v1`). Within a
//! version the contract only grows: new endpoints, new optional request
//! fields, new response fields, new error codes — never changed meanings
//! or removed fields. Endpoints that predate versioning stay served at
//! their unversioned paths as deprecated aliases (byte-identical bodies
//! plus a `Deprecation:` header); endpoints born under `/v1` answer
//! their unversioned spelling with `308 Permanent Redirect`.

pub mod diff;
pub mod dto;
pub mod error;
pub mod json;
pub mod paths;
pub mod trace;

pub use dto::{
    DiffRequest, JobPage, JobState, JobView, ListQuery, PeerAnnounce, PeerBlob, ProgramRef,
    ResultView, RingView, StatsResponse, StoreQuery, SubmitAck, SubmitRequest, WaitQuery,
    DEFAULT_SCALES, MAX_SCALE,
};
pub use error::{ApiError, ErrorCode};
pub use json::Json;
pub use trace::{TraceResponse, TraceSpan};
