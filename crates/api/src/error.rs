//! The structured error contract of the `/v1` API.
//!
//! Every non-2xx response carries one [`ApiError`] body. Clients branch
//! on the machine-readable [`ErrorCode`] (the human message is free to
//! change between releases; codes are append-only) and on `retryable`,
//! which says whether the identical request may succeed later without
//! modification — backpressure and timeouts are retryable, contract
//! violations are not.
//!
//! On the wire the message field is named `error` — the key every
//! pre-`/v1` client already reads — so the structured body is a strict
//! superset of the legacy `{"error": "..."}` shape:
//!
//! ```json
//! {"code":"queue_full","error":"job queue is full, retry later","retryable":true}
//! ```

use crate::json::{parse, Json};
use serde::{Deserialize, Serialize};

/// Machine-readable error discriminant. Append-only across `/v1`'s
/// lifetime: a code, once shipped, never changes meaning or HTTP status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The request body is not valid JSON.
    BadJson,
    /// A request field is missing, has the wrong type, or is out of
    /// range (the message names the field).
    BadRequest,
    /// The request carries a field the endpoint does not know —
    /// rejected rather than ignored, so typos fail loudly.
    UnknownField,
    /// The declared request body exceeds the per-request byte budget.
    BodyTooLarge,
    /// The request could not be framed as HTTP at all.
    MalformedRequest,
    /// The path carries a version prefix this server does not serve
    /// (only [`crate::paths::API_VERSION`] is).
    UnsupportedVersion,
    /// No such endpoint.
    NotFound,
    /// No job under that key (never submitted, or evicted).
    UnknownJob,
    /// `app` names no built-in workload.
    UnknownApp,
    /// `program_hash` matches no indexed program (never seen or
    /// evicted) — re-send the source.
    UnknownProgramHash,
    /// Known path, wrong HTTP method (the `Allow:` header lists the
    /// supported ones).
    MethodNotAllowed,
    /// The job exists but has not reached a terminal state yet.
    JobPending,
    /// The job reached `failed`; the message carries the cause.
    JobFailed,
    /// The submission queue is at capacity.
    QueueFull,
    /// The connection limit is reached.
    TooManyConnections,
    /// A server-side wait outlived its budget before the job finished.
    Timeout,
    /// A completed record was evicted by a capacity bound before it
    /// could be read (e.g. a diff side at result-cache capacity) —
    /// transient; retry.
    Evicted,
    /// The durable store has degraded to memory-only mode (its write
    /// circuit breaker is open); the operation needs a writable store.
    /// Transient — the breaker retries half-open with backoff.
    StoreDegraded,
    /// The server violated its own invariants (a bug, not bad input).
    Internal,
}

impl ErrorCode {
    /// The wire name (`snake_case`).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadJson => "bad_json",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownField => "unknown_field",
            ErrorCode::BodyTooLarge => "body_too_large",
            ErrorCode::MalformedRequest => "malformed_request",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::NotFound => "not_found",
            ErrorCode::UnknownJob => "unknown_job",
            ErrorCode::UnknownApp => "unknown_app",
            ErrorCode::UnknownProgramHash => "unknown_program_hash",
            ErrorCode::MethodNotAllowed => "method_not_allowed",
            ErrorCode::JobPending => "job_pending",
            ErrorCode::JobFailed => "job_failed",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::TooManyConnections => "too_many_connections",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Evicted => "evicted",
            ErrorCode::StoreDegraded => "store_degraded",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parse a wire name back into the code.
    pub fn parse(name: &str) -> Option<ErrorCode> {
        Some(match name {
            "bad_json" => ErrorCode::BadJson,
            "bad_request" => ErrorCode::BadRequest,
            "unknown_field" => ErrorCode::UnknownField,
            "body_too_large" => ErrorCode::BodyTooLarge,
            "malformed_request" => ErrorCode::MalformedRequest,
            "unsupported_version" => ErrorCode::UnsupportedVersion,
            "not_found" => ErrorCode::NotFound,
            "unknown_job" => ErrorCode::UnknownJob,
            "unknown_app" => ErrorCode::UnknownApp,
            "unknown_program_hash" => ErrorCode::UnknownProgramHash,
            "method_not_allowed" => ErrorCode::MethodNotAllowed,
            "job_pending" => ErrorCode::JobPending,
            "job_failed" => ErrorCode::JobFailed,
            "queue_full" => ErrorCode::QueueFull,
            "too_many_connections" => ErrorCode::TooManyConnections,
            "timeout" => ErrorCode::Timeout,
            "evicted" => ErrorCode::Evicted,
            "store_degraded" => ErrorCode::StoreDegraded,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }

    /// The HTTP status this code is always served with.
    pub fn http_status(self) -> u16 {
        match self {
            ErrorCode::BadJson
            | ErrorCode::BadRequest
            | ErrorCode::UnknownField
            | ErrorCode::BodyTooLarge
            | ErrorCode::MalformedRequest
            | ErrorCode::UnsupportedVersion
            | ErrorCode::UnknownApp => 400,
            ErrorCode::NotFound | ErrorCode::UnknownJob | ErrorCode::UnknownProgramHash => 404,
            ErrorCode::MethodNotAllowed => 405,
            ErrorCode::JobPending => 409,
            ErrorCode::JobFailed | ErrorCode::Internal => 500,
            ErrorCode::QueueFull
            | ErrorCode::TooManyConnections
            | ErrorCode::Evicted
            | ErrorCode::StoreDegraded => 503,
            ErrorCode::Timeout => 504,
        }
    }

    /// Whether the identical request may succeed later without change.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            ErrorCode::JobPending
                | ErrorCode::QueueFull
                | ErrorCode::TooManyConnections
                | ErrorCode::Timeout
                | ErrorCode::Evicted
                | ErrorCode::StoreDegraded
        )
    }
}

/// One structured API error: `{code, message, retryable}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApiError {
    /// Machine-readable discriminant.
    pub code: ErrorCode,
    /// Human-readable cause (wire key `error`, for legacy clients).
    pub message: String,
    /// Whether retrying the identical request can succeed.
    pub retryable: bool,
}

impl ApiError {
    /// Build an error; `retryable` follows the code's default.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ApiError {
        ApiError {
            code,
            message: message.into(),
            retryable: code.retryable(),
        }
    }

    /// Shorthand for the most common code.
    pub fn bad_request(message: impl Into<String>) -> ApiError {
        ApiError::new(ErrorCode::BadRequest, message)
    }

    /// The HTTP status this error is served with.
    pub fn http_status(&self) -> u16 {
        self.code.http_status()
    }

    /// Canonical wire body.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("code", self.code.as_str().into()),
            ("error", self.message.as_str().into()),
            ("retryable", self.retryable.into()),
        ])
    }

    /// Decode a wire error body. Bodies from pre-`/v1` servers carry
    /// only `error` — no `code` — and decode to `None`, so callers can
    /// tell a structured body from a legacy one.
    pub fn from_json(doc: &Json) -> Option<ApiError> {
        let code = ErrorCode::parse(doc.get("code")?.as_str()?)?;
        let message = doc
            .get("error")
            .or_else(|| doc.get("message"))
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        Some(ApiError {
            code,
            message,
            retryable: doc
                .get("retryable")
                .and_then(Json::as_bool)
                .unwrap_or_else(|| code.retryable()),
        })
    }

    /// Decode from a raw body string (`None` when the body is not a
    /// structured `/v1` error — e.g. a legacy `{"error": ...}` one).
    pub fn from_body(body: &str) -> Option<ApiError> {
        ApiError::from_json(&parse(body).ok()?)
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_round_trip_and_pin_statuses() {
        for code in [
            ErrorCode::BadJson,
            ErrorCode::BadRequest,
            ErrorCode::UnknownField,
            ErrorCode::BodyTooLarge,
            ErrorCode::MalformedRequest,
            ErrorCode::UnsupportedVersion,
            ErrorCode::NotFound,
            ErrorCode::UnknownJob,
            ErrorCode::UnknownApp,
            ErrorCode::UnknownProgramHash,
            ErrorCode::MethodNotAllowed,
            ErrorCode::JobPending,
            ErrorCode::JobFailed,
            ErrorCode::QueueFull,
            ErrorCode::TooManyConnections,
            ErrorCode::Timeout,
            ErrorCode::Evicted,
            ErrorCode::StoreDegraded,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::parse(code.as_str()), Some(code));
            assert!((400..600).contains(&code.http_status()));
        }
        assert_eq!(ErrorCode::parse("nope"), None);
    }

    #[test]
    fn wire_body_keeps_the_legacy_error_key() {
        let err = ApiError::new(ErrorCode::QueueFull, "job queue is full, retry later");
        assert!(err.retryable, "queue_full defaults to retryable");
        assert_eq!(
            err.to_json().render(),
            r#"{"code":"queue_full","error":"job queue is full, retry later","retryable":true}"#
        );
        let back = ApiError::from_body(&err.to_json().render()).unwrap();
        assert_eq!(back, err);
        // A legacy body has no code: decodes as None, not a guess.
        assert!(ApiError::from_body(r#"{"error":"no such endpoint"}"#).is_none());
    }
}
