//! The README's `/v1` API reference must stay in sync with this crate:
//! every endpoint the contract publishes, every DTO named in it, and
//! every error code a handler can answer with has to appear in the
//! repository README — the human-facing mirror of these doc comments.

use scalana_api::{paths, ErrorCode};

const README: &str = include_str!("../../../README.md");

#[test]
fn readme_documents_every_endpoint() {
    for path in [
        paths::JOBS,
        paths::STATS,
        paths::METRICS,
        paths::HEALTHZ,
        paths::SHUTDOWN,
        paths::DIFF,
        paths::STORE,
        paths::STORE_GC,
    ] {
        assert!(README.contains(path), "README is missing endpoint `{path}`");
    }
    // Parameterized endpoints appear with their `<id>` placeholders.
    for pattern in [
        "/v1/jobs/<id>",
        "/v1/jobs/<id>/wait",
        "/v1/jobs/<id>/result",
        "/v1/jobs/<id>/profile/<p>",
        "/v1/jobs/<id>/trace",
        "/v1/peer/profile/<key>",
        "/v1/peer/psg/<key>",
    ] {
        assert!(README.contains(pattern), "README is missing `{pattern}`");
    }
}

#[test]
fn readme_documents_federation() {
    assert!(
        README.contains("### Federation"),
        "README is missing the `Federation` section"
    );
    for path in [paths::PEER_RING, paths::PEER_ANNOUNCE] {
        assert!(README.contains(path), "README is missing endpoint `{path}`");
    }
    for dto in ["RingView", "PeerAnnounce", "PeerBlob", "StoreQuery"] {
        assert!(README.contains(dto), "README is missing DTO `{dto}`");
    }
    // The federation metric families; the golden exposition test
    // (`crates/service/tests/obs.rs`) pins the same names on the wire.
    for family in [
        "scalana_peer_requests_total",
        "scalana_peer_hits_total",
        "scalana_peer_fetch_ns",
        "scalana_peer_backlog",
        "scalana_peer_breaker_open",
        "scalana_peer_ring_size",
    ] {
        assert!(
            README.contains(family),
            "README is missing metric family `{family}`"
        );
    }
    for concept in [
        "--peer",
        "--self-addr",
        "rendezvous",
        "circuit breaker",
        "next_after",
    ] {
        assert!(
            README.contains(concept),
            "README's federation section must cover `{concept}`"
        );
    }
}

#[test]
fn readme_documents_the_dtos_and_error_codes() {
    for dto in [
        "SubmitRequest",
        "SubmitAck",
        "JobView",
        "JobPage",
        "ListQuery",
        "WaitQuery",
        "DiffRequest",
        "ResultView",
        "StatsResponse",
        "TraceResponse",
        "TraceSpan",
    ] {
        assert!(README.contains(dto), "README is missing DTO `{dto}`");
    }
    // Every code that request handling can produce. (Codes only the
    // transport layer emits — malformed framing, connection shedding —
    // are documented in the crate, not the endpoint table.)
    for code in [
        ErrorCode::BadJson,
        ErrorCode::BadRequest,
        ErrorCode::UnknownField,
        ErrorCode::UnsupportedVersion,
        ErrorCode::NotFound,
        ErrorCode::UnknownJob,
        ErrorCode::UnknownApp,
        ErrorCode::UnknownProgramHash,
        ErrorCode::JobPending,
        ErrorCode::JobFailed,
        ErrorCode::QueueFull,
        ErrorCode::Timeout,
        ErrorCode::Evicted,
        ErrorCode::StoreDegraded,
    ] {
        assert!(
            README.contains(code.as_str()),
            "README is missing error code `{}`",
            code.as_str()
        );
    }
    assert!(
        README.contains("Deprecation"),
        "README must state the deprecation policy"
    );
    assert!(
        README.contains("308"),
        "README must mention the unversioned-path redirects"
    );
}

#[test]
fn readme_documents_the_concurrency_model() {
    assert!(
        README.contains("### Concurrency model"),
        "README is missing the `Concurrency model` section"
    );
    // The serving-layer metric families the event loop publishes; the
    // golden exposition test (`crates/service/tests/obs.rs`) pins the
    // same names on the wire.
    for family in [
        "scalana_accept_errors_total",
        "scalana_epoll_registered_fds",
        "scalana_longpoll_parked",
        "scalana_readiness_round_ns",
    ] {
        assert!(
            README.contains(family),
            "README is missing metric family `{family}`"
        );
    }
    for concept in ["max_connections", "Retry-After", "eventfd", "epoll"] {
        assert!(
            README.contains(concept),
            "README's concurrency model must cover `{concept}`"
        );
    }
}

#[test]
fn readme_documents_durability() {
    assert!(
        README.contains("### Durability & fault tolerance"),
        "README is missing the `Durability & fault tolerance` section"
    );
    // The store's metric families; the golden exposition test
    // (`crates/service/tests/obs.rs`) pins the same names on the wire.
    for family in [
        "scalana_store_writes_total",
        "scalana_store_write_errors_total",
        "scalana_store_skipped_total",
        "scalana_store_quarantined_total",
        "scalana_store_loaded_total",
        "scalana_store_evicted_total",
        "scalana_store_entries",
        "scalana_store_bytes",
        "scalana_store_degraded",
    ] {
        assert!(
            README.contains(family),
            "README is missing metric family `{family}`"
        );
    }
    for concept in [
        "--store-dir",
        "--store-quota",
        "quarantine",
        "circuit",
        "warm-start",
    ] {
        assert!(
            README.contains(concept),
            "README's durability section must cover `{concept}`"
        );
    }
}
