//! Vendored stand-in for `serde`.
//!
//! The build environment is offline; this crate provides the names the
//! workspace imports (`Serialize`/`Deserialize` derive macros and traits).
//! The derives are no-ops — see `vendor/serde_derive`. If a future change
//! starts bounding generics on these traits, replace this stub with the
//! real crate (or implement the traits for the types involved).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`'s name for imports and bounds.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`'s name for imports and bounds.
pub trait Deserialize<'de> {}
