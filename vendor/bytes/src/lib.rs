//! Vendored stand-in for the `bytes` crate (offline build environment).
//!
//! Implements the subset the profile codec and store use: `BytesMut` as a
//! growable write buffer, `Bytes` as a cheaply cloneable read view with a
//! cursor, and the `Buf`/`BufMut` traits carrying the little-endian
//! accessors. No zero-copy tricks — `Bytes` is an `Arc<[u8]>` plus a range.

use std::ops::{Deref, DerefMut, Range};
use std::sync::Arc;

/// Immutable byte buffer; clones share the underlying allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length of the *remaining* (unread) view, matching `bytes`' contract
    /// that `len()` tracks `remaining()` as the cursor advances.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sub-view of the remaining bytes (relative to the current cursor).
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"{} bytes\"", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

/// Growable byte buffer for writing.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { vec: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            vec: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.vec.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    pub fn clear(&mut self) {
        self.vec.clear();
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> BytesMut {
        BytesMut { vec: src.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.vec
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"{} bytes (mut)\"", self.len())
    }
}

/// Read side: little-endian accessors over a consuming cursor.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        assert!(self.remaining() >= len, "buffer underflow");
        let mut v = vec![0u8; len];
        self.copy_to_slice(&mut v);
        Bytes::from(v)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Write side: little-endian appenders.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.vec.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u16_le(513);
        w.put_u32_le(70_000);
        w.put_i32_le(-5);
        w.put_u64_le(1 << 40);
        w.put_f64_le(3.25);
        w.put_slice(b"abc");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 513);
        assert_eq!(r.get_u32_le(), 70_000);
        assert_eq!(r.get_i32_le(), -5);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f64_le(), 3.25);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"abc");
        assert!(!r.has_remaining());
    }

    #[test]
    fn slice_is_relative_to_cursor() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        b.advance(2);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[3, 4, 5]);
    }
}
