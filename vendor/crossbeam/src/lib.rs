//! Vendored stand-in for the `crossbeam` scoped-thread API, implemented on
//! top of `std::thread::scope` (the build environment is offline).
//!
//! Covers the subset the workspace uses: `thread::scope(|s| { s.spawn(...) })`
//! returning a `Result`, with spawned threads joined when the scope ends.

pub mod thread {
    /// Result of a scope: `Err` carries a panic payload from the closure.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

    /// Scope handle passed to the `scope` closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives a placeholder
        /// argument (crossbeam passes a nested scope; the workspace
        /// ignores it with `|_|`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(())),
            }
        }
    }

    /// Handle to a scoped thread; dropping it detaches (the scope still
    /// joins the thread before returning).
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope in which threads may borrow from the caller.
    /// All spawned threads are joined before this returns. A panic on a
    /// spawned thread propagates (std semantics) rather than returning
    /// `Err`, which is strictly stricter than crossbeam's contract.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}
