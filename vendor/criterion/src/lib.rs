//! Vendored miniature benchmarking harness (offline build environment),
//! API-compatible with the subset of `criterion` this workspace uses:
//! `criterion_group!`/`criterion_main!`, benchmark groups, `BenchmarkId`,
//! `Bencher::iter`, and `black_box`.
//!
//! Methodology is deliberately simple — warm up, run `sample_size`
//! samples, report min/median/mean per iteration — enough to compare hot
//! paths locally. Swap in the real crate for publication-grade numbers.

use std::fmt::Display;
use std::hint;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// One benchmark's aggregated timings, recorded alongside the printed
/// report so harnesses (e.g. `perfgate`) can consume results in-process
/// without scraping stdout.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/function[/parameter]`).
    pub id: String,
    /// Number of measured samples.
    pub samples: usize,
    /// Fastest sample, nanoseconds.
    pub min_ns: u128,
    /// Median sample, nanoseconds.
    pub median_ns: u128,
    /// Mean over all samples, nanoseconds.
    pub mean_ns: u128,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Drain every [`BenchResult`] recorded since the last call (process
/// global, in completion order).
pub fn take_results() -> Vec<BenchResult> {
    std::mem::take(&mut RESULTS.lock().expect("results lock"))
}

/// Sample-size override from `CRITERION_SAMPLE_SIZE`: when set, it
/// replaces every benchmark's sample count outright, so a harness can
/// shrink a whole suite for a quick gated run *or* raise it for a
/// tighter trajectory refresh without touching each benchmark.
fn sample_size_override() -> Option<usize> {
    std::env::var("CRITERION_SAMPLE_SIZE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
}

/// Identifier for a parameterized benchmark (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<F: Display, P: Display>(function_name: F, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timer handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, collecting `sample_size` samples of one iteration
    /// each (plus one warm-up iteration whose result is discarded).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` only, running `setup` before every sample outside
    /// the measurement (mirrors real criterion's `iter_with_setup`).
    /// This is how a benchmark measures a *warm* path: the setup primes
    /// per-iteration state (e.g. pre-submits the overlapping job) and
    /// the clock covers just the operation under test.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        black_box(routine(setup()));
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = sample_size_override().unwrap_or(n);
        self
    }

    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: R) {
        self.run(&id.to_string(), &mut f);
    }

    pub fn bench_with_input<I: ?Sized, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: R,
    ) {
        self.run(&id.id, &mut |b: &mut Bencher| f(b, input));
    }

    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &mut b.samples);
    }
}

fn report(id: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    samples.sort();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{id:<48} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
        min,
        median,
        mean,
        samples.len()
    );
    RESULTS.lock().expect("results lock").push(BenchResult {
        id: id.to_string(),
        samples: samples.len(),
        min_ns: min.as_nanos(),
        median_ns: median.as_nanos(),
        mean_ns: mean.as_nanos(),
    });
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Keep the default modest: these benches simulate thousands of
        // ranks and the real criterion's 100 samples would take minutes.
        Criterion {
            default_sample_size: sample_size_override().unwrap_or(20),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    pub fn bench_function<R: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: R) {
        let sample_size = self.default_sample_size;
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size,
        };
        f(&mut b);
        report(id, &mut b.samples);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
