//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace builds offline, so the real `serde_derive` cannot be
//! fetched. Nothing in the workspace serializes through serde's trait
//! machinery (the profile store uses its own binary codec), so the derives
//! only need to exist and accept `#[serde(...)]` helper attributes.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
