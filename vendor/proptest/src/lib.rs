//! Vendored miniature property-testing harness (offline build environment).
//!
//! API-compatible with the subset of `proptest` this workspace uses:
//! the `proptest!` / `prop_oneof!` / `prop_assert*!` macros, `Strategy`
//! with `prop_map` / `prop_recursive` / `boxed`, range and tuple and
//! string-pattern strategies, `collection::vec`, `sample::select`, and
//! `bool::ANY`.
//!
//! Differences from the real crate, on purpose:
//! - **No shrinking.** A failing case reports its case index and seed;
//!   re-run with `PROPTEST_SEED`/`PROPTEST_CASES` to reproduce.
//! - **Deterministic by default.** The RNG seed is derived from the test's
//!   file and name, so CI runs are reproducible without a regressions file.
//!   Set `PROPTEST_SEED=<u64>` to explore a different stream.

pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{Rng, SampleRange, SeedableRng};

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property (produced by the `prop_assert*!` macros).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: SmallRng,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng {
                inner: SmallRng::seed_from_u64(seed),
            }
        }

        pub fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
            self.inner.gen_range(range)
        }

        pub fn gen_bool(&mut self) -> bool {
            self.inner.gen()
        }

        pub fn gen_index(&mut self, len: usize) -> usize {
            assert!(len > 0, "gen_index on empty collection");
            self.inner.gen_range(0..len)
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    fn env_u64(var: &str) -> Option<u64> {
        std::env::var(var).ok().and_then(|s| s.trim().parse().ok())
    }

    /// Drive one property: generate and check `cases` inputs.
    ///
    /// Case `i` uses seed `base_seed ⊕ fnv1a(i)`, so a failure can be
    /// replayed in isolation (the panic message carries everything needed).
    pub fn execute<F>(config: ProptestConfig, file: &str, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let cases = env_u64("PROPTEST_CASES")
            .map(|c| c as u32)
            .unwrap_or(config.cases);
        let base_seed =
            env_u64("PROPTEST_SEED").unwrap_or_else(|| fnv1a(format!("{file}::{name}").as_bytes()));
        for i in 0..cases {
            let mut rng = TestRng::from_seed(base_seed ^ fnv1a(&i.to_le_bytes()));
            if let Err(e) = case(&mut rng) {
                panic!(
                    "[proptest] {name} failed at case {i}/{cases} \
                     (PROPTEST_SEED={base_seed} to replay the stream): {e}"
                );
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value: Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Build a recursive strategy: `depth` levels deep at most, with the
        /// `recurse` closure producing the non-leaf alternatives. The size
        /// hints of the real API are accepted and ignored (no shrinking).
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(strat).boxed();
                strat = Union::new(vec![leaf.clone(), deeper]).boxed();
            }
            strat
        }
    }

    /// Type-erased strategy; clones share the underlying recipe.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    impl<T> Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(
                !arms.is_empty(),
                "prop_oneof! needs at least one alternative"
            );
            Union { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Union<T> {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let arm = rng.gen_index(self.arms.len());
            self.arms[arm].generate(rng)
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),+ $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )+};
    }

    int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }

    /// String patterns: a `&str` is a strategy generating matching strings.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_matching(self, rng)
        }
    }
}

pub mod string {
    //! Tiny regex-pattern generator covering the patterns used in tests:
    //! `.`, character classes `[a-z0-9...]` (with ranges and escapes), and
    //! quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` over single atoms.

    use crate::test_runner::TestRng;

    #[derive(Debug, Clone)]
    enum Atom {
        Any,
        Literal(char),
        Class(Vec<char>),
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            '0' => '\0',
            other => other,
        }
    }

    fn parse(pattern: &str) -> Vec<(Atom, usize, usize)> {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::Any,
                '\\' => Atom::Literal(unescape(chars.next().expect("dangling escape"))),
                '[' => {
                    let mut set = Vec::new();
                    loop {
                        let c = chars.next().expect("unterminated character class");
                        match c {
                            ']' => break,
                            '\\' => set.push(unescape(chars.next().expect("dangling escape"))),
                            lo if chars.peek() == Some(&'-') => {
                                chars.next();
                                match chars.peek() {
                                    // Trailing `-` before `]` is a literal.
                                    Some(']') | None => {
                                        set.push(lo);
                                        set.push('-');
                                    }
                                    Some(_) => {
                                        let hi = chars.next().unwrap();
                                        assert!(lo <= hi, "bad class range {lo}-{hi}");
                                        set.extend(lo..=hi);
                                    }
                                }
                            }
                            other => set.push(other),
                        }
                    }
                    assert!(!set.is_empty(), "empty character class");
                    Atom::Class(set)
                }
                other => Atom::Literal(other),
            };
            // Optional quantifier.
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                    match spec.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("bad repeat lower bound"),
                            n.trim().parse().expect("bad repeat upper bound"),
                        ),
                        None => {
                            let n = spec.trim().parse().expect("bad repeat count");
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            assert!(min <= max, "bad repeat range {min}..{max}");
            atoms.push((atom, min, max));
        }
        atoms
    }

    fn sample_any(rng: &mut TestRng) -> char {
        // Printable ASCII most of the time, with whitespace/control/unicode
        // salt so "never panics" properties see hostile input.
        match rng.gen_index(20) {
            0 => '\n',
            1 => '\t',
            2 => char::from_u32(rng.gen_range(0x80u32..0x2000)).unwrap_or('\u{fffd}'),
            _ => char::from(rng.gen_range(0x20u8..0x7f)),
        }
    }

    pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, min, max) in parse(pattern) {
            let count = rng.gen_range(min..=max);
            for _ in 0..count {
                out.push(match &atom {
                    Atom::Any => sample_any(rng),
                    Atom::Literal(c) => *c,
                    Atom::Class(set) => set[rng.gen_index(set.len())],
                });
            }
        }
        out
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a size drawn from `size` and elements from
    /// `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;

    /// Uniform choice from a fixed slice.
    pub fn select<T: Clone + Debug>(items: &'static [T]) -> Select<T> {
        assert!(!items.is_empty(), "select from empty slice");
        Select { items }
    }

    #[derive(Debug, Clone)]
    pub struct Select<T: 'static> {
        items: &'static [T],
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.gen_index(self.items.len())].clone()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding arbitrary booleans (`proptest::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` == `{:?}`", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    l,
                    r,
                    format!($($fmt)+)
                );
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
            }
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::execute($config, file!(), stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let s = Strategy::generate(&".{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);
            let t = Strategy::generate(&"[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&t.len()));
            assert!(t.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(v) => {
                    assert!((0..10).contains(v));
                    0
                }
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 2, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
            });
        let mut rng = TestRng::from_seed(99);
        for _ in 0..500 {
            assert!(depth(&strat.generate(&mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_plumbing_works(a in 0i64..100, b in prop_oneof![Just(1i64), Just(2i64)]) {
            prop_assert!(a >= 0);
            prop_assert_eq!(b * 2 / 2, b);
            prop_assert_ne!(b, 0);
        }
    }
}
