//! Vendored stand-in for `rand` (offline build environment).
//!
//! Provides `SmallRng` (xoshiro256++ seeded via SplitMix64), the
//! `Rng`/`SeedableRng` traits, and uniform `gen`/`gen_range`/`gen_bool`
//! over the integer and float ranges the workspace draws from.

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a value of `Self` uniformly from an RNG (`rng.gen()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// A range that can be sampled uniformly (`rng.gen_range(range)`).
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift with rejection of the biased zone.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(uniform_u64(rng, span) as $wide) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $wide as $t;
                }
                (lo as $wide).wrapping_add(uniform_u64(rng, span + 1) as $wide) as $t
            }
        }
    )*};
}

int_sample_range! {
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast PRNG: xoshiro256++ (the same family the real `SmallRng`
    /// uses on 64-bit targets), seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-0.25f64..=0.25);
            assert!((-0.25..=0.25).contains(&v));
            let i = rng.gen_range(3i64..10);
            assert!((3..10).contains(&i));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
